"""Tests for time decomposition, counters, and run results."""

import pytest

from repro.noc.messages import MessageClass
from repro.noc.traffic import TrafficLedger
from repro.stats.collector import ProtocolCounters, RunResult
from repro.stats.timeparts import TimeBreakdown, TimeComponent


class TestTimeBreakdown:
    def test_add_and_get(self):
        tb = TimeBreakdown()
        tb.add(TimeComponent.COMPUTE, 10)
        tb.add(TimeComponent.COMPUTE, 5)
        tb.add(TimeComponent.MEMORY_STALL, 3)
        assert tb.get(TimeComponent.COMPUTE) == 15
        assert tb.total() == 18

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add(TimeComponent.COMPUTE, -1)

    def test_as_dict_covers_all_components(self):
        assert set(TimeBreakdown().as_dict()) == {c.value for c in TimeComponent}

    def test_average(self):
        a, b = TimeBreakdown(), TimeBreakdown()
        a.add(TimeComponent.COMPUTE, 10)
        b.add(TimeComponent.COMPUTE, 20)
        avg = TimeBreakdown.average([a, b])
        assert avg["compute"] == 15.0

    def test_average_empty(self):
        assert TimeBreakdown.average([])["compute"] == 0.0

    def test_merged_with(self):
        a, b = TimeBreakdown(), TimeBreakdown()
        a.add(TimeComponent.COMPUTE, 10)
        b.add(TimeComponent.SW_BACKOFF, 7)
        merged = a.merged_with(b)
        assert merged.get(TimeComponent.COMPUTE) == 10
        assert merged.get(TimeComponent.SW_BACKOFF) == 7

    def test_merged_with_preserves_zero_cycle_components(self):
        # An explicitly-tracked zero-cycle component must survive the merge
        # (Counter.__add__ would silently drop it).
        a, b = TimeBreakdown(), TimeBreakdown()
        a.add(TimeComponent.HW_BACKOFF, 0)
        b.add(TimeComponent.COMPUTE, 3)
        merged = a.merged_with(b)
        assert "hw backoff" in merged.as_dict()
        assert merged.get(TimeComponent.HW_BACKOFF) == 0
        assert merged.total() == 3


class TestProtocolCounters:
    def test_bump_and_get(self):
        counters = ProtocolCounters()
        counters.bump("l1_misses")
        counters.bump("l1_misses", 4)
        assert counters.get("l1_misses") == 5
        assert counters.get("never") == 0

    def test_as_dict(self):
        counters = ProtocolCounters()
        counters.bump("x", 3)
        assert counters.as_dict() == {"x": 3}


def _result(cycles=100):
    tb = TimeBreakdown()
    tb.add(TimeComponent.COMPUTE, 40)
    tb.add(TimeComponent.MEMORY_STALL, 60)
    ledger = TrafficLedger()
    ledger.record(MessageClass.LOAD, 10, 2)
    return RunResult(
        workload="w",
        protocol="MESI",
        num_cores=1,
        cycles=cycles,
        per_core_time=[tb],
        traffic=ledger,
        counters=ProtocolCounters(),
    )


class TestRunResult:
    def test_summary_fields(self):
        summary = _result().summary()
        assert summary["workload"] == "w"
        assert summary["cycles"] == 100
        assert summary["total_traffic"] == 20
        assert summary["time_breakdown"]["compute"] == 40

    def test_component_cycles(self):
        assert _result().component_cycles(TimeComponent.MEMORY_STALL) == 60.0

    def test_traffic_breakdown(self):
        assert _result().traffic_breakdown()["LD"] == 20
