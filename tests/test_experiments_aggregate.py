"""Tests for the headline aggregator and figure machinery edge cases."""

import pytest

from repro.harness.experiments import (
    FigureResult,
    FigureRow,
    headline_summary,
    run_kernel_figure,
)


@pytest.fixture(scope="module")
def two_family_figures():
    return [
        run_kernel_figure(
            "tatas", core_counts=(16,), scale=0.03, names=["counter", "stack"]
        ),
        run_kernel_figure(
            "barrier", core_counts=(16,), scale=0.03, names=["tree"]
        ),
    ]


class TestHeadlineSummary:
    def test_counts_all_cases(self, two_family_figures):
        summary = headline_summary(two_family_figures)
        assert summary["DeNovoSync"]["cases"] == 3
        assert summary["DeNovoSync0"]["cases"] == 3

    def test_mesi_excluded(self, two_family_figures):
        assert "MESI" not in headline_summary(two_family_figures)

    def test_best_is_min_worst_is_max(self, two_family_figures):
        stats = headline_summary(two_family_figures)["DeNovoSync"]
        assert stats["best_rel_time"] <= stats["avg_rel_time"] <= stats["worst_rel_time"]
        assert (
            stats["best_rel_traffic"]
            <= stats["avg_rel_traffic"]
            <= stats["worst_rel_traffic"]
        )

    def test_empty_figures(self):
        assert headline_summary([]) == {}

    def test_rows_without_mesi_skipped(self):
        fig = FigureResult("x", [FigureRow(workload="w", num_cores=4)], 1.0)
        assert headline_summary([fig]) == {}


class TestRunKernelFigureOptions:
    def test_names_filter(self, two_family_figures):
        assert [r.workload for r in two_family_figures[0].rows] == [
            "counter", "stack",
        ]

    def test_protocol_subset(self):
        fig = run_kernel_figure(
            "tatas",
            core_counts=(16,),
            scale=0.02,
            names=["counter"],
            protocols=("MESI", "DeNovoSync"),
        )
        assert set(fig.rows[0].results) == {"MESI", "DeNovoSync"}

    def test_mcs_family_label(self):
        fig = run_kernel_figure(
            "mcs",
            core_counts=(16,),
            scale=0.02,
            names=["counter"],
            protocols=("MESI",),
        )
        assert "MCS" in fig.figure
