"""Tests for the ASCII figure renderer."""

import io

import pytest

from repro.harness.experiments import KERNEL_PROTOCOLS, run_kernel_figure
from repro.harness.plots import _bar, render_figure, render_time_bars, render_traffic_bars


@pytest.fixture(scope="module")
def figure():
    return run_kernel_figure("tatas", core_counts=(16,), scale=0.02, names=["counter"])


class TestBar:
    def test_width_respected(self):
        bar = _bar([("a", 0.5), ("b", 0.5)], width=40)
        assert len(bar) == 40
        assert bar == "a" * 20 + "b" * 20

    def test_rounding_carries(self):
        bar = _bar([("a", 1 / 3), ("b", 1 / 3), ("c", 1 / 3)], width=10)
        assert len(bar) == 10

    def test_empty_fractions(self):
        assert _bar([], width=10) == ""

    def test_over_unity_total(self):
        bar = _bar([("x", 1.5)], width=10)
        assert bar == "x" * 15  # DeNovo-worse bars extend past MESI's width


class TestRender:
    def test_time_bars_mesi_full_width(self, figure):
        out = io.StringIO()
        render_time_bars(figure, out, width=40)
        lines = [ln for ln in out.getvalue().splitlines() if "|" in ln]
        assert len(lines) == len(KERNEL_PROTOCOLS)
        mesi_bar = lines[0].split("|")[1]
        assert len(mesi_bar) == pytest.approx(40, abs=1)

    def test_traffic_bars_denovo_shorter(self, figure):
        out = io.StringIO()
        render_traffic_bars(figure, out, width=40)
        lines = [ln for ln in out.getvalue().splitlines() if "|" in ln]
        mesi = len(lines[0].split("|")[1])
        denovo = len(lines[KERNEL_PROTOCOLS.index("DeNovoSync")].split("|")[1])
        assert denovo < mesi

    def test_figure_header(self, figure):
        out = io.StringIO()
        render_figure(figure, out)
        assert "Figure 3" in out.getvalue()
        assert "execution time" in out.getvalue()
        assert "network traffic" in out.getvalue()

    def test_glyphs_match_components(self, figure):
        out = io.StringIO()
        render_time_bars(figure, out)
        text = out.getvalue()
        # MESI TATAS bars are dominated by memory stall 'M' segments.
        assert "MMM" in text
