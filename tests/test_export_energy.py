"""Tests for result export (CSV/JSON) and the energy model."""

import csv
import io
import json

import pytest

from repro.harness.experiments import run_kernel_figure
from repro.harness.export import (
    figure_to_rows,
    result_to_dict,
    write_figure_csv,
    write_figure_json,
)
from repro.stats.energy import EnergyModel, energy_ratio


@pytest.fixture(scope="module")
def small_figure():
    return run_kernel_figure(
        "tatas", core_counts=(16,), scale=0.02, names=["counter"]
    )


class TestExport:
    def test_result_to_dict_fields(self, small_figure):
        result = small_figure.rows[0].results["MESI"]
        row = result_to_dict(result)
        assert row["protocol"] == "MESI"
        assert row["cycles"] == result.cycles
        assert row["traffic.Inv"] >= 0
        assert "time.memory stall" in row
        assert any(key.startswith("counter.") for key in row)

    def test_figure_rows_have_relative_metrics(self, small_figure):
        from repro.harness.experiments import KERNEL_PROTOCOLS

        rows = figure_to_rows(small_figure)
        assert len(rows) == len(KERNEL_PROTOCOLS)  # one kernel x defaults
        mesi = next(r for r in rows if r["protocol"] == "MESI")
        assert mesi["rel_time"] == pytest.approx(1.0)

    def test_csv_roundtrip(self, small_figure):
        buffer = io.StringIO()
        count = write_figure_csv(small_figure, buffer)
        buffer.seek(0)
        parsed = list(csv.DictReader(buffer))
        from repro.harness.experiments import KERNEL_PROTOCOLS

        assert len(parsed) == count == len(KERNEL_PROTOCOLS)
        assert {row["protocol"] for row in parsed} == set(KERNEL_PROTOCOLS)
        assert float(parsed[0]["cycles"]) > 0

    def test_csv_leads_with_identity_columns(self, small_figure):
        buffer = io.StringIO()
        write_figure_csv(small_figure, buffer)
        header = buffer.getvalue().splitlines()[0].split(",")
        assert header[:4] == ["figure", "workload", "protocol", "num_cores"]

    def test_json_export(self, small_figure):
        buffer = io.StringIO()
        count = write_figure_json(small_figure, buffer)
        rows = json.loads(buffer.getvalue())
        assert len(rows) == count
        assert rows[0]["figure"].startswith("Figure 3")

    def test_empty_figure_csv(self):
        from repro.harness.experiments import FigureResult

        buffer = io.StringIO()
        assert write_figure_csv(FigureResult("empty", [], 1.0), buffer) == 0


class TestEnergyModel:
    def test_breakdown_sums_to_total(self, small_figure):
        model = EnergyModel()
        result = small_figure.rows[0].results["MESI"]
        breakdown = model.breakdown(result)
        assert sum(breakdown.values()) == pytest.approx(model.total_pj(result))

    def test_denovo_saves_energy_on_tatas(self, small_figure):
        """The paper's claim: traffic savings translate to energy savings."""
        row = small_figure.rows[0]
        ratio = energy_ratio(row.results["DeNovoSync"], row.results["MESI"])
        assert ratio < 1.0

    def test_network_energy_proportional_to_traffic(self, small_figure):
        model = EnergyModel(pj_per_flit_hop=1.0)
        result = small_figure.rows[0].results["MESI"]
        assert model.network_pj(result) == result.total_traffic

    def test_custom_coefficients(self, small_figure):
        result = small_figure.rows[0].results["MESI"]
        expensive_net = EnergyModel(pj_per_flit_hop=1000.0)
        assert expensive_net.total_pj(result) > EnergyModel().total_pj(result)

    def test_zero_baseline_is_nan(self):
        import math

        from repro.noc.traffic import TrafficLedger
        from repro.stats.collector import ProtocolCounters, RunResult

        empty = RunResult(
            workload="w", protocol="p", num_cores=1, cycles=0,
            per_core_time=[], traffic=TrafficLedger(),
            counters=ProtocolCounters(),
        )
        assert math.isnan(energy_ratio(empty, empty))
