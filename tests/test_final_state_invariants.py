"""Structural-invariant audits on the final state of full workload runs.

The exhaustive verifier covers tiny scopes; these tests run *real*
kernels and applications to completion and then audit the protocol's
entire cache/directory/registry state for consistency.
"""

import pytest

from repro.config import config_16
from repro.harness.runner import run_workload
from repro.protocols import PROTOCOLS
from repro.verify import check_protocol_state
from repro.workloads.base import KernelSpec
from repro.workloads.micro import FalseSharingMicro
from repro.workloads.registry import make_kernel

KERNELS = [
    ("tatas", "counter"),
    ("array", "single Q"),
    ("mcs", "stack"),
    ("nonblocking", "M-S queue"),
    ("nonblocking", "Treiber stack"),
    ("barrier", "central"),
]


@pytest.mark.parametrize("figure,name", KERNELS)
@pytest.mark.parametrize("protocol", list(PROTOCOLS))
class TestKernelFinalState:
    def test_protocol_state_consistent_after_run(self, figure, name, protocol):
        workload = make_kernel(figure, name, spec=KernelSpec(iterations=4, scale=1.0))
        result = run_workload(
            workload, protocol, config_16(), seed=11, keep_protocol=True
        )
        failures = check_protocol_state(result.meta["protocol"])
        assert failures == []


@pytest.mark.parametrize("protocol", list(PROTOCOLS))
class TestAppAndMicroFinalState:
    def test_app_model_state_consistent(self, protocol):
        from repro.workloads.apps import make_app

        result = run_workload(
            make_app("bodytrack", scale=0.05),
            protocol,
            __import__("repro.config", fromlist=["config_for_cores"]).config_for_cores(16),
            seed=11,
            keep_protocol=True,
        )
        assert check_protocol_state(result.meta["protocol"]) == []

    def test_false_sharing_micro_state_consistent(self, protocol):
        result = run_workload(
            FalseSharingMicro(rounds=8), protocol, config_16(), seed=11,
            keep_protocol=True,
        )
        assert check_protocol_state(result.meta["protocol"]) == []


class TestAuditCatchesCorruption:
    def test_denovo_double_registration_detected(self):
        from repro.mem.l1 import DeNovoState
        from repro.protocols.denovosync0 import DeNovoSync0Protocol

        protocol = DeNovoSync0Protocol(config_16())
        protocol.store(0, 100, 1)
        # Corrupt: a second L1 claims Registered without the registry.
        protocol.l1s[1].fill_word(100, 1, DeNovoState.REGISTERED)
        assert any("registered at both" in f for f in check_protocol_state(protocol))

    def test_mesi_unknown_holder_detected(self):
        from repro.mem.l1 import MesiState
        from repro.protocols.mesi import MesiProtocol

        protocol = MesiProtocol(config_16())
        protocol.load(0, 100)
        # Corrupt: a copy the directory never granted.
        protocol.l1s[3].insert(protocol.amap.line_of(100), MesiState.SHARED)
        failures = check_protocol_state(protocol)
        assert any("holders" in f or "unknown" in f for f in failures)
