"""Memory-model litmus tests for synchronization accesses.

The paper takes sequential consistency as the correctness criterion for
synchronization (section 4).  These tests run the classic litmus shapes
— message passing, store buffering, load buffering, IRIW — over *every*
interleaving of the per-core programs under every protocol, collect the
observed outcome tuples, and assert the SC-forbidden outcomes never
appear (and, for confidence, that the SC-allowed ones do).
"""

from itertools import permutations

import pytest

from repro.config import config_for_cores
from repro.protocols import PROTOCOLS, make_protocol

X = 64  # two sync variables on distinct lines
Y = 160

PROTOCOL_NAMES = list(PROTOCOLS)


def run_all_interleavings(protocol_name, programs):
    """Programs are lists of ("store", addr, value) / ("load", addr, tag).

    Returns the set of observed outcomes: frozensets of (tag, value).
    """
    tokens = []
    for core, program in enumerate(programs):
        tokens.extend([core] * len(program))
    outcomes = set()
    seen = set()
    for perm in permutations(tokens):
        if perm in seen:
            continue
        seen.add(perm)
        protocol = make_protocol(protocol_name, config_for_cores(4))
        positions = [0] * len(programs)
        observed = []
        now = 0
        for core in perm:
            op = programs[core][positions[core]]
            positions[core] += 1
            now += 2000
            protocol.set_time(now)
            if op[0] == "store":
                protocol.store(core, op[1], op[2], sync=True, ticketed=True)
            else:
                access = protocol.load(core, op[1], sync=True, ticketed=True)
                observed.append((op[2], access.value))
        outcomes.add(frozenset(observed))
    return outcomes


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
class TestLitmus:
    def test_message_passing(self, protocol):
        """MP: r1=1, r2=0 is forbidden (no reordering of the writes)."""
        programs = [
            [("store", X, 1), ("store", Y, 1)],
            [("load", Y, "r1"), ("load", X, "r2")],
        ]
        outcomes = run_all_interleavings(protocol, programs)
        forbidden = frozenset({("r1", 1), ("r2", 0)})
        assert forbidden not in outcomes
        # The all-seen outcome must be reachable.
        assert frozenset({("r1", 1), ("r2", 1)}) in outcomes

    def test_store_buffering(self, protocol):
        """SB: r1=0, r2=0 is forbidden under SC (allowed under TSO)."""
        programs = [
            [("store", X, 1), ("load", Y, "r1")],
            [("store", Y, 1), ("load", X, "r2")],
        ]
        outcomes = run_all_interleavings(protocol, programs)
        forbidden = frozenset({("r1", 0), ("r2", 0)})
        assert forbidden not in outcomes

    def test_load_buffering(self, protocol):
        """LB: r1=1, r2=1 is forbidden (loads cannot see future stores)."""
        programs = [
            [("load", X, "r1"), ("store", Y, 1)],
            [("load", Y, "r2"), ("store", X, 1)],
        ]
        outcomes = run_all_interleavings(protocol, programs)
        forbidden = frozenset({("r1", 1), ("r2", 1)})
        assert forbidden not in outcomes

    def test_iriw(self, protocol):
        """IRIW: the two readers must agree on the write order."""
        programs = [
            [("store", X, 1)],
            [("store", Y, 1)],
            [("load", X, "a1"), ("load", Y, "a2")],
            [("load", Y, "b1"), ("load", X, "b2")],
        ]
        outcomes = run_all_interleavings(protocol, programs)
        # Forbidden: reader A sees X before Y, reader B sees Y before X.
        forbidden = frozenset(
            {("a1", 1), ("a2", 0), ("b1", 1), ("b2", 0)}
        )
        assert forbidden not in outcomes

    def test_coherence_single_location(self, protocol):
        """CoRR: two reads of one location never go backwards."""
        programs = [
            [("store", X, 1)],
            [("load", X, "r1"), ("load", X, "r2")],
        ]
        outcomes = run_all_interleavings(protocol, programs)
        forbidden = frozenset({("r1", 1), ("r2", 0)})
        assert forbidden not in outcomes
