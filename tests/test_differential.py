"""Differential testing: randomly generated data-race-free programs must
compute identical results under every protocol.

A generator builds random programs from properly-synchronized building
blocks (lock-protected commutative updates, barrier-separated phase
writes, FAI tickets).  Because the programs are data-race-free and their
shared updates commute, the final shared state is schedule-independent —
so all five protocols, whose timing differs wildly, must agree exactly.
A protocol bug that loses an update, serves a stale value where
freshness is required, or breaks RMW atomicity shows up as divergence.
"""

import random

import pytest

from repro.config import config_for_cores
from repro.cpu.isa import Compute, Fai, Load, SelfInvalidate, Store
from repro.harness.runner import run_workload
from repro.mem.address import AddressMap
from repro.mem.regions import RegionAllocator
from repro.protocols import PROTOCOLS
from repro.synclib.barriers import TreeBarrier
from repro.synclib.tatas import TatasLock
from repro.workloads.base import Workload, WorkloadInstance

NUM_CORES = 4


class RandomDrfProgram(Workload):
    """A random but properly synchronized workload."""

    name = "random-drf"

    def __init__(self, seed: int, blocks_per_core: int = 8):
        self.seed = seed
        self.blocks_per_core = blocks_per_core

    def build(self, config, *, seed=0):
        from repro.cpu.thread import ThreadCtx

        rng = random.Random(self.seed)
        allocator = RegionAllocator(AddressMap(config))
        n = config.num_cores

        locks = [TatasLock(allocator, f"rl{i}") for i in range(3)]
        lock_regions = [allocator.region(f"rdata{i}") for i in range(3)]
        lock_words = [allocator.alloc(f"rdata{i}", 4).base for i in range(3)]
        fai = allocator.alloc_sync("rfai").base
        barrier = TreeBarrier(allocator, n, name="rbar")
        phase_region = allocator.region("rphase")
        phase_words = allocator.alloc("rphase", n).base
        end_barrier = TreeBarrier(allocator, n, name="rend")

        # A shared round skeleton: "phase" rounds are collective (every
        # core joins the same barrier episode); "free" rounds let each
        # core do its own lock-protected update or FAI.
        rounds = [
            "phase" if rng.random() < 0.3 else "free"
            for _ in range(self.blocks_per_core)
        ]
        free_actions = [
            [
                (rng.choice(["lock", "fai"]), rng.randrange(3), rng.randrange(4))
                for _ in range(self.blocks_per_core)
            ]
            for _ in range(n)
        ]

        def program(ctx: ThreadCtx):
            episode = 0
            for round_no, kind in enumerate(rounds):
                yield Compute(ctx.rng.randrange(20, 400))
                if kind == "phase":
                    episode += 1
                    yield Store(phase_words + ctx.core_id, episode)
                    yield from barrier.wait(ctx, episode=episode)
                    yield SelfInvalidate((phase_region,))
                    for other in range(ctx.num_cores):
                        yield Load(phase_words + other)
                    continue
                action, which, offset = free_actions[ctx.core_id][round_no]
                if action == "lock":
                    lock = locks[which]
                    yield from lock.acquire(ctx)
                    yield SelfInvalidate((lock_regions[which],))
                    value = yield Load(lock_words[which] + offset)
                    yield Compute(ctx.rng.randrange(1, 30))
                    yield Store(lock_words[which] + offset, value + 1)
                    yield from lock.release()
                else:
                    yield Fai(fai)
            yield from end_barrier.wait(ctx, episode=10**6)

        programs = []
        for core_id in range(n):
            ctx = ThreadCtx(
                core_id=core_id, num_cores=n, config=config,
                allocator=allocator,
                rng=random.Random(self.seed * 31 + core_id),
            )
            programs.append(program(ctx))
        instance = WorkloadInstance(self.name, allocator, programs)
        instance.meta["lock_words"] = lock_words
        instance.meta["fai"] = fai
        return instance


def _final_state(seed: int, protocol: str) -> dict[int, int]:
    """Run the seeded random program; return the shared words' values."""
    workload = RandomDrfProgram(seed)
    config = config_for_cores(NUM_CORES)
    result = run_workload(workload, protocol, config, seed=7, keep_protocol=True)
    protocol_obj = result.meta["protocol"]
    instance = workload.build(config, seed=7)  # rebuild for the addresses
    state = {}
    for base in instance.meta["lock_words"]:
        for offset in range(4):
            state[base + offset] = protocol_obj.memory.read(base + offset)
    state[instance.meta["fai"]] = protocol_obj.memory.read(instance.meta["fai"])
    return state


class TestBarrierEpisodeBug:
    def test_barrier_episodes_monotonic(self):
        """Guard: the random generator must produce strictly increasing
        barrier episodes per barrier (validity of the workload itself)."""
        workload = RandomDrfProgram(seed=3)
        config = config_for_cores(NUM_CORES)
        result = run_workload(workload, "MESI", config, seed=7)
        assert result.cycles > 0


@pytest.mark.parametrize("seed", [1, 2, 3, 5, 8])
class TestCrossProtocolAgreement:
    def test_all_protocols_agree_on_final_state(self, seed):
        states = {
            protocol: _final_state(seed, protocol) for protocol in PROTOCOLS
        }
        reference = states["MESI"]
        total = sum(reference.values())
        assert total > 0  # the program actually did work
        for protocol, state in states.items():
            assert state == reference, (
                f"{protocol} diverged from MESI on seed {seed}"
            )
