"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.config import SystemConfig, config_for_cores
from repro.cpu.core import Core
from repro.cpu.thread import ThreadCtx
from repro.mem.address import AddressMap
from repro.mem.regions import RegionAllocator
from repro.protocols import PROTOCOLS, make_protocol
from repro.sim.engine import Simulator

ALL_PROTOCOLS = list(PROTOCOLS)


@pytest.fixture(params=ALL_PROTOCOLS)
def protocol_name(request):
    return request.param


class MiniMachine:
    """A small harness for running hand-built thread programs in tests."""

    def __init__(self, protocol_name: str, num_cores: int = 4):
        self.config: SystemConfig = config_for_cores(num_cores)
        self.allocator = RegionAllocator(AddressMap(self.config))
        self.protocol = make_protocol(protocol_name, self.config, self.allocator)
        self.sim = Simulator()
        self.cores = [Core(i, self.sim, self.protocol) for i in range(num_cores)]

    def ctx(self, core_id: int, seed: int = 0) -> ThreadCtx:
        return ThreadCtx(
            core_id=core_id,
            num_cores=self.config.num_cores,
            config=self.config,
            allocator=self.allocator,
            rng=random.Random(seed * 1000 + core_id),
        )

    def run(self, programs, max_events: int = 5_000_000) -> None:
        for addr, value in getattr(self, "initial_values", {}).items():
            self.protocol.memory.write(addr, value)
        for core, program in zip(self.cores, programs):
            core.start(program)
        self.sim.run(max_events=max_events)
        stuck = [c.core_id for c in self.cores[: len(programs)] if not c.done]
        assert not stuck, f"cores {stuck} deadlocked at cycle {self.sim.now}"


@pytest.fixture
def machine_factory():
    return MiniMachine
