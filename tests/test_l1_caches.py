"""Tests for the L1 cache structures (MESI line-grain, DeNovo word-grain)."""

import pytest

from repro.config import config_16
from repro.mem.address import AddressMap
from repro.mem.l1 import DeNovoL1, DeNovoState, MesiL1, MesiState


@pytest.fixture
def config():
    return config_16()


@pytest.fixture
def amap(config):
    return AddressMap(config)


class TestMesiL1:
    def test_insert_and_lookup(self, config):
        l1 = MesiL1(0, config)
        l1.insert(5, MesiState.SHARED)
        assert l1.state_of(5) is MesiState.SHARED
        assert l1.state_of(6) is None

    def test_set_state(self, config):
        l1 = MesiL1(0, config)
        l1.insert(5, MesiState.EXCLUSIVE)
        l1.set_state(5, MesiState.MODIFIED)
        assert l1.state_of(5) is MesiState.MODIFIED

    def test_set_state_missing_line(self, config):
        with pytest.raises(KeyError):
            MesiL1(0, config).set_state(5, MesiState.MODIFIED)

    def test_invalidate_returns_old_state(self, config):
        l1 = MesiL1(0, config)
        l1.insert(5, MesiState.MODIFIED)
        assert l1.invalidate(5) is MesiState.MODIFIED
        assert l1.invalidate(5) is None
        assert l1.state_of(5) is None

    def test_lru_eviction_within_set(self, config):
        l1 = MesiL1(0, config)
        num_sets = config.l1_sets
        # Fill one set beyond associativity: lines mapping to set 0.
        lines = [i * num_sets for i in range(config.l1_assoc + 1)]
        victims = [l1.insert(line, MesiState.SHARED) for line in lines]
        assert victims[:-1] == [None] * config.l1_assoc
        assert victims[-1] == (lines[0], MesiState.SHARED)

    def test_touch_refreshes_lru(self, config):
        l1 = MesiL1(0, config)
        num_sets = config.l1_sets
        lines = [i * num_sets for i in range(config.l1_assoc)]
        for line in lines:
            l1.insert(line, MesiState.SHARED)
        l1.state_of(lines[0])  # touch the would-be victim
        victim = l1.insert((config.l1_assoc) * num_sets, MesiState.SHARED)
        assert victim == (lines[1], MesiState.SHARED)

    def test_capacity_bounded(self, config):
        l1 = MesiL1(0, config)
        for line in range(config.l1_lines * 2):
            l1.insert(line, MesiState.SHARED)
        assert len(l1) <= config.l1_lines

    def test_set_state_does_not_refresh_lru(self, config):
        # A remote-initiated state change (owner downgraded to Shared by
        # another core's load) must not make the line recently-used here.
        l1 = MesiL1(0, config)
        num_sets = config.l1_sets
        lines = [i * num_sets for i in range(config.l1_assoc)]
        for line in lines:
            l1.insert(line, MesiState.EXCLUSIVE)
        l1.set_state(lines[0], MesiState.SHARED)  # oldest line, remote poke
        victim = l1.insert(config.l1_assoc * num_sets, MesiState.SHARED)
        assert victim == (lines[0], MesiState.SHARED)

    def test_set_state_keeps_untouched_order(self, config):
        l1 = MesiL1(0, config)
        num_sets = config.l1_sets
        lines = [i * num_sets for i in range(config.l1_assoc)]
        for line in lines:
            l1.insert(line, MesiState.SHARED)
        # Poking every line's state in reverse must leave LRU order intact.
        for line in reversed(lines):
            l1.set_state(line, MesiState.MODIFIED)
        victim = l1.insert(config.l1_assoc * num_sets, MesiState.SHARED)
        assert victim == (lines[0], MesiState.MODIFIED)


class TestDeNovoL1:
    def make(self, config, amap, evictions=None):
        def on_evict(addr, value):
            if evictions is not None:
                evictions.append((addr, value))

        return DeNovoL1(0, config, amap, on_evict)

    def test_fill_and_lookup(self, config, amap):
        l1 = self.make(config, amap)
        l1.fill_word(100, 7, DeNovoState.VALID)
        assert l1.state_of(100) is DeNovoState.VALID
        assert l1.value_of(100) == 7
        assert l1.state_of(101) is DeNovoState.INVALID

    def test_fill_invalid_rejected(self, config, amap):
        l1 = self.make(config, amap)
        with pytest.raises(ValueError):
            l1.fill_word(100, 7, DeNovoState.INVALID)

    def test_write_word_requires_registered(self, config, amap):
        l1 = self.make(config, amap)
        l1.fill_word(100, 7, DeNovoState.VALID)
        with pytest.raises(KeyError):
            l1.write_word(100, 8)
        l1.fill_word(100, 7, DeNovoState.REGISTERED)
        l1.write_word(100, 8)
        assert l1.value_of(100) == 8

    def test_downgrade_to_valid(self, config, amap):
        l1 = self.make(config, amap)
        l1.fill_word(100, 7, DeNovoState.REGISTERED)
        l1.downgrade(100, DeNovoState.VALID)
        assert l1.state_of(100) is DeNovoState.VALID
        assert l1.value_of(100) == 7

    def test_downgrade_to_invalid_drops_value(self, config, amap):
        l1 = self.make(config, amap)
        l1.fill_word(100, 7, DeNovoState.REGISTERED)
        l1.downgrade(100, DeNovoState.INVALID)
        assert l1.state_of(100) is DeNovoState.INVALID
        assert l1.value_of(100) is None

    def test_downgrade_ignores_non_registered(self, config, amap):
        l1 = self.make(config, amap)
        l1.fill_word(100, 7, DeNovoState.VALID)
        l1.downgrade(100, DeNovoState.INVALID)
        assert l1.state_of(100) is DeNovoState.VALID  # untouched

    def test_per_word_state_within_line(self, config, amap):
        l1 = self.make(config, amap)
        base = amap.line_base(10)
        l1.fill_word(base, 1, DeNovoState.REGISTERED)
        l1.fill_word(base + 1, 2, DeNovoState.VALID)
        assert l1.state_of(base) is DeNovoState.REGISTERED
        assert l1.state_of(base + 1) is DeNovoState.VALID
        assert l1.state_of(base + 2) is DeNovoState.INVALID

    def test_self_invalidate_region_drops_only_valid(self, config, amap):
        l1 = self.make(config, amap)
        regions = {100: 1, 101: 1, 102: 2}
        l1.set_region_lookup(lambda addr: regions.get(addr))
        l1.fill_word(100, 1, DeNovoState.VALID)
        l1.fill_word(101, 2, DeNovoState.REGISTERED)
        l1.fill_word(102, 3, DeNovoState.VALID)
        dropped = l1.self_invalidate_region(1)
        assert dropped == 1
        assert l1.state_of(100) is DeNovoState.INVALID
        assert l1.state_of(101) is DeNovoState.REGISTERED  # registered survives
        assert l1.state_of(102) is DeNovoState.VALID  # other region survives

    def test_self_invalidate_all(self, config, amap):
        l1 = self.make(config, amap)
        regions = {100: 1, 200: 2}
        l1.set_region_lookup(lambda addr: regions.get(addr))
        l1.fill_word(100, 1, DeNovoState.VALID)
        l1.fill_word(200, 2, DeNovoState.VALID)
        l1.fill_word(300, 3, DeNovoState.VALID)  # no region
        assert l1.self_invalidate_all() == 3

    def test_self_invalidate_after_downgrade_tracks_region(self, config, amap):
        l1 = self.make(config, amap)
        l1.set_region_lookup(lambda addr: 1)
        l1.fill_word(100, 1, DeNovoState.REGISTERED)
        l1.downgrade(100, DeNovoState.VALID)
        assert l1.self_invalidate_region(1) == 1

    def test_eviction_writes_back_registered_words(self, config, amap):
        evictions = []
        l1 = self.make(config, amap, evictions)
        num_sets = config.l1_sets
        lines = [i * num_sets for i in range(config.l1_assoc + 1)]
        for i, line in enumerate(lines):
            l1.fill_word(amap.line_base(line), i, DeNovoState.REGISTERED)
        assert evictions == [(amap.line_base(lines[0]), 0)]

    def test_eviction_of_valid_words_is_silent(self, config, amap):
        evictions = []
        l1 = self.make(config, amap, evictions)
        num_sets = config.l1_sets
        lines = [i * num_sets for i in range(config.l1_assoc + 1)]
        for i, line in enumerate(lines):
            l1.fill_word(amap.line_base(line), i, DeNovoState.VALID)
        assert evictions == []

    def test_invalidate_word(self, config, amap):
        l1 = self.make(config, amap)
        l1.fill_word(100, 1, DeNovoState.REGISTERED)
        l1.invalidate_word(100)
        assert l1.state_of(100) is DeNovoState.INVALID
