"""Correctness tests for the MCS queue lock."""

import pytest

from repro.cpu.isa import Compute, Load, SelfInvalidate, Store
from repro.synclib.mcslock import McsLock


def locked_increment(lock, region, counter, ctx, iterations):
    for _ in range(iterations):
        token = yield from lock.acquire(ctx)
        yield SelfInvalidate((region,))
        value = yield Load(counter)
        yield Compute(ctx.rng.randrange(1, 20))
        yield Store(counter, value + 1)
        yield from lock.release(token)
        yield Compute(ctx.rng.randrange(50, 300))


@pytest.mark.parametrize("num_cores", [4, 16])
class TestMcsMutualExclusion:
    def test_no_lost_increments(self, protocol_name, machine_factory, num_cores):
        machine = machine_factory(protocol_name, num_cores)
        lock = McsLock(machine.allocator, num_cores)
        region = machine.allocator.region("c.data")
        counter = machine.allocator.alloc("c.data").base
        iterations = 10
        programs = [
            locked_increment(lock, region, counter, machine.ctx(i), iterations)
            for i in range(num_cores)
        ]
        machine.run(programs)
        assert machine.protocol.memory.read(counter) == num_cores * iterations


class TestMcsOrdering:
    def test_fifo_handoff(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, 4)
        lock = McsLock(machine.allocator, 4)
        order = []

        def program(ctx, delay):
            yield Compute(delay)
            token = yield from lock.acquire(ctx)
            order.append(ctx.core_id)
            yield Compute(2000)  # hold long enough that all others queue
            yield from lock.release(token)

        machine.run([program(machine.ctx(i), 1 + i * 500) for i in range(4)])
        assert order == [0, 1, 2, 3]

    def test_uncontended_fast_path(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, 4)
        lock = McsLock(machine.allocator, 4)
        done = []

        def program(ctx):
            for _ in range(3):
                token = yield from lock.acquire(ctx)
                yield from lock.release(token)
            done.append(True)

        machine.run([program(machine.ctx(0))])
        assert done == [True]
        assert machine.protocol.memory.read(lock.tail) == 0

    def test_nodes_line_padded(self, machine_factory):
        machine = machine_factory("MESI", 4)
        lock = McsLock(machine.allocator, 4)
        amap = machine.allocator.amap
        lines = {amap.line_of(node) for node in lock.nodes}
        assert len(lines) == 4

    def test_rejects_zero_threads(self, machine_factory):
        machine = machine_factory("MESI", 4)
        with pytest.raises(ValueError):
            McsLock(machine.allocator, 0)
