"""Tests for the simulated core: dispatch, accounting, spin-waits."""

import pytest

from repro.config import config_16
from repro.cpu.core import Core
from repro.cpu.isa import (
    Cas,
    Compute,
    Fai,
    Load,
    PopBucket,
    PushBucket,
    SelfInvalidate,
    Store,
    Swap,
    WaitLoad,
)
from repro.protocols.denovosync import DeNovoSyncProtocol
from repro.protocols.denovosync0 import DeNovoSync0Protocol
from repro.protocols.mesi import MesiProtocol
from repro.sim.engine import Simulator
from repro.stats.timeparts import TimeComponent

ADDR = 100


def run_program(protocol_cls, *programs, config=None):
    """Run thread programs on one core each; return (cores, sim)."""
    config = config or config_16()
    protocol = protocol_cls(config)
    sim = Simulator()
    cores = [Core(i, sim, protocol) for i in range(len(programs))]
    for core, program in zip(cores, programs):
        core.start(program)
    sim.run(max_events=10**6)
    return cores, sim, protocol


class TestBasicDispatch:
    @pytest.mark.parametrize(
        "protocol_cls", [MesiProtocol, DeNovoSync0Protocol, DeNovoSyncProtocol]
    )
    def test_load_returns_stored_value(self, protocol_cls):
        seen = {}

        def program():
            yield Store(ADDR, 42, sync=True)
            seen["value"] = yield Load(ADDR, sync=True)

        cores, _, _ = run_program(protocol_cls, program())
        assert seen["value"] == 42
        assert cores[0].done

    def test_compute_advances_clock(self):
        def program():
            yield Compute(100)

        cores, sim, _ = run_program(MesiProtocol, program())
        assert cores[0].finish_time == 100
        assert cores[0].time.get(TimeComponent.COMPUTE) == 100

    def test_compute_with_component_tag(self):
        def program():
            yield Compute(50, TimeComponent.NON_SYNCH)

        cores, _, _ = run_program(MesiProtocol, program())
        assert cores[0].time.get(TimeComponent.NON_SYNCH) == 50
        assert cores[0].time.get(TimeComponent.COMPUTE) == 0

    def test_miss_accounted_compute_plus_stall(self):
        def program():
            yield Load(ADDR)

        cores, _, _ = run_program(MesiProtocol, program())
        time = cores[0].time
        assert time.get(TimeComponent.COMPUTE) == 1
        assert time.get(TimeComponent.MEMORY_STALL) == cores[0].finish_time - 1

    def test_cas_success_and_failure(self):
        results = []

        def program():
            yield Store(ADDR, 5, sync=True)
            results.append((yield Cas(ADDR, 5, 6)))  # succeeds, returns 5
            results.append((yield Cas(ADDR, 5, 7)))  # fails, returns 6

        _, _, protocol = run_program(MesiProtocol, program())
        assert results == [5, 6]
        assert protocol.memory.read(ADDR) == 6

    def test_fai_and_swap(self):
        results = []

        def program():
            results.append((yield Fai(ADDR)))
            results.append((yield Fai(ADDR, delta=10)))
            results.append((yield Swap(ADDR, 99)))

        _, _, protocol = run_program(MesiProtocol, program())
        assert results == [0, 1, 11]
        assert protocol.memory.read(ADDR) == 99

    def test_unknown_op_raises(self):
        def program():
            yield object()

        with pytest.raises(TypeError):
            run_program(MesiProtocol, program())


class TestBuckets:
    def test_bucket_override_routes_cycles(self):
        def program():
            yield PushBucket(TimeComponent.BARRIER_STALL)
            yield Compute(30)
            yield Load(ADDR)
            yield PopBucket()
            yield Compute(5)

        cores, _, _ = run_program(MesiProtocol, program())
        time = cores[0].time
        assert time.get(TimeComponent.BARRIER_STALL) > 30
        assert time.get(TimeComponent.COMPUTE) == 5
        assert time.get(TimeComponent.MEMORY_STALL) == 0

    def test_pop_without_push_raises(self):
        def program():
            yield PopBucket()

        with pytest.raises(RuntimeError):
            run_program(MesiProtocol, program())


class TestWaitLoad:
    @pytest.mark.parametrize(
        "protocol_cls", [MesiProtocol, DeNovoSync0Protocol, DeNovoSyncProtocol]
    )
    def test_waiter_wakes_on_write(self, protocol_cls):
        order = []

        def waiter():
            value = yield WaitLoad(ADDR, lambda v: v == 7, sync=True)
            order.append(("woke", value))

        def writer():
            yield Compute(5000)
            order.append(("writing", 7))
            yield Store(ADDR, 7, sync=True, release=True)

        cores, _, _ = run_program(protocol_cls, waiter(), writer())
        assert all(core.done for core in cores)
        assert order[0] == ("writing", 7)
        assert order[1] == ("woke", 7)

    def test_immediately_satisfied_wait(self):
        seen = {}

        def program():
            yield Store(ADDR, 3, sync=True)
            seen["v"] = yield WaitLoad(ADDR, lambda v: v == 3, sync=True)

        cores, _, _ = run_program(MesiProtocol, program())
        assert seen["v"] == 3

    def test_mesi_waiter_spins_without_traffic(self):
        def waiter():
            yield WaitLoad(ADDR, lambda v: v == 1, sync=True)

        def writer():
            yield Compute(20000)
            yield Store(ADDR, 1, sync=True)

        cores, _, protocol = run_program(MesiProtocol, waiter(), writer())
        # The waiter's wait shows up as compute (local spinning), and the
        # whole wait produced only a couple of misses.
        assert cores[0].time.get(TimeComponent.COMPUTE) > 10000
        assert protocol.counters.get("l1_misses") < 10

    def test_denovo_waiter_sleeps_on_registration(self):
        def waiter():
            yield WaitLoad(ADDR, lambda v: v == 1, sync=True)

        def writer():
            yield Compute(20000)
            yield Store(ADDR, 1, sync=True)

        cores, _, protocol = run_program(DeNovoSync0Protocol, waiter(), writer())
        assert all(core.done for core in cores)
        # One registering miss, then a local hit-spin until the write steal.
        assert protocol.counters.get("sync_read_misses") <= 3

    def test_multiple_waiters_all_wake(self):
        woke = []

        def waiter(tag):
            yield WaitLoad(ADDR, lambda v: v >= 1, sync=True)
            woke.append(tag)

        def writer():
            yield Compute(30000)
            yield Store(ADDR, 1, sync=True, release=True)

        programs = [waiter(i) for i in range(6)] + [writer()]
        cores, _, _ = run_program(DeNovoSyncProtocol, *programs)
        assert sorted(woke) == list(range(6))
        assert all(core.done for core in cores)


class TestHardwareBackoffAccounting:
    def test_hw_backoff_cycles_tracked(self):
        def victim():
            yield Load(ADDR, sync=True)  # register
            yield Compute(5000)
            yield Load(ADDR, sync=True)  # Valid now: backs off first

        def thief():
            yield Compute(1000)
            yield Load(ADDR, sync=True)  # steals from the victim

        cores, _, protocol = run_program(DeNovoSyncProtocol, victim(), thief())
        assert cores[0].time.get(TimeComponent.HW_BACKOFF) > 0
        assert protocol.counters.get("hw_backoff_events") >= 1


class TestSelfInvalidateOp:
    def test_self_invalidate_drops_valid_words(self):
        from repro.mem.address import AddressMap
        from repro.mem.regions import RegionAllocator

        config = config_16()
        allocator = RegionAllocator(AddressMap(config))
        alloc = allocator.alloc("shared", 4)
        protocol = DeNovoSync0Protocol(config, allocator)
        sim = Simulator()
        core = Core(0, sim, protocol)
        seen = []

        def program():
            yield Load(alloc.base)
            yield SelfInvalidate((alloc.region,))
            seen.append(protocol.l1s[0].state_of(alloc.base))

        core.start(program())
        sim.run()
        from repro.mem.l1 import DeNovoState

        assert seen == [DeNovoState.INVALID]
