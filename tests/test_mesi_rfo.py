"""Tests for the MESI read-for-ownership extension."""

import pytest

from repro.config import config_16
from repro.harness.runner import run_workload
from repro.mem.l1 import MesiState
from repro.protocols.mesi_rfo import MesiRfoProtocol
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel

ADDR = 100


@pytest.fixture
def proto():
    return MesiRfoProtocol(config_16())


class TestRfoSemantics:
    def test_sync_read_takes_ownership(self, proto):
        proto.load(0, ADDR, sync=True)
        line = proto.amap.line_of(ADDR)
        assert proto.l1s[0].state_of(line) is MesiState.MODIFIED
        assert proto.counters.get("rfo_sync_reads") == 1

    def test_data_read_unchanged(self, proto):
        proto.load(0, ADDR)
        line = proto.amap.line_of(ADDR)
        assert proto.l1s[0].state_of(line) is MesiState.EXCLUSIVE

    def test_write_after_sync_read_hits(self, proto):
        proto.load(0, ADDR, sync=True)
        access = proto.store(0, ADDR, 1, sync=True)
        assert access.hit  # the array-lock flag-reset effect

    def test_sync_readers_invalidate_each_other(self, proto):
        proto.load(0, ADDR, sync=True)
        proto.set_time(1000)
        proto.load(1, ADDR, sync=True, ticketed=True)
        line = proto.amap.line_of(ADDR)
        assert proto.l1s[0].state_of(line) is None  # R-R ping-pong
        assert proto.l1s[1].state_of(line) is MesiState.MODIFIED

    def test_sync_read_sees_latest_value(self, proto):
        proto.store(0, ADDR, 7, sync=True)
        proto.set_time(1000)
        assert proto.load(1, ADDR, sync=True, ticketed=True).value == 7


class TestRfoEndToEnd:
    @pytest.mark.parametrize("figure", ["tatas", "array"])
    def test_counter_kernel_correct(self, figure):
        workload = make_kernel(figure, "counter", spec=KernelSpec(iterations=3))
        result = run_workload(
            workload, "MESI-RFO", config_16(), seed=3, keep_protocol=True
        )
        assert result.meta["protocol"].memory.read(workload.counter.addr) == 48

    def test_rfo_saves_the_array_lock_write_miss(self):
        """Section 6.1.2: the flag-reset write after an array-lock acquire
        is a separate ownership request under plain MESI but a hit under
        RFO (and under DeNovo)."""
        spec = KernelSpec(scale=0.05)
        base = run_workload(
            make_kernel("array", "counter", spec=spec), "MESI", config_16(), seed=1
        )
        rfo = run_workload(
            make_kernel("array", "counter", spec=spec), "MESI-RFO", config_16(), seed=1
        )
        assert rfo.cycles <= base.cycles

    def test_exhaustive_verification(self):
        from repro.verify import explore_protocol, rmw_inc, sync_load, sync_store

        programs = [
            [sync_store(64, 1), sync_load(64)],
            [rmw_inc(64), sync_load(64)],
        ]
        report = explore_protocol("MESI-RFO", programs)
        assert report.ok, report.failures[:1]
