"""The README's quick-start path must work from the top-level package."""

import repro


class TestPublicApi:
    def test_quickstart_path(self):
        workload = repro.make_kernel(
            "tatas", "counter", spec=repro.KernelSpec(scale=0.02)
        )
        result = repro.run_workload(workload, "DeNovoSync", repro.config_16(), seed=1)
        assert result.cycles > 0
        assert isinstance(result, repro.RunResult)

    def test_app_entry_point(self):
        workload = repro.make_app("blackscholes", scale=0.05)
        result = repro.run_workload(
            workload, "MESI", repro.config_for_cores(16), seed=1
        )
        assert result.cycles > 0

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_protocol_registry(self):
        assert set(repro.PROTOCOLS) >= {"MESI", "DeNovoSync0", "DeNovoSync"}
        protocol = repro.make_protocol("MESI", repro.config_16())
        assert protocol.name == "MESI"

    def test_version(self):
        assert repro.__version__
