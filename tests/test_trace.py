"""Tests for the trace subsystem: record, persist, analyze, replay."""

import pytest

from repro.config import config_16, config_for_cores
from repro.harness.runner import run_workload
from repro.trace.analysis import interleaving_histogram, summarize
from repro.trace.events import AccessRecord, read_trace, write_trace
from repro.trace.replay import TraceReplayWorkload
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel


@pytest.fixture(scope="module")
def traced_run():
    workload = make_kernel("tatas", "counter", spec=KernelSpec(iterations=4, scale=1.0))
    return run_workload(workload, "MESI", config_16(), seed=1, trace=True)


class TestRecorder:
    def test_trace_attached_to_result(self, traced_run):
        trace = traced_run.meta["trace"]
        assert len(trace) > 0
        assert all(isinstance(r, AccessRecord) for r in trace)

    def test_cycles_nondecreasing_per_core(self, traced_run):
        last = {}
        for record in traced_run.meta["trace"]:
            assert record.cycle >= last.get(record.core, 0)
            last[record.core] = record.cycle

    def test_kinds_present(self, traced_run):
        kinds = {r.kind for r in traced_run.meta["trace"]}
        assert {"load", "store", "rmw", "selfinv"} <= kinds

    def test_rmw_records_post_value(self):
        """FAI increments must record the incremented value for replay."""
        workload = make_kernel(
            "nonblocking", "FAI counter", spec=KernelSpec(iterations=2, scale=1.0)
        )
        result = run_workload(workload, "DeNovoSync", config_16(), seed=1, trace=True)
        rmws = [r for r in result.meta["trace"] if r.kind == "rmw"]
        assert sorted(r.value for r in rmws) == list(range(1, len(rmws) + 1))

    def test_tracing_does_not_change_timing(self):
        def make():
            return make_kernel("tatas", "counter", spec=KernelSpec(scale=0.05))
        plain = run_workload(make(), "DeNovoSync", config_16(), seed=2)
        traced = run_workload(make(), "DeNovoSync", config_16(), seed=2, trace=True)
        assert plain.cycles == traced.cycles
        assert plain.total_traffic == traced.total_traffic


class TestPersistence:
    def test_roundtrip(self, traced_run, tmp_path):
        path = tmp_path / "trace.jsonl"
        trace = traced_run.meta["trace"]
        count = write_trace(trace, path)
        assert count == len(trace)
        back = read_trace(path)
        assert back == trace

    def test_record_json_roundtrip(self):
        record = AccessRecord(
            cycle=5, core=2, kind="store", addr=100, sync=True, release=True,
            value=9, latency=30, hit=False,
        )
        assert AccessRecord.from_json(record.to_json()) == record


class TestFormatVersioning:
    def test_written_trace_carries_version_header(self, tmp_path):
        import json

        from repro.trace.events import TRACE_FORMAT_VERSION

        path = tmp_path / "trace.jsonl"
        write_trace([AccessRecord(cycle=0, core=0, kind="load", addr=4)], path)
        first_line = path.read_text().splitlines()[0]
        assert json.loads(first_line) == {"trace_format": TRACE_FORMAT_VERSION}

    def test_headerless_v1_trace_still_reads(self, tmp_path):
        record = AccessRecord(cycle=3, core=1, kind="store", addr=8, value=7)
        path = tmp_path / "v1.jsonl"
        path.write_text(record.to_json() + "\n")
        assert read_trace(path) == [record]

    def test_bad_version_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"trace_format": "two"}\n')
        with pytest.raises(ValueError, match="trace_format"):
            read_trace(path)

    def test_from_json_tolerates_unknown_keys(self):
        record = AccessRecord(cycle=1, core=0, kind="load", addr=12, sync=True)
        import json

        data = json.loads(record.to_json())
        data["future_field"] = {"nested": True}
        assert AccessRecord.from_json(json.dumps(data)) == record


class TestAcquireRoundTrip:
    """Satellite fix: the trace layer used to drop the ``acquire`` flag
    on loads and RMWs, so a replayed trace lost its self-invalidation
    points under DeNovo."""

    @pytest.fixture(scope="class")
    def lock_trace(self):
        # The MCS lock acquires via an acquire-marked tail swap (rmw) and
        # spins on its queue node with an acquire wait (load).
        workload = make_kernel(
            "mcs", "counter", spec=KernelSpec(iterations=4, scale=1.0)
        )
        result = run_workload(
            workload, "DeNovoSync", config_16(), seed=1, trace=True
        )
        return result.meta["trace"]

    def test_acquire_recorded_on_rmws(self, lock_trace):
        assert any(r.kind == "rmw" and r.acquire for r in lock_trace)

    def test_acquire_recorded_on_loads(self, lock_trace):
        assert any(r.kind == "load" and r.acquire for r in lock_trace)

    def test_acquire_survives_disk_roundtrip(self, lock_trace, tmp_path):
        path = tmp_path / "lock.jsonl"
        write_trace(lock_trace, path)
        back = read_trace(path)
        assert [r.acquire for r in back] == [r.acquire for r in lock_trace]

    def test_replay_preserves_acquire(self, lock_trace):
        replay = TraceReplayWorkload(lock_trace)
        result = run_workload(
            replay, "DeNovoSync", config_16(), seed=0, trace=True
        )
        replayed = result.meta["trace"]
        assert any(r.acquire for r in replayed)
        # Per-core acquire streams match the original (rmw kinds replay
        # as swaps, so compare (addr, acquire) sequences).
        def acquires(trace):
            out = {}
            for r in trace:
                if r.kind in ("load", "rmw"):
                    out.setdefault(r.core, []).append((r.addr, r.acquire))
            return out

        assert acquires(replayed) == acquires(lock_trace)


class TestAnalysis:
    def test_summary_counts(self, traced_run):
        summary = summarize(traced_run.meta["trace"])
        assert summary.accesses == summary.hits + summary.misses
        assert summary.by_kind["rmw"] > 0
        assert 0.0 <= summary.hit_rate <= 1.0
        assert summary.avg_miss_latency >= summary.avg_latency * 0.5

    def test_hot_word_is_the_lock(self, traced_run):
        summary = summarize(traced_run.meta["trace"])
        hot_addr, _ = summary.hot_words[0]
        histogram = interleaving_histogram(traced_run.meta["trace"], hot_addr)
        # Every core hammered the hottest word (the lock).
        assert len(histogram) == 16

    def test_sharing_degree(self, traced_run):
        summary = summarize(traced_run.meta["trace"])
        assert summary.max_sharing_degree == 16
        assert summary.read_shared_words >= 1

    def test_empty_trace(self):
        summary = summarize([])
        assert summary.accesses == 0
        assert summary.hit_rate == 0.0
        assert summary.hot_words == []


class TestReplay:
    def test_replay_runs_under_other_protocol(self, traced_run):
        replay = TraceReplayWorkload(traced_run.meta["trace"])
        result = run_workload(replay, "DeNovoSync", config_16(), seed=0)
        assert result.cycles > 0
        assert result.meta["replayed_records"] > 0

    def test_replay_preserves_reference_stream(self, traced_run):
        original = [
            (r.core, r.kind, r.addr)
            for r in traced_run.meta["trace"]
            if r.kind in ("load", "store", "rmw")
        ]
        replay = TraceReplayWorkload(traced_run.meta["trace"])
        result = run_workload(replay, "MESI", config_16(), seed=0, trace=True)
        replayed = [
            (r.core, r.kind, r.addr)
            for r in result.meta["trace"]
            if r.kind in ("load", "store", "rmw")
        ]
        # Same per-core streams (rmw replays as a store-flavoured rmw).
        def per_core(stream):
            out = {}
            for core, kind, addr in stream:
                out.setdefault(core, []).append((kind.replace("rmw", "rmw"), addr))
            return out

        orig_map, replay_map = per_core(original), per_core(replayed)
        assert set(orig_map) == set(replay_map)
        for core in orig_map:
            assert [a for _, a in orig_map[core]] == [a for _, a in replay_map[core]]

    def test_replay_rejects_too_small_config(self, traced_run):
        replay = TraceReplayWorkload(traced_run.meta["trace"])
        with pytest.raises(ValueError, match="core"):
            run_workload(replay, "MESI", config_for_cores(4), seed=0)

    def test_gap_compression(self):
        records = [
            AccessRecord(cycle=0, core=0, kind="load", addr=50),
            AccessRecord(cycle=10**9, core=0, kind="load", addr=51),
        ]
        replay = TraceReplayWorkload(records, compress_gaps=500)
        result = run_workload(replay, "MESI", config_for_cores(4), seed=0)
        assert result.cycles < 10_000
