"""Tests for the coherence microbenchmarks."""

import pytest

from repro.config import config_for_cores
from repro.harness.runner import run_workload
from repro.workloads.micro import (
    MICROBENCHES,
    AllToAll,
    FalseSharingMicro,
    PingPong,
    ProducerConsumer,
    ReadOnlySharing,
)

PROTOCOLS = ["MESI", "DeNovoSync0", "DeNovoSync"]


@pytest.mark.parametrize("name", list(MICROBENCHES))
@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestMicrobenchesRun:
    def test_runs_to_completion(self, name, protocol):
        workload = MICROBENCHES[name](rounds=4)
        result = run_workload(workload, protocol, config_for_cores(16), seed=1)
        assert result.cycles > 0


class TestMicrobenchSemantics:
    def test_pingpong_final_count(self):
        workload = PingPong(rounds=10)
        result = run_workload(
            workload, "DeNovoSync", config_for_cores(4), seed=1, keep_protocol=True
        )
        # 10 rounds x 2 cores of strictly alternating increments.
        protocol = result.meta["protocol"]
        instance_word = None
        # the single sync word is the first padded allocation
        for alloc in protocol.allocator.allocations:
            if alloc.region.name == "pp.word":
                instance_word = alloc.base
        assert protocol.memory.read(instance_word) == 20

    def test_false_sharing_hurts_mesi_only(self):
        config = config_for_cores(16)
        mesi = run_workload(FalseSharingMicro(rounds=20), "MESI", config, seed=1)
        denovo = run_workload(
            FalseSharingMicro(rounds=20), "DeNovoSync", config, seed=1
        )
        # MESI ping-pongs whole lines between the word owners.
        assert mesi.counters.get("invalidations_sent") > 0
        assert denovo.cycles < mesi.cycles
        assert denovo.total_traffic < mesi.total_traffic

    def test_read_only_sharing_is_cheap_everywhere(self):
        config = config_for_cores(16)
        for protocol in PROTOCOLS:
            result = run_workload(ReadOnlySharing(rounds=10), protocol, config, seed=1)
            hits = result.counters.get("l1_hits")
            misses = result.counters.get("l1_misses")
            assert hits / (hits + misses) > 0.9  # warm-up only

    def test_producer_consumer_delivers_in_order(self):
        config = config_for_cores(16)
        for protocol in PROTOCOLS:
            result = run_workload(ProducerConsumer(rounds=6), protocol, config, seed=1)
            assert result.cycles > 0  # no deadlock = ordered handoffs held

    def test_all_to_all_transpose_traffic_lower_on_denovo(self):
        config = config_for_cores(16)
        mesi = run_workload(AllToAll(rounds=4), "MESI", config, seed=1)
        denovo = run_workload(AllToAll(rounds=4), "DeNovoSync", config, seed=1)
        assert denovo.total_traffic < mesi.total_traffic

    def test_invalid_rounds_rejected(self):
        with pytest.raises(ValueError):
            PingPong(rounds=0)
