"""Behavioural tests for the two registry-discovered backends:

* **Neat** — self-invalidation + self-downgrade: data writes stay dirty
  and silent in the L1 until a release flushes them (or replacement
  writes them back); sync ops resolve at the LLC and leave no cached
  copy behind.
* **SynCron** — DeNovo data path + per-bank sync units: sync ops bypass
  the L1, serialize at the home bank's SU (bounded buffer with a
  memory-overflow fallback), and recall any data-registration of the
  word first.

Plus the explicit cross-protocol differential the issue asks for: both
new backends must produce byte-identical final memory to MESI on the
random DRF program corpus across three seeds, and a final-state
structural audit must come back clean.
"""

import pytest

from repro.cpu.isa import Cas, Fai, Load, SelfInvalidate, Store, WaitLoad
from repro.mem.l1 import DeNovoState
from repro.verify.checker import check_protocol_state


def alloc_shared(machine, name, words=4):
    region = machine.allocator.region(name)
    base = machine.allocator.alloc(name, words).base
    return region, base


class TestNeatSelfDowngrade:
    def test_data_store_is_dirty_until_release(self, machine_factory):
        m = machine_factory("Neat")
        _, base = alloc_shared(m, "d")
        flag = m.allocator.alloc_sync("flag").base

        def writer():
            yield Store(base, 7)
            # Dirty, not yet published as a writeback.
            yield Store(flag, 1, sync=True, release=True)

        m.run([writer()])
        protocol = m.protocol
        # After the release the word self-downgraded to clean Valid.
        assert protocol.l1s[0].state_of(base, touch=False) is DeNovoState.VALID
        assert not protocol._dirty[0]
        assert protocol.counters.get("self_downgraded_words") == 1
        assert protocol.memory.read(base) == 7

    def test_release_flush_batches_writeback_traffic_per_line(
        self, machine_factory
    ):
        m = machine_factory("Neat")
        _, base = alloc_shared(m, "d", words=4)
        flag = m.allocator.alloc_sync("flag").base

        def writer():
            for off in range(4):  # one line's worth of dirty words
                yield Store(base + off, off + 1)
            yield Store(flag, 1, sync=True, release=True)

        m.run([writer()])
        counts = m.protocol.counters.as_dict()
        assert counts.get("self_downgraded_words") == 4
        # No per-word registration messages exist in Neat at all.
        assert not counts.get("registration_transfers")

    def test_eviction_writes_dirty_word_back(self, machine_factory):
        m = machine_factory("Neat")
        _, base = alloc_shared(m, "d")

        def writer():
            yield Store(base, 5)

        m.run([writer()])
        protocol = m.protocol
        line = protocol.amap.line_of(base)
        assert protocol.force_evict(0, line)
        assert not protocol._dirty[0]
        assert protocol.counters.get("writebacks") == 1
        assert protocol.memory.read(base) == 5
        assert not check_protocol_state(protocol)

    def test_sync_ops_leave_no_cached_copy(self, machine_factory):
        m = machine_factory("Neat")
        flag = m.allocator.alloc_sync("flag").base

        def core0():
            yield Store(flag, 3, sync=True)
            yield Fai(flag)

        m.run([core0()])
        assert (
            m.protocol.l1s[0].state_of(flag, touch=False)
            is DeNovoState.INVALID
        )
        assert m.protocol.memory.read(flag) == 4

    def test_polling_spinner_observes_release(self, machine_factory):
        m = machine_factory("Neat", num_cores=4)
        region, base = alloc_shared(m, "d")
        flag = m.allocator.alloc_sync("flag").base

        def producer():
            yield Store(base, 42)
            yield Store(flag, 1, sync=True, release=True)

        def consumer():
            yield WaitLoad(flag, lambda v: v == 1, acquire=True)
            yield SelfInvalidate((region,))
            value = yield Load(base)
            assert value == 42

        m.run([producer(), consumer()])
        assert not check_protocol_state(m.protocol)


class TestSynCronSyncUnits:
    def test_sync_ops_bypass_the_l1(self, machine_factory):
        m = machine_factory("SynCron")
        flag = m.allocator.alloc_sync("flag").base

        def core0():
            yield Store(flag, 2, sync=True)
            value = yield Load(flag, sync=True)
            assert value == 2

        m.run([core0()])
        protocol = m.protocol
        assert (
            protocol.l1s[0].state_of(flag, touch=False) is DeNovoState.INVALID
        )
        assert flag not in protocol.registry
        counts = protocol.counters.as_dict()
        assert counts.get("sync_unit_ops") == 2

    def test_contended_rmws_queue_at_the_sync_unit(self, machine_factory):
        m = machine_factory("SynCron", num_cores=4)
        counter = m.allocator.alloc_sync("c").base

        def worker():
            for _ in range(4):
                yield Fai(counter)

        m.run([worker() for _ in range(4)])
        protocol = m.protocol
        assert protocol.memory.read(counter) == 16
        counts = protocol.counters.as_dict()
        assert counts.get("sync_unit_ops") == 16
        assert counts.get("sync_unit_queue_waits", 0) > 0

    def test_bounded_buffer_overflow_falls_back_to_memory(
        self, machine_factory
    ):
        m = machine_factory("SynCron")
        protocol = m.protocol
        entries = protocol._su_entries
        # More sync variables on one bank than the SU can index: line-
        # aligned strides keep every word on bank 0's home slice.
        words_per_line = m.config.line_bytes // m.config.word_bytes
        stride = m.config.num_cores * words_per_line  # one full bank stride

        def core0():
            for i in range(entries + 8):
                yield Store(i * stride, 1, sync=True)

        m.run([core0()])
        counts = protocol.counters.as_dict()
        assert counts.get("sync_unit_overflows", 0) >= 8

    def test_sync_op_recalls_data_registration(self, machine_factory):
        m = machine_factory("SynCron")
        _, base = alloc_shared(m, "d")

        def core0():
            yield Store(base, 9)       # data path: registers the word
            yield Fai(base)            # sync path: SU must recall it

        m.run([core0()])
        protocol = m.protocol
        assert base not in protocol.registry
        assert (
            protocol.l1s[0].state_of(base, touch=False) is DeNovoState.INVALID
        )
        assert protocol.counters.get("sync_unit_recalls") == 1
        assert protocol.memory.read(base) == 10
        assert not check_protocol_state(protocol)

    def test_parked_spinner_wakes_on_value_change(self, machine_factory):
        m = machine_factory("SynCron", num_cores=4)
        flag = m.allocator.alloc_sync("flag").base
        lock = m.allocator.alloc_sync("lock").base

        def holder():
            yield Cas(lock, 0, 1)
            yield Store(flag, 1, sync=True)
            yield Store(lock, 0, sync=True, release=True)

        def waiter():
            yield WaitLoad(flag, lambda v: v == 1)
            yield WaitLoad(lock, lambda v: v == 0)

        m.run([holder(), waiter()])
        protocol = m.protocol
        assert not protocol._su_waiters  # everyone woke up


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("protocol", ["Neat", "SynCron"])
class TestNewBackendDifferential:
    """Byte-identical final memory vs. MESI on the random DRF corpus."""

    def test_final_memory_matches_mesi(self, seed, protocol):
        from tests.test_differential import _final_state

        assert _final_state(seed, protocol) == _final_state(seed, "MESI")
