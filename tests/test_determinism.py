"""Determinism and reproducibility of whole simulations."""

import pytest

from repro.config import config_16
from repro.harness.runner import run_workload
from repro.workloads.apps import make_app
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel


def run_twice(make, protocol, seed):
    a = run_workload(make(), protocol, config_16(), seed=seed)
    b = run_workload(make(), protocol, config_16(), seed=seed)
    return a, b


@pytest.mark.parametrize("protocol", ["MESI", "DeNovoSync0", "DeNovoSync"])
class TestKernelDeterminism:
    def test_same_seed_same_result(self, protocol):
        def make():
            return make_kernel("tatas", "counter", spec=KernelSpec(scale=0.05))
        a, b = run_twice(make, protocol, seed=7)
        assert a.cycles == b.cycles
        assert a.total_traffic == b.total_traffic
        assert a.traffic_breakdown() == b.traffic_breakdown()
        assert a.counters.as_dict() == b.counters.as_dict()

    def test_different_seeds_differ(self, protocol):
        def make():
            return make_kernel("tatas", "counter", spec=KernelSpec(scale=0.05))
        a = run_workload(make(), protocol, config_16(), seed=7)
        b = run_workload(make(), protocol, config_16(), seed=8)
        # Dummy-compute windows are random, so cycle counts should move.
        assert a.cycles != b.cycles

    def test_nonblocking_kernel_deterministic(self, protocol):
        def make():
            return make_kernel(
                "nonblocking", "M-S queue", spec=KernelSpec(scale=0.05)
            )
        a, b = run_twice(make, protocol, seed=9)
        assert a.cycles == b.cycles
        assert a.total_traffic == b.total_traffic


class TestAppDeterminism:
    def test_app_model_deterministic(self):
        from repro.config import config_for_cores

        config = config_for_cores(16)
        a = run_workload(make_app("ferret", scale=0.1), "DeNovoSync", config, seed=4)
        b = run_workload(make_app("ferret", scale=0.1), "DeNovoSync", config, seed=4)
        assert a.cycles == b.cycles
        assert a.total_traffic == b.total_traffic
