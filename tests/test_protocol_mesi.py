"""Unit tests for the MESI directory protocol."""

import pytest

from repro.config import config_16
from repro.mem.l1 import MesiState
from repro.noc.messages import MessageClass
from repro.protocols.mesi import MesiProtocol


@pytest.fixture
def proto():
    return MesiProtocol(config_16())


ADDR = 100  # line 6, not at the requester's tile for most cores


class TestLoads:
    def test_cold_load_pays_memory_latency(self, proto):
        access = proto.load(0, ADDR)
        assert not access.hit
        assert access.latency >= proto.config.memory_latency.min
        assert proto.counters.get("cold_misses") == 1

    def test_warm_load_from_llc(self, proto):
        proto.load(0, ADDR)
        proto.l1s[0].invalidate(proto.amap.line_of(ADDR))
        access = proto.load(0, ADDR)
        assert not access.hit
        assert access.latency <= proto.config.l2_hit_latency.max

    def test_second_load_hits(self, proto):
        proto.load(0, ADDR)
        access = proto.load(0, ADDR)
        assert access.hit
        assert access.latency == 1

    def test_first_reader_gets_exclusive(self, proto):
        proto.load(0, ADDR)
        line = proto.amap.line_of(ADDR)
        assert proto.l1s[0].state_of(line) is MesiState.EXCLUSIVE

    def test_second_reader_shares_and_downgrades_owner(self, proto):
        proto.load(0, ADDR)
        proto.set_time(1000)
        proto.load(1, ADDR)
        line = proto.amap.line_of(ADDR)
        assert proto.l1s[0].state_of(line) is MesiState.SHARED
        assert proto.l1s[1].state_of(line) is MesiState.SHARED

    def test_load_forwarded_by_modified_owner_writes_back(self, proto):
        proto.store(0, ADDR, 7, sync=True)
        before = proto.traffic.flit_crossings(MessageClass.WRITEBACK)
        proto.set_time(1000)
        access = proto.load(1, ADDR, ticketed=True)
        assert access.value == 7
        assert proto.traffic.flit_crossings(MessageClass.WRITEBACK) > before

    def test_loads_see_latest_value(self, proto):
        proto.store(0, ADDR, 41, sync=True)
        proto.set_time(1000)
        assert proto.load(1, ADDR, ticketed=True).value == 41


class TestStores:
    def test_data_store_is_non_blocking(self, proto):
        access = proto.store(0, ADDR, 5)
        assert access.latency == 1
        assert proto.memory.read(ADDR) == 5

    def test_sync_store_blocks_for_miss_latency(self, proto):
        access = proto.store(0, ADDR, 5, sync=True)
        assert access.latency > 1

    def test_store_hit_in_modified(self, proto):
        proto.store(0, ADDR, 5, sync=True)
        access = proto.store(0, ADDR, 6, sync=True)
        assert access.hit
        assert access.latency == 1

    def test_silent_upgrade_from_exclusive(self, proto):
        proto.load(0, ADDR)  # E grant
        before = proto.traffic.flit_crossings()
        access = proto.store(0, ADDR, 5, sync=True)
        assert access.hit
        assert proto.traffic.flit_crossings() == before

    def test_store_invalidates_sharers(self, proto):
        proto.load(0, ADDR)
        proto.set_time(500)
        proto.load(1, ADDR, ticketed=True)
        proto.set_time(1000)
        proto.load(2, ADDR, ticketed=True)
        proto.set_time(2000)
        proto.store(1, ADDR, 9, sync=True, ticketed=True)
        line = proto.amap.line_of(ADDR)
        assert proto.l1s[0].state_of(line) is None
        assert proto.l1s[2].state_of(line) is None
        assert proto.l1s[1].state_of(line) is MesiState.MODIFIED
        assert proto.counters.get("invalidations_sent") >= 2

    def test_invalidation_traffic_counted(self, proto):
        proto.load(0, ADDR)
        proto.set_time(500)
        proto.load(1, ADDR, ticketed=True)
        proto.set_time(1000)
        assert proto.traffic.flit_crossings(MessageClass.INVALIDATION) == 0
        proto.store(0, ADDR, 9, sync=True, ticketed=True)
        assert proto.traffic.flit_crossings(MessageClass.INVALIDATION) > 0

    def test_upgrade_latency_covers_invalidation(self, proto):
        proto.load(0, ADDR)
        proto.set_time(500)
        proto.load(1, ADDR, ticketed=True)
        proto.set_time(1000)
        bank = proto.amap.home_bank_of_addr(ADDR)
        access = proto.store(0, ADDR, 9, sync=True, ticketed=True)
        inv_rtt = proto.mesh.invalidation_round_trip(bank, 1)
        assert access.latency >= inv_rtt


class TestRmw:
    def test_rmw_returns_old_applies_new(self, proto):
        proto.store(0, ADDR, 10)
        proto.set_time(100)
        access = proto.rmw(0, ADDR, lambda old: old + 1)
        assert access.value == 10
        assert proto.memory.read(ADDR) == 11

    def test_failed_cas_leaves_memory(self, proto):
        proto.store(0, ADDR, 10)
        proto.set_time(100)
        access = proto.rmw(0, ADDR, lambda old: None)
        assert access.value == 10
        assert proto.memory.read(ADDR) == 10

    def test_rmw_takes_ownership(self, proto):
        proto.rmw(0, ADDR, lambda old: 1)
        line = proto.amap.line_of(ADDR)
        assert proto.l1s[0].state_of(line) is MesiState.MODIFIED


class TestBlockingDirectory:
    def test_busy_entry_returns_retry(self, proto):
        proto.load(0, ADDR)  # cold fetch leaves the entry busy briefly
        access = proto.load(1, ADDR)
        assert access.retry
        assert access.latency > 0
        assert proto.counters.get("directory_retries") == 1

    def test_ticketed_request_serviced_despite_busy(self, proto):
        proto.load(0, ADDR)
        access = proto.load(1, ADDR, ticketed=True)
        assert not access.retry

    def test_retry_extends_reservation(self, proto):
        proto.load(0, ADDR)
        line = proto.amap.line_of(ADDR)
        before = proto._directory[line].busy_until
        proto.load(1, ADDR)
        assert proto._directory[line].busy_until > before

    def test_hits_never_retry(self, proto):
        proto.load(0, ADDR)
        access = proto.load(0, ADDR)  # own hit, directory not consulted
        assert not access.retry


class TestSubscriptions:
    def test_subscribe_requires_cached_copy(self, proto):
        assert proto.subscribe_line_change(0, ADDR, lambda t: None) is False
        proto.load(0, ADDR)
        assert proto.subscribe_line_change(0, ADDR, lambda t: None) is True

    def test_waiter_woken_by_invalidation(self, proto):
        proto.load(0, ADDR)
        proto.set_time(500)
        proto.load(1, ADDR, ticketed=True)
        wakes = []
        proto.subscribe_line_change(0, ADDR, wakes.append)
        proto.set_time(1000)
        proto.store(1, ADDR, 1, sync=True, ticketed=True)
        assert len(wakes) == 1
        assert wakes[0] >= 1000

    def test_other_cores_waiters_not_woken(self, proto):
        proto.load(0, ADDR)
        proto.set_time(500)
        proto.load(1, ADDR, ticketed=True)
        proto.set_time(600)
        proto.load(2, ADDR, ticketed=True)
        wakes0, wakes2 = [], []
        proto.subscribe_line_change(0, ADDR, wakes0.append)
        proto.subscribe_line_change(2, ADDR, wakes2.append)
        proto.set_time(1000)
        # Core 2 upgrades: invalidates 0 but keeps its own copy.
        proto.store(2, ADDR, 1, sync=True, ticketed=True)
        assert len(wakes0) == 1
        assert wakes2 == []


class TestSelfInvalidate:
    def test_noop_for_mesi(self, proto):
        from repro.mem.regions import Region

        latency = proto.self_invalidate(0, [Region("r", 0)])
        assert latency == 1


def tiny_l1_proto() -> MesiProtocol:
    """A 2-line, single-set L1 so back-to-back fills force replacements."""
    return MesiProtocol(config_16(l1_bytes=128, l1_assoc=2))


class TestWaiterEviction:
    """A spin-waiter whose cached copy falls to its *own* L1 replacement
    must be woken (the writer's invalidation will never reach it)."""

    def test_own_eviction_wakes_waiter(self):
        proto = tiny_l1_proto()
        words = proto.config.words_per_line
        addr_a, addr_b, addr_c = 0, words, 2 * words  # three distinct lines
        proto.load(0, addr_a)
        wakes = []
        assert proto.subscribe_line_change(0, addr_a, wakes.append) is True
        proto.set_time(100)
        proto.load(0, addr_b)  # fills the second way; A still resident
        assert wakes == []
        proto.set_time(200)
        proto.load(0, addr_c)  # evicts A (LRU) from core 0's own L1
        assert wakes == [200]
        assert proto.l1s[0].state_of(proto.amap.line_of(addr_a), touch=False) is None
        # The waiter registration must not linger after the wake.
        assert not proto._waiters.get(proto.amap.line_of(addr_a))

    def test_modified_victim_eviction_wakes_waiter(self):
        proto = tiny_l1_proto()
        words = proto.config.words_per_line
        addr_a, addr_b, addr_c = 0, words, 2 * words
        proto.store(0, addr_a, 7, sync=True)  # Modified copy
        wakes = []
        assert proto.subscribe_line_change(0, addr_a, wakes.append) is True
        proto.set_time(50)
        proto.load(0, addr_b)
        proto.set_time(90)
        proto.load(0, addr_c)  # evicts dirty A: writeback + wake
        assert wakes == [90]
        assert proto.counters.get("writebacks") >= 1

    def test_other_cores_waiters_survive_local_eviction(self):
        proto = tiny_l1_proto()
        words = proto.config.words_per_line
        addr_a, addr_b, addr_c = 0, words, 2 * words
        proto.load(0, addr_a)
        proto.set_time(500)
        proto.load(1, addr_a, ticketed=True)
        wakes0, wakes1 = [], []
        proto.subscribe_line_change(0, addr_a, wakes0.append)
        proto.subscribe_line_change(1, addr_a, wakes1.append)
        proto.set_time(600)
        proto.load(0, addr_b)
        proto.set_time(700)
        proto.load(0, addr_c)  # core 0 loses A; core 1's copy is intact
        assert wakes0 == [700]
        assert wakes1 == []


class TestRemoteDowngradeLru:
    def test_remote_downgrade_does_not_refresh_victim_lru(self):
        # Core 1's load forwards from owner core 0 and downgrades its copy
        # to Shared; that remote poke must not make the line recently-used
        # in core 0's replacement order.
        proto = tiny_l1_proto()
        words = proto.config.words_per_line
        addr_a, addr_b, addr_c = 0, words, 2 * words
        proto.load(0, addr_a)  # Exclusive, oldest local touch
        proto.set_time(10)
        proto.load(0, addr_b)
        proto.set_time(2000)
        proto.load(1, addr_a, ticketed=True)  # owner forward, A -> Shared
        proto.set_time(4000)
        proto.load(0, addr_c)  # replacement: A is still core 0's LRU victim
        l1 = proto.l1s[0]
        assert l1.state_of(proto.amap.line_of(addr_a), touch=False) is None
        assert l1.state_of(proto.amap.line_of(addr_b), touch=False) is not None


class TestEviction:
    def test_modified_eviction_writes_back_and_clears_owner(self, proto):
        config = proto.config
        num_sets = config.l1_sets
        words_per_line = config.words_per_line
        lines = [i * num_sets + 1 for i in range(config.l1_assoc + 1)]
        for i, line in enumerate(lines):
            proto.set_time(i * 1000)
            proto.store(0, line * words_per_line, i, sync=True, ticketed=True)
        victim_line = lines[0]
        assert proto.l1s[0].state_of(victim_line, touch=False) is None
        assert proto._directory[victim_line].exclusive_owner is None
        assert proto.counters.get("writebacks") >= 1
