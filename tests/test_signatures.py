"""Tests for the signature-based data-consistency extension."""

import pytest

from repro.config import config_for_cores
from repro.cpu.isa import Compute, Load, Store
from repro.harness.runner import run_workload
from repro.protocols.signatures import (
    SIGNATURE_CAPACITY,
    DeNovoSyncSigProtocol,
)
from repro.synclib.tatas import TatasLock
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel

ADDR_LOCK = 64
ADDR_DATA = 160


@pytest.fixture
def proto():
    return DeNovoSyncSigProtocol(config_for_cores(4))


def _spaced(proto):
    """Advance the protocol clock far enough that nothing overlaps."""
    proto.set_time(proto.now + 5000)


class TestSignatureMechanics:
    def test_writes_accumulate_in_core_signature(self, proto):
        proto.store(0, ADDR_DATA, 1)
        proto.store(0, ADDR_DATA + 1, 2)
        assert proto._core_sigs[0] == {ADDR_DATA, ADDR_DATA + 1}

    def test_sync_writes_not_in_signature(self, proto):
        proto.store(0, ADDR_LOCK, 1, sync=True)
        assert proto._core_sigs[0] == set()

    def test_release_attaches_and_clears(self, proto):
        proto.store(0, ADDR_DATA, 1)
        _spaced(proto)
        proto.store(0, ADDR_LOCK, 0, sync=True, release=True)
        assert proto._core_sigs[0] == set()
        epochs = [e for e, _ in proto._var_log[ADDR_LOCK]]
        assert len(epochs) == 1
        assert set().union(*[w for _, w in proto._var_log[ADDR_LOCK]]) == {ADDR_DATA}

    def test_release_wave_reattaches(self, proto):
        """Consecutive releases with no intervening writes carry the same
        signature (tree-barrier departure waves)."""
        proto.store(0, ADDR_DATA, 1)
        _spaced(proto)
        proto.store(0, ADDR_LOCK, 0, sync=True, release=True)
        _spaced(proto)
        proto.store(0, ADDR_LOCK + 16, 0, sync=True, release=True)
        words = set().union(*[w for _, w in proto._var_log[ADDR_LOCK + 16]])
        assert ADDR_DATA in words

    def test_acquire_invalidates_valid_copies_only(self, proto):
        # Core 1 caches the data word as Valid.
        proto.load(1, ADDR_DATA)
        # Core 0 writes it and releases.
        _spaced(proto)
        proto.store(0, ADDR_DATA, 9)
        proto.store(0, ADDR_LOCK, 0, sync=True, release=True)
        # Core 1 acquires: its stale Valid copy must die.
        _spaced(proto)
        proto.on_acquire(1, ADDR_LOCK)
        from repro.mem.l1 import DeNovoState

        assert proto.l1s[1].state_of(ADDR_DATA) is DeNovoState.INVALID
        assert proto.load(1, ADDR_DATA, ticketed=True).value == 9

    def test_acquire_delivers_only_the_delta(self, proto):
        """A second acquire sees only releases after the first."""
        proto.store(0, ADDR_DATA, 1)
        _spaced(proto)
        proto.store(0, ADDR_LOCK, 0, sync=True, release=True)
        _spaced(proto)
        proto.on_acquire(1, ADDR_LOCK)  # consumes the first delta
        # Core 1 re-caches the word.
        proto.load(1, ADDR_DATA, ticketed=True)
        _spaced(proto)
        proto.on_acquire(1, ADDR_LOCK)  # no new releases: no invalidation
        from repro.mem.l1 import DeNovoState

        assert proto.l1s[1].state_of(ADDR_DATA) is DeNovoState.VALID

    def test_transitivity_through_second_variable(self, proto):
        lock2 = ADDR_LOCK + 32
        proto.store(0, ADDR_DATA, 5)
        _spaced(proto)
        proto.store(0, ADDR_LOCK, 0, sync=True, release=True)
        # Core 1: acquire L1, release L2 (writes nothing itself).
        _spaced(proto)
        proto.on_acquire(1, ADDR_LOCK)
        _spaced(proto)
        proto.store(1, lock2, 0, sync=True, release=True)
        # Core 2 cached the stale word, then acquires only L2.
        proto.load(2, ADDR_DATA, ticketed=True)
        _spaced(proto)
        proto.store(0, ADDR_DATA, 6)  # newer write, before core 2's acquire?
        # (core 0's write isn't ordered by L2 — reset to the released value)
        proto.memory.write(ADDR_DATA, 5)
        proto.on_acquire(2, lock2)
        from repro.mem.l1 import DeNovoState

        assert proto.l1s[2].state_of(ADDR_DATA) is not DeNovoState.VALID

    def test_static_selfinv_is_noop(self, proto):
        from repro.mem.address import AddressMap
        from repro.mem.regions import RegionAllocator

        allocator = RegionAllocator(AddressMap(proto.config))
        region = allocator.region("r")
        latency = proto.self_invalidate(0, [region])
        assert latency == proto.config.tuning.self_invalidate_latency

    def test_flush_all_still_works(self, proto):
        proto.load(0, ADDR_DATA)
        proto.self_invalidate(0, [], flush_all=True)
        from repro.mem.l1 import DeNovoState

        assert proto.l1s[0].state_of(ADDR_DATA) is DeNovoState.INVALID


class TestOverflowPaths:
    def test_core_signature_overflow_degrades_to_flush(self, proto):
        sig = proto._core_sigs[0]
        for i in range(SIGNATURE_CAPACITY + 1):
            sig.add(10_000 + i)
        proto._record_write(0, 99_999)
        assert proto._core_sigs[0] is None
        _spaced(proto)
        proto.store(0, ADDR_LOCK, 0, sync=True, release=True)
        # Core 1, having cached something, must flush on acquire.
        proto.load(1, ADDR_DATA, ticketed=True)
        _spaced(proto)
        proto.on_acquire(1, ADDR_LOCK)
        from repro.mem.l1 import DeNovoState

        assert proto.l1s[1].state_of(ADDR_DATA) is DeNovoState.INVALID
        assert proto.counters.get("signature_flushes") == 1

    def test_log_pruning_forces_straggler_flush(self, proto):
        # Many big releases blow past the log capacity.
        for round_no in range(20):
            for i in range(400):
                proto._record_write(0, 50_000 + round_no * 400 + i)
            _spaced(proto)
            proto.store(0, ADDR_LOCK, round_no, sync=True, release=True)
        assert proto.counters.get("signature_log_prunes") > 0
        proto.load(1, ADDR_DATA, ticketed=True)
        _spaced(proto)
        proto.on_acquire(1, ADDR_LOCK)  # first acquire: history incomplete
        assert proto.counters.get("signature_flushes") >= 1


class TestEndToEnd:
    @staticmethod
    def _writer_reader_programs(machine, lock, word, observed):
        """A writer increments ``word`` under the lock; a read-only
        observer caches it early (a stale Valid copy under DeNovo), then
        re-reads it under the lock at the very end."""

        def writer(ctx):
            for _ in range(20):
                yield from lock.acquire(ctx)
                value = yield Load(word)
                yield Store(word, value + 1)
                yield from lock.release()
                yield Compute(ctx.rng.randrange(50, 150))

        def reader(ctx):
            yield Load(word)  # early read: caches a Valid copy
            yield Compute(60_000)  # the writer finishes meanwhile
            yield from lock.acquire(ctx)
            observed.append((yield Load(word)))
            yield from lock.release()

        return [writer(machine.ctx(0)), reader(machine.ctx(1))]

    def test_signatures_deliver_freshness_without_regions(self, machine_factory):
        """The headline: correct data under locks with zero region info."""
        machine = machine_factory("DeNovoSyncSig", 4)
        lock = TatasLock(machine.allocator)
        word = machine.allocator.alloc("plain.data").base
        observed = []
        machine.run(self._writer_reader_programs(machine, lock, word, observed))
        assert observed == [20]

    def test_static_denovo_is_stale_without_selfinv(self, machine_factory):
        """Sanity check of the test above: without the SelfInvalidate the
        *static* protocol hands the observer its stale Valid copy —
        signatures are doing real work, not riding on the registry."""
        machine = machine_factory("DeNovoSync", 4)
        lock = TatasLock(machine.allocator)
        word = machine.allocator.alloc("plain.data").base
        observed = []
        machine.run(self._writer_reader_programs(machine, lock, word, observed))
        assert observed[0] < 20  # the early Valid copy was served stale

    @pytest.mark.parametrize("figure", ["tatas", "array", "mcs"])
    def test_lock_kernels_run_under_signatures(self, figure):
        workload = make_kernel(figure, "counter", spec=KernelSpec(iterations=3))
        result = run_workload(
            workload, "DeNovoSyncSig", config_for_cores(16), seed=3,
            keep_protocol=True,
        )
        final = result.meta["protocol"].memory.read(workload.counter.addr)
        assert final == 16 * 3
        assert result.counters.get("signature_acquires") > 0
