"""Service-level failure handling: admission control, graceful drain,
worker-kill recovery visible through /healthz, and the chaos harness.

Each test builds its own :class:`SweepService` (event loop on a daemon
thread, real worker pool) so it can tune supervision parameters — e.g.
a huge supervision tick plus manual ``step()`` calls makes the
kill -> degraded -> recycled -> ok sequence fully deterministic.
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time

import pytest

from repro.config import config_16
from repro.harness.parallel import ResultCache, RunSpec, kernel_cell
from repro.service import ServiceClient, SweepService
from repro.service.chaos import ChaosConfig, run_service_chaos
from repro.service.client import ServiceError
from repro.workloads.base import KernelSpec


def specs_for(seeds, scale=0.02, protocol="MESI", name="counter"):
    return [
        RunSpec(
            kernel_cell("tatas", name, KernelSpec(scale=scale)),
            protocol, config_16(), seed=seed,
        )
        for seed in seeds
    ]


def poisoned_spec(seed=1):
    return RunSpec(
        kernel_cell("tatas", "no-such-kernel", KernelSpec(scale=0.02)),
        "MESI", config_16(), seed=seed,
    )


class Harness:
    """A running service on its own loop thread, with manual supervision
    stepping for the deterministic tests."""

    def __init__(self, **service_kwargs) -> None:
        service_kwargs.setdefault("host", "127.0.0.1")
        service_kwargs.setdefault("port", 0)
        service_kwargs.setdefault("workers", 2)
        self.service = SweepService(**service_kwargs)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        _, self.port = self.submit_coro(self.service.start())
        self.client = ServiceClient("127.0.0.1", self.port, timeout=30.0)

    def submit_coro(self, coro, timeout=60):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(timeout)

    def call(self, fn, *args):
        """Run a sync function on the service's event loop."""
        async def _inner():
            return fn(*args)
        return self.submit_coro(_inner())

    def pump(self):
        """One manual supervision pass, on the loop."""
        self.call(self.service.executor.supervisor.step)

    def close(self) -> None:
        self.submit_coro(self.service.stop())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


def wait_until(predicate, timeout=30.0, interval=0.005, message="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError(f"timed out waiting for {message}")


class TestAdmissionControl:
    def test_overflow_rejected_with_retry_after_and_counter(self):
        harness = Harness(workers=1, cache=None, max_queued=2)
        try:
            client = harness.client
            accepted = client.submit_specs(specs_for([7001, 7002], scale=0.5))

            with pytest.raises(ServiceError) as excinfo:
                client.submit_specs(specs_for([7003]))
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after >= 1
            assert "queue full" in str(excinfo.value)
            assert "repro_rejected_total 1" in client.metrics()

            # The accepted job is unaffected by the shed submission...
            settled = client.wait(accepted["job"], timeout=240)
            assert settled["status"] == "done"
            # ...and once the queue drains, the same submission is admitted.
            retried = client.submit_specs(specs_for([7003]))
            assert client.wait(retried["job"], timeout=240)["status"] == "done"
            health = client.healthz()
            assert health["counters"]["rejected"] == 1
        finally:
            harness.close()

    def test_rejection_leaves_no_job_behind(self):
        harness = Harness(workers=1, cache=None, max_queued=1)
        try:
            client = harness.client
            with pytest.raises(ServiceError):
                client.submit_specs(specs_for([7101, 7102]))
            assert client.jobs()["jobs"] == []
        finally:
            harness.close()


class TestGracefulDrain:
    def test_drain_rejects_new_jobs_but_persists_inflight_results(self, tmp_path):
        cache_root = tmp_path / "drain-cache"
        specs = specs_for([7201, 7202], scale=0.3)
        harness = Harness(workers=2, cache=ResultCache(cache_root))
        try:
            client = harness.client
            accepted = client.submit_specs(specs)
            harness.call(harness.service.begin_drain)

            health = client.healthz()
            assert health["status"] == "draining"
            assert health["draining"] is True

            with pytest.raises(ServiceError) as excinfo:
                client.submit_specs(specs_for([7203]))
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after is not None
            # Status endpoints keep serving while draining.
            assert client.job(accepted["job"])["job"] == accepted["job"]

            finished = harness.submit_coro(harness.service.drain(budget=120))
            assert finished is True
        finally:
            harness.close()
        # Every in-flight result was persisted before exit: a fresh cache
        # handle over the same directory serves both cells.
        cache = ResultCache(cache_root)
        for spec in specs:
            assert cache.load(spec) is not None


class TestWorkerKillRecovery:
    def test_healthz_flips_ok_degraded_ok_and_counters_are_accurate(self):
        # Huge tick: supervision only advances when the test pumps it, so
        # every phase of kill -> degraded -> recycled -> ok is observable.
        harness = Harness(workers=2, cache=None, tick=30.0)
        try:
            client = harness.client
            assert client.healthz()["status"] == "ok"
            recycled_samples = [client.healthz()["counters"]["workers_recycled"]]
            assert recycled_samples[0] == 0

            accepted = client.submit_specs(
                specs_for([7301, 7302, 7303, 7304], scale=0.5)
            )
            wait_until(
                lambda: harness.service.executor.running_count() > 0,
                message="a cell to start running",
            )
            os.kill(harness.service.executor.worker_pids()[0], signal.SIGKILL)

            # The break is visible (degraded) before the supervisor reacts.
            wait_until(
                lambda: client.healthz()["status"] == "degraded",
                message="healthz to report degraded",
            )
            recycled_samples.append(client.healthz()["counters"]["workers_recycled"])

            # One supervision pass recycles the pool and health recovers.
            harness.pump()
            wait_until(
                lambda: client.healthz()["status"] == "ok",
                message="healthz to recover",
            )
            recycled_samples.append(client.healthz()["counters"]["workers_recycled"])

            # Pump until the sweep settles on the rebuilt pool.
            deadline = time.monotonic() + 240
            while client.job(accepted["job"])["status"] == "running":
                assert time.monotonic() < deadline, "job never settled"
                harness.pump()
                time.sleep(0.05)
            settled = client.job(accepted["job"])
            assert settled["status"] == "done"
            assert all(c["status"] == "done" for c in settled["cell_details"])

            counters = client.healthz()["counters"]
            recycled_samples.append(counters["workers_recycled"])
            # Monotone, and accurate: exactly one kill -> exactly one recycle.
            assert recycled_samples == sorted(recycled_samples)
            assert recycled_samples[-1] == 1
            # Crash recovery re-submits lost cells; it is not a *retry*.
            assert counters["cells_retried"] == 0
            assert harness.service.executor.worker_health()["alive"] == 2
        finally:
            harness.close()

    def test_cells_retried_counts_transient_attempts(self):
        harness = Harness(workers=1, cache=None)
        try:
            client = harness.client
            job = client.submit_specs([poisoned_spec(seed=7401)])["job"]
            status = client.wait(job, timeout=120)
            assert status["status"] == "failed"
            cell = status["cell_details"][0]
            assert cell["error"]["kind"] == "KeyError"
            assert cell["attempts"] == 3  # default RetryPolicy.max_attempts
            assert client.healthz()["counters"]["cells_retried"] == 2
        finally:
            harness.close()


class TestChaosEndToEnd:
    def test_chaos_run_survives_two_worker_kills(self, tmp_path):
        report = run_service_chaos(
            ChaosConfig(
                workers=2,
                kills=2,
                kill_interval=0.2,
                kernels=("counter",),
                protocols=("MESI", "DeNovoSync"),
                scale=0.25,
                slow_scale=6.0,
                cell_deadline=4.0,
                wait_timeout=180.0,
                cache_dir=str(tmp_path / "chaos-cache"),
            )
        )
        assert report.ok, report.describe()
        assert report.kills_delivered >= 2
        assert report.counters["workers_recycled"] >= 2
