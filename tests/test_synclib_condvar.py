"""Correctness tests for condition variables and the bounded buffer."""

import pytest

from repro.cpu.isa import Compute, Load, SelfInvalidate, Store
from repro.synclib.condvar import BoundedBuffer, ConditionVariable
from repro.synclib.tatas import TatasLock


class TestConditionVariable:
    def test_wait_notify_handoff(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, 4)
        lock = TatasLock(machine.allocator)
        cond = ConditionVariable(machine.allocator)
        region = machine.allocator.region("cv.data")
        flag = machine.allocator.alloc("cv.data").base
        observed = []

        def waiter(ctx):
            token = yield from lock.acquire(ctx)
            yield SelfInvalidate((region,))
            while True:
                ready = yield Load(flag)
                if ready:
                    break
                token = yield from cond.wait(ctx, lock, token)
                yield SelfInvalidate((region,))
            observed.append(ready)
            yield from lock.release(token)

        def notifier(ctx):
            yield Compute(8000)
            token = yield from lock.acquire(ctx)
            yield Store(flag, 1)
            yield from cond.notify_all()
            yield from lock.release(token)

        machine.run([waiter(machine.ctx(0)), notifier(machine.ctx(1))])
        assert observed == [1]

    def test_notify_before_wait_not_lost(self, protocol_name, machine_factory):
        """The generation snapshot prevents the lost-wakeup race."""
        machine = machine_factory(protocol_name, 4)
        lock = TatasLock(machine.allocator)
        cond = ConditionVariable(machine.allocator)
        done = []

        def early_notifier(ctx):
            token = yield from lock.acquire(ctx)
            yield from cond.notify_all()
            yield from lock.release(token)

        def late_waiter(ctx):
            yield Compute(10_000)
            token = yield from lock.acquire(ctx)
            # Predicate already satisfied by the early notify's effects:
            # here we model it by never needing the wait at all — the
            # caller's predicate loop simply passes.
            done.append(True)
            yield from lock.release(token)

        machine.run([early_notifier(machine.ctx(0)), late_waiter(machine.ctx(1))])
        assert done == [True]

    def test_multiple_waiters_all_wake(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, 9)
        lock = TatasLock(machine.allocator)
        cond = ConditionVariable(machine.allocator)
        region = machine.allocator.region("cv.data")
        flag = machine.allocator.alloc("cv.data").base
        woke = []

        def waiter(ctx):
            token = yield from lock.acquire(ctx)
            yield SelfInvalidate((region,))
            while not (yield Load(flag)):
                token = yield from cond.wait(ctx, lock, token)
                yield SelfInvalidate((region,))
            woke.append(ctx.core_id)
            yield from lock.release(token)

        def notifier(ctx):
            yield Compute(20_000)
            token = yield from lock.acquire(ctx)
            yield Store(flag, 1)
            yield from cond.notify_all()
            yield from lock.release(token)

        programs = [waiter(machine.ctx(i)) for i in range(8)]
        programs.append(notifier(machine.ctx(8)))
        machine.run(programs)
        assert sorted(woke) == list(range(8))


class TestBoundedBuffer:
    def test_all_items_transit_exactly_once(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, 4)
        lock = TatasLock(machine.allocator)
        buffer = BoundedBuffer(machine.allocator, lock, capacity=3)
        items = 8
        got = []

        def producer(ctx):
            for i in range(items):
                yield from buffer.put(ctx, ctx.core_id * 100 + i + 1)
                yield Compute(ctx.rng.randrange(20, 200))

        def consumer(ctx):
            for _ in range(items):
                value = yield from buffer.get(ctx)
                got.append(value)
                yield Compute(ctx.rng.randrange(20, 300))

        machine.run(
            [producer(machine.ctx(0)), producer(machine.ctx(1)),
             consumer(machine.ctx(2)), consumer(machine.ctx(3))]
        )
        expected = sorted(c * 100 + i + 1 for c in (0, 1) for i in range(items))
        assert sorted(got) == expected

    def test_capacity_respected(self, protocol_name, machine_factory):
        """With capacity 1 the buffer strictly alternates put/get."""
        machine = machine_factory(protocol_name, 4)
        lock = TatasLock(machine.allocator)
        buffer = BoundedBuffer(machine.allocator, lock, capacity=1)
        got = []

        def producer(ctx):
            for i in range(5):
                yield from buffer.put(ctx, i + 1)

        def consumer(ctx):
            for _ in range(5):
                got.append((yield from buffer.get(ctx)))

        machine.run([producer(machine.ctx(0)), consumer(machine.ctx(1))])
        assert got == [1, 2, 3, 4, 5]  # capacity-1 forces FIFO lockstep

    def test_invalid_capacity(self, machine_factory):
        machine = machine_factory("MESI", 4)
        with pytest.raises(ValueError):
            BoundedBuffer(machine.allocator, TatasLock(machine.allocator), 0)
