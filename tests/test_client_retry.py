"""Client-side resilience: GET retries on connection errors, POSTs never
retried, capped exponential poll backoff, and Retry-After parsing.

The fake server is a real listening socket on a thread that deliberately
drops the first N connections (accept + immediate close — the client
sees ``ConnectionError`` subclasses exactly as it would from a server
mid-restart), then serves one canned HTTP response per connection.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.service.client import ServiceClient, ServiceError


def http_response(status=200, body=None, headers=()):
    payload = json.dumps(body if body is not None else {"status": "ok"}).encode()
    reason = {200: "OK", 503: "Service Unavailable"}.get(status, "OK")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
    )
    for name, value in headers:
        head += f"{name}: {value}\r\n"
    head += "Connection: close\r\n\r\n"
    return head.encode("latin-1") + payload


class FlakyServer(threading.Thread):
    """Drops the first ``dead_connections`` connections, then answers
    every later connection with the canned ``response``."""

    def __init__(self, dead_connections=0, response=None):
        super().__init__(daemon=True)
        self.dead_connections = dead_connections
        self.response = response if response is not None else http_response()
        self.accepted = 0
        self._stopping = threading.Event()
        self.sock = socket.create_server(("127.0.0.1", 0))
        self.sock.settimeout(0.1)
        self.port = self.sock.getsockname()[1]
        self.start()

    def run(self):
        while not self._stopping.is_set():
            try:
                conn, _ = self.sock.accept()
            except socket.timeout:
                continue
            self.accepted += 1
            if self.accepted <= self.dead_connections:
                # Dead server impression: RST/EOF before any response.
                conn.close()
                continue
            try:
                conn.settimeout(1.0)
                conn.recv(65536)
                conn.sendall(self.response)
            except OSError:
                pass
            finally:
                conn.close()

    def close(self):
        self._stopping.set()
        self.join(5)
        self.sock.close()


@pytest.fixture
def sleeps():
    """A sleep stub recording requested delays instead of sleeping."""
    recorded = []
    return recorded


def make_client(port, sleeps, **kwargs):
    kwargs.setdefault("timeout", 5.0)
    kwargs.setdefault("retry_delay", 0.1)
    return ServiceClient("127.0.0.1", port, sleep=sleeps.append, **kwargs)


class TestConnectionRetries:
    def test_get_retries_past_dropped_connections(self, sleeps):
        server = FlakyServer(dead_connections=2)
        try:
            client = make_client(server.port, sleeps, retries=3)
            assert client.healthz() == {"status": "ok"}
            assert server.accepted == 3
            # Backoff doubled between the two retries.
            assert sleeps == [0.1, 0.2]
        finally:
            server.close()

    def test_get_retry_backoff_is_capped(self, sleeps):
        server = FlakyServer(dead_connections=6)
        try:
            client = make_client(server.port, sleeps, retries=6, retry_delay=0.5)
            client.healthz()
            assert sleeps == [0.5, 1.0, 2.0, 2.0, 2.0, 2.0]
        finally:
            server.close()

    def test_get_raises_once_retries_exhausted(self, sleeps):
        server = FlakyServer(dead_connections=100)
        try:
            client = make_client(server.port, sleeps, retries=2)
            with pytest.raises(ConnectionError):
                client.healthz()
            assert server.accepted == 3  # initial try + 2 retries
        finally:
            server.close()

    def test_post_is_never_retried(self, sleeps):
        server = FlakyServer(dead_connections=100)
        try:
            client = make_client(server.port, sleeps, retries=5)
            with pytest.raises(ConnectionError):
                client.submit_cells([{"anything": True}])
            # One connection, no retry sleeps: the submission may already
            # have been accepted server-side, so re-POSTing is not safe.
            assert server.accepted == 1
            assert sleeps == []
        finally:
            server.close()

    def test_http_errors_are_not_retried(self, sleeps):
        server = FlakyServer(
            response=http_response(503, {"error": "draining"},
                                   headers=[("Retry-After", "7")])
        )
        try:
            client = make_client(server.port, sleeps, retries=5)
            with pytest.raises(ServiceError) as excinfo:
                client.healthz()
            assert excinfo.value.status == 503
            assert excinfo.value.retry_after == 7.0
            assert server.accepted == 1  # an HTTP error is an answer
            assert sleeps == []
        finally:
            server.close()


class TestWaitPolling:
    def test_poll_backoff_grows_and_caps(self, sleeps):
        client = make_client(0, sleeps)
        statuses = iter(["running"] * 6 + ["done"])
        def fake_job(job_id):
            return {"status": next(statuses), "counts": {}}

        client.job = fake_job

        result = client.wait("j0001", timeout=600, poll=0.1, max_poll=0.3)
        assert result["status"] == "done"
        assert len(sleeps) == 6
        assert sleeps[0] == pytest.approx(0.1)
        assert sleeps[1] == pytest.approx(0.16)
        assert sleeps[2] == pytest.approx(0.256)
        assert sleeps[3:] == [pytest.approx(0.3)] * 3  # capped
        assert sleeps == sorted(sleeps)

    def test_wait_times_out_with_informative_error(self, sleeps):
        client = make_client(0, sleeps)
        def fake_job(job_id):
            return {"status": "running", "counts": {"queued": 1}}

        client.job = fake_job
        with pytest.raises(TimeoutError, match="still running"):
            client.wait("j0001", timeout=0.0, poll=0.01)
