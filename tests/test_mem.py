"""Tests for addresses, regions, and the backing store."""

import pytest

from repro.config import config_16
from repro.mem.address import AddressMap
from repro.mem.memory import BackingStore
from repro.mem.regions import RegionAllocator


@pytest.fixture
def amap():
    return AddressMap(config_16())


class TestAddressMap:
    def test_line_of(self, amap):
        assert amap.line_of(0) == 0
        assert amap.line_of(15) == 0
        assert amap.line_of(16) == 1

    def test_word_in_line(self, amap):
        assert amap.word_in_line(0) == 0
        assert amap.word_in_line(17) == 1

    def test_line_base_roundtrip(self, amap):
        for addr in (0, 5, 16, 100, 12345):
            line = amap.line_of(addr)
            assert amap.line_base(line) <= addr < amap.line_base(line + 1)

    def test_words_of_line(self, amap):
        words = list(amap.words_of_line(2))
        assert len(words) == 16
        assert words[0] == 32
        assert words[-1] == 47

    def test_home_bank_interleaves(self, amap):
        banks = {amap.home_bank(line) for line in range(64)}
        assert banks == set(range(16))

    def test_home_bank_of_addr(self, amap):
        assert amap.home_bank_of_addr(16) == amap.home_bank(1)

    def test_align_up_to_line(self, amap):
        assert amap.align_up_to_line(0) == 0
        assert amap.align_up_to_line(1) == 16
        assert amap.align_up_to_line(16) == 16
        assert amap.align_up_to_line(17) == 32


class TestRegionAllocator:
    def test_allocations_are_disjoint(self, amap):
        allocator = RegionAllocator(amap)
        seen = set()
        for i in range(20):
            alloc = allocator.alloc(f"r{i}", nwords=i + 1)
            for addr in alloc:
                assert addr not in seen
                seen.add(addr)

    def test_address_zero_never_allocated(self, amap):
        allocator = RegionAllocator(amap)
        alloc = allocator.alloc("first", 1)
        assert alloc.base >= amap.words_per_line

    def test_region_identity_by_name(self, amap):
        allocator = RegionAllocator(amap)
        a = allocator.region("shared")
        b = allocator.region("shared")
        c = allocator.region("other")
        assert a is b
        assert a.region_id != c.region_id

    def test_region_of_tracks_every_word(self, amap):
        allocator = RegionAllocator(amap)
        alloc = allocator.alloc("data", 10)
        for addr in alloc:
            assert allocator.region_of(addr).name == "data"
        assert allocator.region_of(999999) is None

    def test_line_align_pads_both_sides(self, amap):
        allocator = RegionAllocator(amap)
        allocator.alloc("x", 3)
        padded = allocator.alloc("padded", 2, line_align=True)
        after = allocator.alloc("y", 1)
        assert padded.base % amap.words_per_line == 0
        assert amap.line_of(after.base) != amap.line_of(padded.base)

    def test_alloc_sync_padding_follows_policy(self, amap):
        padded = RegionAllocator(amap, pad_sync_vars=True)
        a = padded.alloc_sync("lock1")
        b = padded.alloc_sync("lock2")
        assert amap.line_of(a.base) != amap.line_of(b.base)

        unpadded = RegionAllocator(amap, pad_sync_vars=False)
        a = unpadded.alloc_sync("lock1")
        b = unpadded.alloc_sync("lock2")
        assert amap.line_of(a.base) == amap.line_of(b.base)

    def test_zero_words_rejected(self, amap):
        with pytest.raises(ValueError):
            RegionAllocator(amap).alloc("bad", 0)


class TestBackingStore:
    def test_unwritten_reads_zero(self):
        assert BackingStore().read(1234) == 0

    def test_write_read(self):
        store = BackingStore()
        store.write(10, 42)
        assert store.read(10) == 42

    def test_touch_line_cold_then_warm(self):
        store = BackingStore()
        assert store.touch_line(5) is True
        assert store.touch_line(5) is False
        assert store.is_resident(5)

    def test_evict_line(self):
        store = BackingStore()
        store.touch_line(5)
        store.evict_line(5)
        assert not store.is_resident(5)
        assert store.touch_line(5) is True

    def test_resident_line_count(self):
        store = BackingStore()
        for line in range(7):
            store.touch_line(line)
        assert store.resident_line_count == 7
