"""Tests for the lock-padding ablation (section 7.1.1)."""

import pytest

from repro.harness.experiments import run_padding_ablation


@pytest.fixture(scope="module")
def padding_results():
    return run_padding_ablation(cores=16, scale=0.03)


class TestPaddingAblation:
    def test_both_variants_present(self, padding_results):
        assert set(padding_results) == {"padded", "unpadded"}
        for result in padding_results.values():
            assert len(result.rows) == 6

    def test_unpadded_effects_per_structure(self, padding_results):
        """Unpadding moves MESI where line sharing matters: the two-lock
        queue (head and tail locks false-share a line) and the kernels
        whose spinners get disturbed by co-located data writes (counter,
        large CS) get slower; DeNovo's word-granularity state is immune
        everywhere (the paper's central point for this study)."""
        by_name = {
            row.workload: (padded, unpadded)
            for row, padded, unpadded in (
                (p, p.results, u.results)
                for p, u in zip(
                    padding_results["padded"].rows,
                    padding_results["unpadded"].rows,
                )
            )
        }
        for name in ("double Q", "counter", "large CS"):
            padded, unpadded = by_name[name]
            assert unpadded["MESI"].cycles > padded["MESI"].cycles * 0.98

    def test_denovo_immune_to_padding(self, padding_results):
        """Word-granularity coherence: DeNovo barely moves either way."""
        for padded_row, unpadded_row in zip(
            padding_results["padded"].rows, padding_results["unpadded"].rows
        ):
            ratio = (
                unpadded_row.results["DeNovoSync"].cycles
                / padded_row.results["DeNovoSync"].cycles
            )
            assert 0.9 < ratio < 1.1

    def test_padding_policy_actually_changes_layout(self):
        """The unpadded wrapper really co-locates sync variables."""
        from repro.config import config_16
        from repro.harness.experiments import _unpadded
        from repro.workloads.base import KernelSpec
        from repro.workloads.registry import make_kernel

        workload = _unpadded(
            make_kernel("tatas", "counter", spec=KernelSpec(scale=0.02))
        )
        instance = workload.build(config_16(), seed=1)
        amap = instance.allocator.amap
        # The lock now shares a cache line with its neighbouring data.
        lock_alloc = next(
            a for a in instance.allocator.allocations if "lock" in a.region.name
        )
        all_lines = [
            amap.line_of(a.base)
            for a in instance.allocator.allocations
            if a is not lock_alloc
        ]
        assert amap.line_of(lock_alloc.base) in all_lines

    def test_padding_restored_after_ablation(self):
        """The monkeypatched allocator policy must not leak."""
        from repro.mem.address import AddressMap
        from repro.mem.regions import RegionAllocator
        from repro.config import config_16

        allocator = RegionAllocator(AddressMap(config_16()))
        assert allocator.pad_sync_vars is True
