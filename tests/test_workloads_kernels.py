"""Integration tests: all 24 synchronization kernels run to completion
under every protocol, and their statistics are self-consistent."""

import pytest

from repro.config import config_16
from repro.harness.runner import run_workload
from repro.protocols import PROTOCOLS
from repro.stats.timeparts import TimeComponent
from repro.workloads.base import KernelSpec
from repro.workloads.registry import all_kernel_ids, kernel_names, make_kernel

TINY = KernelSpec(iterations=3, scale=1.0)


class TestRegistryShape:
    def test_twenty_four_kernels(self):
        assert len(all_kernel_ids()) == 24

    def test_figure_kernel_sets(self):
        assert kernel_names("tatas") == kernel_names("array")
        assert len(kernel_names("tatas")) == 6
        assert len(kernel_names("nonblocking")) == 6
        assert len(kernel_names("barrier")) == 6

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            kernel_names("nope")
        with pytest.raises(ValueError):
            make_kernel("nope", "counter")

    def test_barrier_names_include_unbalanced(self):
        names = kernel_names("barrier")
        assert "tree (UB)" in names and "central" in names


@pytest.mark.parametrize("figure,name", all_kernel_ids())
@pytest.mark.parametrize("protocol", list(PROTOCOLS))
class TestKernelRuns:
    def test_runs_and_accounts(self, figure, name, protocol):
        spec = KernelSpec(iterations=3, scale=1.0)
        workload = make_kernel(figure, name, spec=spec)
        result = run_workload(workload, protocol, config_16(), seed=3)
        assert result.cycles > 0
        assert result.num_cores == 16
        assert len(result.per_core_time) == 16
        # Dummy compute windows landed in the non-synch component.
        assert result.component_cycles(TimeComponent.NON_SYNCH) > 0
        # Some traffic flowed.
        assert result.total_traffic > 0
        # DeNovo never sends invalidations; the MESI family never sends
        # SYNCH (the paper does not split MESI traffic by access type).
        breakdown = result.traffic_breakdown()
        if protocol.startswith("MESI"):
            assert breakdown["SYNCH"] == 0
        else:
            assert breakdown["Inv"] == 0


class TestKernelSemantics:
    @pytest.mark.parametrize("protocol", list(PROTOCOLS))
    def test_fai_counter_exact_total(self, protocol):
        workload = make_kernel("nonblocking", "FAI counter", spec=TINY)
        result = run_workload(
            workload, protocol, config_16(), seed=3, keep_protocol=True
        )
        final = result.meta["protocol"].memory.read(workload.counter.addr)
        assert final == 16 * 3

    @pytest.mark.parametrize("figure", ["tatas", "array"])
    @pytest.mark.parametrize("protocol", list(PROTOCOLS))
    def test_locked_counter_exact_total(self, figure, protocol):
        workload = make_kernel(figure, "counter", spec=TINY)
        result = run_workload(
            workload, protocol, config_16(), seed=3, keep_protocol=True
        )
        final = result.meta["protocol"].memory.read(workload.counter.addr)
        assert final == 16 * 3

    def test_hw_backoff_only_under_denovosync(self):
        spec = KernelSpec(iterations=5, scale=1.0)
        for protocol in ("MESI", "DeNovoSync0"):
            workload = make_kernel("tatas", "counter", spec=spec)
            result = run_workload(workload, protocol, config_16(), seed=3)
            assert result.component_cycles(TimeComponent.HW_BACKOFF) == 0

    def test_sw_backoff_present_in_nonblocking(self):
        spec = KernelSpec(iterations=8, scale=1.0)
        workload = make_kernel("nonblocking", "M-S queue", spec=spec)
        result = run_workload(workload, "MESI", config_16(), seed=3)
        # Contended CAS loops back off at least occasionally.
        assert result.component_cycles(TimeComponent.SW_BACKOFF) >= 0

    def test_scaled_iterations(self):
        spec = KernelSpec(iterations=100, scale=0.07)
        assert spec.scaled_iterations() == 7
        assert KernelSpec(iterations=100, scale=0.0001).scaled_iterations() == 1

    def test_unknown_lock_type_rejected(self):
        from repro.workloads.kernels_lock import LockedCounterKernel

        with pytest.raises(ValueError):
            LockedCounterKernel(lock_type="clh")
