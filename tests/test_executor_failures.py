"""Regression tests for the sweep-executor bugfix sweep.

Each fixed bug gets two tests: one asserting the fixed behavior, and one
that *re-breaks* the bug behind a shim (monkeypatching the legacy
behavior back in) and shows the failure mode the fix removed — so a
future revert trips loudly.

The bugs (all in :mod:`repro.harness.parallel`):

1. ``ResultCache.store`` caught only ``OSError``; an unpicklable
   ``RunResult`` crashed a completed sweep and leaked the mkstemp file.
2. A single raising cell in ``run_specs``/``run_tasks`` propagated out of
   ``future.result()`` and discarded every completed sibling (nothing
   reached the cache).
3. ``code_version()`` memoized per process, so a persistent server served
   stale cache keys after a source edit.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.config import config_16
from repro.harness import parallel
from repro.harness.parallel import (
    CellError,
    ResultCache,
    RunSpec,
    cache_key_for,
    code_version,
    kernel_cell,
    resolve_jobs,
    run_specs,
    run_specs_outcomes,
    run_tasks,
)
from repro.harness.runner import run_workload
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel

SCALE = 0.02


def good_spec(seed: int) -> RunSpec:
    return RunSpec(
        kernel_cell("tatas", "counter", KernelSpec(scale=SCALE)),
        "MESI",
        config_16(),
        seed=seed,
    )


def poisoned_spec() -> RunSpec:
    """Materialization raises ``KeyError`` in the worker (unknown kernel)."""
    return RunSpec(
        kernel_cell("tatas", "no-such-kernel", KernelSpec(scale=SCALE)),
        "MESI",
        config_16(),
        seed=1,
    )


def small_result():
    return run_workload(
        make_kernel("tatas", "counter", spec=KernelSpec(scale=SCALE)),
        "MESI",
        config_16(),
        seed=1,
    )


def tmp_leftovers(root) -> list[str]:
    return [
        os.path.join(dirpath, name)
        for dirpath, _, names in os.walk(root)
        for name in names
        if name.endswith(".tmp")
    ]


# -- bug 1: unpicklable results must not fail (or litter) the cache -----------


class TestStoreRobustness:
    def test_unpicklable_result_is_skipped_not_fatal(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = small_result()
        result.meta["poison"] = lambda: None  # lambdas do not pickle
        cache.store(good_spec(seed=1), result)  # must not raise
        assert cache.stores == 0
        assert cache.load(good_spec(seed=1)) is None
        assert tmp_leftovers(tmp_path) == []

    def test_unpicklable_tuple_payload_is_skipped(self, tmp_path):
        # pickle raises a bare TypeError (not PicklingError) for some
        # builtin types, e.g. file handles.
        cache = ResultCache(tmp_path)
        result = small_result()
        with open(os.devnull) as handle:
            result.meta["poison"] = handle
            cache.store(good_spec(seed=1), result)
        assert cache.stores == 0
        assert tmp_leftovers(tmp_path) == []

    def test_sweep_with_unpicklable_result_still_returns(self, tmp_path, monkeypatch):
        # End to end: the sweep's simulations complete and the results come
        # back even though none of them can be cached.
        cache = ResultCache(tmp_path)
        original = parallel.execute_spec

        def poisoning_execute(spec):
            result = original(spec)
            result.meta["poison"] = lambda: None
            return result

        monkeypatch.setattr(parallel, "execute_spec", poisoning_execute)
        (result,) = run_specs([good_spec(seed=2)], cache=cache)
        assert result.cycles > 0
        assert cache.stores == 0
        assert tmp_leftovers(tmp_path) == []

    def test_shim_legacy_store_crashed_on_unpicklable_result(self, tmp_path, monkeypatch):
        # Re-break the bug: narrow the caught errors back to OSError alone
        # (the pre-fix behavior) and the same payload kills the store.
        monkeypatch.setattr(ResultCache, "_STORE_ERRORS", (OSError,))
        cache = ResultCache(tmp_path)
        result = small_result()
        result.meta["poison"] = lambda: None
        # (pickle reports a *local* lambda as AttributeError rather than
        # PicklingError — one more reason catching OSError alone was wrong.)
        with pytest.raises((pickle.PicklingError, AttributeError)):
            cache.store(good_spec(seed=1), result)
        # The temp-file cleanup is structural (finally), so even the
        # re-broken store no longer litters — that half of the bug cannot
        # be reintroduced by narrowing the exception list.
        assert tmp_leftovers(tmp_path) == []


# -- bug 2: one poisoned cell must not lose its siblings ----------------------


def _run_tasks_probe(value):
    """Module-level (hence picklable) task fn: raises for the poison value."""
    if value < 0:
        raise ValueError(f"poisoned call {value}")
    return value * value


class TestFailureIsolation:
    def test_poisoned_cell_keeps_siblings_in_cache(self, tmp_path):
        # 1 poisoned cell among 8: the sweep still raises, but the other 7
        # results must already be in the cache when it does.
        cache = ResultCache(tmp_path)
        specs = [good_spec(seed=s) for s in range(1, 8)]
        specs.insert(3, poisoned_spec())
        with pytest.raises(KeyError, match="no-such-kernel"):
            run_specs(specs, jobs=2, cache=cache)
        assert cache.stores == 7
        warm = ResultCache(tmp_path)
        for spec in specs:
            if spec.workload[2] == "counter":
                assert warm.load(spec) is not None
        assert warm.hits == 7

    def test_outcomes_capture_errors_structurally(self, tmp_path):
        cache = ResultCache(tmp_path)
        specs = [good_spec(seed=1), poisoned_spec(), good_spec(seed=2)]
        outcomes = run_specs_outcomes(specs, jobs=2, cache=cache)
        assert [o.ok for o in outcomes] == [True, False, True]
        failed = outcomes[1]
        assert isinstance(failed.error, CellError)
        assert failed.error.kind == "KeyError"
        assert "no-such-kernel" in failed.error.message
        assert "KeyError" in failed.error.traceback
        assert failed.result is None
        assert failed.error.as_dict().keys() == {"kind", "message", "traceback"}
        # Serial path captures identically (minus the pool round trip).
        serial = run_specs_outcomes([poisoned_spec()], jobs=1)
        assert serial[0].error is not None
        assert serial[0].error.kind == "KeyError"

    def test_outcomes_record_cache_source(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_specs_outcomes([good_spec(seed=1)], cache=cache)
        (outcome,) = run_specs_outcomes([good_spec(seed=1)], cache=cache)
        assert outcome.ok and outcome.source == "cache"

    def test_reraise_notes_surviving_siblings(self):
        specs = [good_spec(seed=1), poisoned_spec()]
        with pytest.raises(KeyError) as excinfo:
            run_specs(specs, jobs=1)
        notes = getattr(excinfo.value, "__notes__", [])
        assert any("1/2 sibling cells completed" in note for note in notes)

    def test_run_tasks_completes_siblings_before_raising(self):
        calls = []

        def probe(value):
            calls.append(value)
            if value == 2:
                raise ValueError("poisoned call")
            return value

        with pytest.raises(ValueError, match="poisoned call"):
            run_tasks(probe, [1, 2, 3, 4], jobs=1)
        assert calls == [1, 2, 3, 4]  # every sibling ran to completion

    def test_run_tasks_return_exceptions(self):
        slots = run_tasks(
            _run_tasks_probe, [3, -1, 4], jobs=2, return_exceptions=True
        )
        assert slots[0] == 9 and slots[2] == 16
        assert isinstance(slots[1], ValueError)

    def test_shim_legacy_run_specs_lost_siblings(self, tmp_path, monkeypatch):
        # Re-break the bug: the pre-fix executor bailed on the first
        # future.result() raise, before any cache write.
        def legacy_run_specs(specs, *, jobs=1, cache=None):
            specs = list(specs)
            results = [parallel.execute_spec(spec) for spec in specs]
            if cache is not None:
                for spec, result in zip(specs, results):
                    cache.store(spec, result)
            return results

        monkeypatch.setattr(parallel, "run_specs", legacy_run_specs)
        cache = ResultCache(tmp_path)
        with pytest.raises(KeyError):
            parallel.run_specs(
                [good_spec(seed=1), poisoned_spec()], jobs=1, cache=cache
            )
        # The legacy path loses the completed sibling — exactly what
        # test_poisoned_cell_keeps_siblings_in_cache guards against.
        assert cache.stores == 0


# -- bug 3: code_version must notice source edits in-process ------------------


class TestCodeVersionFingerprint:
    @pytest.fixture
    def fake_tree(self, tmp_path, monkeypatch):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "mod.py").write_bytes(b"x = 1\n")
        monkeypatch.setattr(parallel, "_source_root", lambda: root)
        monkeypatch.setattr(parallel, "_code_version_memo", None)
        yield root
        # Leave the real memo invalidated so later callers recompute
        # against the real tree.
        parallel._code_version_memo = None

    def test_source_edit_changes_key_in_process(self, fake_tree):
        spec = good_spec(seed=1)
        version_before = code_version()
        key_before = cache_key_for(spec)
        (fake_tree / "mod.py").write_bytes(b"x = 2\n")
        os.utime(fake_tree / "mod.py", ns=(1, 1))  # force a distinct mtime
        assert code_version() != version_before
        assert cache_key_for(spec) != key_before

    def test_new_and_deleted_files_change_the_version(self, fake_tree):
        version_one = code_version()
        (fake_tree / "extra.py").write_bytes(b"y = 1\n")
        version_two = code_version()
        assert version_two != version_one
        (fake_tree / "extra.py").unlink()
        assert code_version() == version_one  # content-addressed, not path-history

    def test_unchanged_tree_skips_the_rehash(self, fake_tree, monkeypatch):
        code_version()
        calls = []
        original = parallel._hash_source_tree

        def counting_hash(root):
            calls.append(root)
            return original(root)

        monkeypatch.setattr(parallel, "_hash_source_tree", counting_hash)
        assert code_version() == code_version()
        assert calls == []  # fingerprint unchanged -> no content rehash

    def test_shim_legacy_memo_served_stale_keys(self, fake_tree, monkeypatch):
        # Re-break the bug: freeze the fingerprint (the pre-fix per-process
        # memo is equivalent to a fingerprint that never changes) and the
        # edit goes unnoticed — the stale-key failure mode of a long-lived
        # server.
        version_before = code_version()
        monkeypatch.setattr(
            parallel, "_source_fingerprint", lambda root: ("frozen",)
        )
        code_version()  # memoize under the frozen fingerprint
        (fake_tree / "mod.py").write_bytes(b"x = 3\n")
        os.utime(fake_tree / "mod.py", ns=(2, 2))
        assert code_version() == version_before  # stale!


# -- resolve_jobs: worker cap ---------------------------------------------------


class TestResolveJobsCap:
    def test_cap_bounds_explicit_jobs(self):
        assert resolve_jobs(16, cap=4) == 4
        assert resolve_jobs(2, cap=4) == 2
        assert resolve_jobs(4, cap=None) == 4

    def test_cap_honored_when_cpu_count_unknown(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0, cap=4) == 1
        assert resolve_jobs(None, cap=3) == 1
        assert resolve_jobs(8, cap=3) == 3

    def test_result_is_always_positive(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert resolve_jobs(0, cap=0) == 1
        assert resolve_jobs(-5) == 1
