"""Tests for the kernel driver and its paper-methodology parameters."""

import pytest

from repro.config import config_16, config_64
from repro.harness.runner import run_workload
from repro.stats.timeparts import TimeComponent
from repro.workloads.base import (
    NON_SYNCH_RANGE_16,
    NON_SYNCH_RANGE_64,
    PAPER_ITERATIONS,
    PAPER_ITERATIONS_FAI,
    UNBALANCED_RANGE_16,
    UNBALANCED_RANGE_64,
    KernelSpec,
    non_synch_range,
)
from repro.workloads.registry import make_kernel


class TestPaperParameters:
    def test_dummy_compute_windows(self):
        """Section 5.3.1's windows, verbatim."""
        assert NON_SYNCH_RANGE_16 == (1400, 1800)
        assert NON_SYNCH_RANGE_64 == (6200, 6600)
        assert UNBALANCED_RANGE_16 == (400, 2800)
        assert UNBALANCED_RANGE_64 == (1600, 11200)

    def test_window_selection(self):
        assert non_synch_range(config_16()) == (1400, 1800)
        assert non_synch_range(config_64()) == (6200, 6600)
        assert non_synch_range(config_16(), unbalanced=True) == (400, 2800)
        assert non_synch_range(config_64(), unbalanced=True) == (1600, 11200)

    def test_paper_iteration_counts(self):
        assert PAPER_ITERATIONS == 100
        assert PAPER_ITERATIONS_FAI == 1000

    def test_fai_kernel_defaults_to_1000_iterations(self):
        from repro.workloads.kernels_nonblocking import FaiCounterKernel

        kernel = FaiCounterKernel()
        assert kernel.spec.iterations == 1000


class TestDriverAccounting:
    def test_non_synch_cycles_match_windows(self):
        """At scale s the driver issues s*100 dummy windows per core, each
        in [1400, 1800) at 16 cores."""
        spec = KernelSpec(iterations=10, scale=1.0)
        workload = make_kernel("tatas", "counter", spec=spec)
        result = run_workload(workload, "MESI", config_16(), seed=5)
        for breakdown in result.per_core_time:
            non_synch = breakdown.get(TimeComponent.NON_SYNCH)
            assert 10 * 1400 <= non_synch < 10 * 1800

    def test_end_barrier_stall_recorded(self):
        spec = KernelSpec(iterations=5, scale=1.0)
        workload = make_kernel("tatas", "counter", spec=spec)
        result = run_workload(workload, "MESI", config_16(), seed=5)
        assert result.component_cycles(TimeComponent.BARRIER_STALL) > 0


class TestSeedRobustness:
    """The headline shapes must not be one lucky seed."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_tatas_counter_shape_across_seeds(self, seed):
        spec = KernelSpec(scale=0.05)
        mesi = run_workload(
            make_kernel("tatas", "counter", spec=spec), "MESI", config_16(), seed=seed
        )
        denovo = run_workload(
            make_kernel("tatas", "counter", spec=spec),
            "DeNovoSync",
            config_16(),
            seed=seed,
        )
        assert denovo.cycles < mesi.cycles
        assert denovo.total_traffic < mesi.total_traffic


class TestPaperScaleSmoke:
    def test_full_paper_iterations_16_cores(self):
        """One kernel at the paper's full scale (100 iterations)."""
        spec = KernelSpec(scale=1.0)
        workload = make_kernel("tatas", "counter", spec=spec)
        result = run_workload(workload, "DeNovoSync", config_16(), seed=1)
        assert result.meta["iterations"] == 100
        assert result.counters.get("rmws") >= 16 * 100  # every increment
