"""Fault-injection harness tests: plans, determinism, chaos differential.

The load-bearing assertion is the chaos differential: for workloads whose
final memory state is interleaving-independent, every seeded perturbation
(delay jitter, bounded reordering, eviction storms) must terminate in a
final backing store byte-identical to the unperturbed run, with full
runtime invariant checking armed — across every chaos-capable protocol
the registry advertises.
"""

import pytest

from repro.config import config_for_cores
from repro.harness.chaos import (
    CHAOS_PROTOCOLS,
    ChaosCell,
    default_fault_plan,
    diff_memory,
    run_chaos_sweep,
)
from repro.harness.runner import run_workload
from repro.noc.faults import FaultPlan
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel


def _counter(scale=0.02):
    return make_kernel("tatas", "counter", spec=KernelSpec(scale=scale))


class TestFaultPlan:
    def test_defaults_are_inactive(self):
        assert not FaultPlan().active

    @pytest.mark.parametrize(
        "overrides",
        [
            {"delay_jitter": 3},
            {"reorder_prob": 0.1},
            {"evict_period": 100},
            {"scripted_evictions": ((10, 0, 0),)},
        ],
    )
    def test_any_knob_activates(self, overrides):
        assert FaultPlan(**overrides).active

    @pytest.mark.parametrize(
        "overrides",
        [
            {"reorder_prob": 1.5},
            {"reorder_prob": -0.1},
            {"delay_jitter": -1},
            {"evict_period": -5},
            {"reorder_delay": 0},
        ],
    )
    def test_invalid_plans_rejected(self, overrides):
        with pytest.raises(ValueError):
            FaultPlan(**overrides)


class TestFaultInjector:
    def test_inactive_plan_is_not_wrapped(self):
        result = run_workload(
            _counter(), "MESI", config_for_cores(4), fault_plan=FaultPlan()
        )
        assert "fault_injector" not in result.meta

    def test_injection_is_deterministic(self):
        """Same plan, same workload -> identical run, byte for byte."""
        plan = default_fault_plan(seed=7)
        runs = [
            run_workload(
                _counter(), "MESI", config_for_cores(4),
                fault_plan=plan, keep_protocol=True,
            )
            for _ in range(2)
        ]
        assert runs[0].cycles == runs[1].cycles
        snapshots = [r.meta["protocol"].memory.snapshot() for r in runs]
        assert snapshots[0] == snapshots[1]
        for attr in ("injected_delay", "deferrals", "forced_evictions"):
            assert getattr(runs[0].meta["fault_injector"], attr) == getattr(
                runs[1].meta["fault_injector"], attr
            )

    def test_perturbations_actually_fire(self):
        plan = FaultPlan(
            seed=3, delay_jitter=5, reorder_prob=0.2, evict_period=150,
            evict_lines=2,
        )
        result = run_workload(
            _counter(0.05), "MESI", config_for_cores(4), fault_plan=plan
        )
        injector = result.meta["fault_injector"]
        assert injector.injected_delay > 0
        assert injector.deferrals > 0
        assert injector.forced_evictions > 0

    def test_wrapper_chain_with_tracing_and_full_invariants(self):
        """Tracing + fault injection + full checking compose: the runner's
        final audit and the state checker both reach the real protocol
        through the two-wrapper chain."""
        config = config_for_cores(4, invariant_level="full")
        result = run_workload(
            _counter(), "DeNovoSync", config,
            fault_plan=default_fault_plan(seed=2), trace=True,
            keep_protocol=True,
        )
        assert len(result.meta["trace"]) > 0
        from repro.verify.checker import check_protocol_state

        assert check_protocol_state(result.meta["protocol"]) == []


class TestDiffMemory:
    def test_reports_differing_and_missing_words(self):
        diffs = diff_memory({0: 1, 4: 2}, {0: 1, 4: 3, 8: 9})
        assert any("word 4" in d for d in diffs)
        assert any("word 8" in d for d in diffs)

    def test_identical_snapshots_are_clean(self):
        assert diff_memory({0: 1}, {0: 1}) == []

    def test_cell_verdict(self):
        cell = ChaosCell("w", "MESI", 1, 10, 12, "nothing")
        assert cell.ok and "[ok]" in cell.describe()
        cell.mismatches.append("word 0: baseline 1 != perturbed 2")
        assert not cell.ok and "[FAIL]" in cell.describe()


class TestChaosDifferential:
    """Acceptance: >= 3 seeds x every chaos-capable protocol,
    byte-identical final memory."""

    def test_sweep_converges_across_protocols_and_seeds(self):
        cells = run_chaos_sweep(
            protocols=CHAOS_PROTOCOLS, seeds=(1, 2, 3), num_cores=4,
            scale=0.02,
        )
        # 3 workloads x protocols x 3 seeds
        assert len(cells) == 3 * len(CHAOS_PROTOCOLS) * 3
        bad = [cell.describe() for cell in cells if not cell.ok]
        assert not bad, "\n".join(bad)
        assert {cell.protocol for cell in cells} == set(CHAOS_PROTOCOLS)
        assert {cell.seed for cell in cells} == {1, 2, 3}
        # The sweep must actually have perturbed something.
        assert any("0 forced evictions" not in cell.injected for cell in cells)
