"""Property-style differential test of the hybrid scheduler.

Drives random interleavings of ``schedule_at`` / ``schedule_after`` /
``call_after`` / ``cancel`` / ``run(until=...)`` through the production
bucket-wheel+heap :class:`~repro.sim.engine.Simulator` and through the
pure-heap :class:`~repro.sim.engine.ReferenceHeapSimulator`, asserting
identical firing order, ``now`` evolution and ``pending_events`` counts —
including cancel storms big enough to trip both compaction paths.

The op script is generated once per seed and replayed against both
engines, so any divergence is a scheduler bug, not test nondeterminism.
"""

import random

import pytest

from repro.sim.engine import ReferenceHeapSimulator, Simulator

#: Spread of schedule deltas: mostly small (wheel), some same-cycle,
#: some far beyond the wheel window (overflow heap).
_DELTAS = (0, 0, 1, 1, 2, 3, 7, 28, 140, 421, 900, 1023, 1024, 1500, 4095, 9000)


def _make_script(seed, length):
    rng = random.Random(seed)
    script = []
    for _ in range(length):
        roll = rng.random()
        if roll < 0.30:
            script.append(("at", rng.choice(_DELTAS), rng.randrange(1000)))
        elif roll < 0.55:
            script.append(("after", rng.choice(_DELTAS), rng.randrange(1000)))
        elif roll < 0.70:
            # Hot-path API: no handle, (callback, arg) dispatch.
            script.append(("call", rng.choice(_DELTAS), rng.randrange(1000)))
        elif roll < 0.82:
            script.append(("cancel", rng.randrange(1 << 30)))
        elif roll < 0.90:
            script.append(("run_until", rng.choice(_DELTAS)))
        elif roll < 0.95:
            script.append(("run_all",))
        else:
            # Cancel storm: a burst of doomed events plus survivors.
            script.append(("storm", 8 + rng.randrange(200), rng.choice(_DELTAS)))
    script.append(("run_all",))
    return script


def _apply(sim, script):
    """Replay ``script`` on ``sim``; return the firing log and checkpoints."""
    log = []
    checkpoints = []
    handles = []  # every cancellable handle ever created

    def fire(tag):
        log.append((tag, sim.now))

    def firing(tag):  # a distinct callable per event, shared shape
        return lambda: fire(tag)

    for op in script:
        kind = op[0]
        if kind == "at":
            _, delta, tag = op
            handles.append(sim.schedule_at(sim.now + delta, firing(tag)))
        elif kind == "after":
            _, delta, tag = op
            handles.append(sim.schedule_after(delta, firing(tag)))
        elif kind == "call":
            _, delta, tag = op
            sim.call_after(delta, fire, ("call", tag))
        elif kind == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif kind == "run_until":
            fired = sim.run(until=sim.now + op[1])
            checkpoints.append(("until", fired, sim.now, sim.pending_events))
        elif kind == "run_all":
            fired = sim.run()
            checkpoints.append(("all", fired, sim.now, sim.pending_events))
        elif kind == "storm":
            _, count, delta = op
            doomed = [
                sim.schedule_at(sim.now + delta + (i % 7), lambda: fire("doomed"))
                for i in range(count)
            ]
            survivor_tag = ("survivor", count)
            handles.append(sim.schedule_after(delta + 3, firing(survivor_tag)))
            for event in doomed:
                event.cancel()
        checkpoints.append((sim.now, sim.pending_events))
    return log, checkpoints


def _sim(cls, epoch_mode):
    sim = cls()
    sim.epoch_mode = epoch_mode
    return sim


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("epoch_mode", [True, False])
def test_hybrid_matches_reference_heap(seed, epoch_mode):
    # With epoch_mode on, the reference subclass keeps everything in the
    # heap, so its epoch loop takes the heap-only fallback per event —
    # deliberately exercising both the batched drain (hybrid) and the
    # fallback path (reference) against each other.
    script = _make_script(seed, 120)
    log_h, checks_h = _apply(_sim(Simulator, epoch_mode), script)
    log_r, checks_r = _apply(_sim(ReferenceHeapSimulator, epoch_mode), script)
    assert checks_h == checks_r
    assert log_h == log_r


@pytest.mark.parametrize("seed", range(12))
def test_epoch_loop_matches_reference_loop(seed):
    """Same hybrid queue, both run loops: identical logs and checkpoints."""
    script = _make_script(seed, 120)
    log_on, checks_on = _apply(_sim(Simulator, True), script)
    log_off, checks_off = _apply(_sim(Simulator, False), script)
    assert checks_on == checks_off
    assert log_on == log_off


def test_mid_epoch_cross_core_message_forces_fallback_in_order():
    """Re-breaking test for the epoch loop's heap check.

    A self-rescheduling local chain keeps the wheel busy; early on it
    sends a "cross-core message" 2000 cycles out, which lands in the
    overflow heap with a *smaller* sequence number than the wheel entry
    later scheduled for the same cycle.  When the frontier reaches that
    cycle the engine must abandon the batched drain (a "heap-due"
    fallback) and fire the message first — removing the per-cycle heap
    check, or firing whole buckets without it, reorders the log and
    fails this test.
    """
    sim = Simulator()
    log = []

    def local(step):
        log.append(("local", sim.now))
        if step < 2500:
            sim.call_after(1, local, step + 1)
        if step == 5:
            # In-flight cross-core message: due exactly when the local
            # chain's own entry for cycle 2005 exists, but scheduled
            # (and therefore sequenced) 2000 cycles earlier.
            sim.call_after(2000, message, None)

    def message(_):
        log.append(("message", sim.now))

    sim.call_after(0, local, 0)
    sim.run()

    due = 5 + 2000
    assert ("message", due) in log
    position = log.index(("message", due))
    # The message outranks that cycle's local event (smaller seq).
    assert log[position + 1] == ("local", due)
    assert sim.epoch_stats["fallbacks"].get("heap-due", 0) >= 1
    assert sim.epoch_stats["epochs"] > 0

    # And the reference loop produces the identical interleaving.
    ref = _sim(Simulator, False)
    ref_log = []

    def ref_local(step):
        ref_log.append(("local", ref.now))
        if step < 2500:
            ref.call_after(1, ref_local, step + 1)
        if step == 5:
            ref.call_after(2000, ref_message, None)

    def ref_message(_):
        ref_log.append(("message", ref.now))

    ref.call_after(0, ref_local, 0)
    ref.run()
    assert ref_log == log


def test_reference_heap_never_uses_wheel():
    sim = ReferenceHeapSimulator()
    sim.schedule_at(5, lambda: None)
    sim.call_after(2, lambda: None)
    assert sim._wheel_live == 0
    assert sim._heap_live == 2
    assert sim.run() == 2


def test_cancel_storm_compacts_both_sides():
    sim = Simulator()
    near = [sim.schedule_at(100 + i, lambda: None) for i in range(200)]
    far = [
        sim.schedule_at(sim.WHEEL_SIZE * 3 + i, lambda: None) for i in range(200)
    ]
    keep_near = sim.schedule_at(50, lambda: None)
    keep_far = sim.schedule_at(sim.WHEEL_SIZE * 5, lambda: None)
    for event in near + far:
        event.cancel()
    assert sim.pending_events == 2
    # Tombstones must not be retained wholesale once cancels dominate
    # (each side may keep up to just-under-one-trigger's worth).
    assert sim._retained_entries() <= 2 * sim.COMPACT_MIN_SIZE
    assert sim.run() == 2
    assert not keep_near.cancelled and not keep_far.cancelled


def test_free_list_recycles_internal_entries_only():
    sim = Simulator()
    fired = []
    public = sim.schedule_at(3, lambda: fired.append("public"))
    for i in range(16):
        sim.call_after(i, fired.append, i)
    sim.run()
    assert fired == [0, 1, 2, "public", 3] + list(range(4, 16))
    # Internal entries were recycled; the public entry's storage was not
    # (its handle keeps reporting post-fire state).
    assert len(sim._free) >= 1
    assert all(entry[5] & 1 for entry in sim._free)
    assert not public.cancelled
    public.cancel()  # post-fire cancel is a no-op
    assert not public.cancelled
    assert sim.pending_events == 0
