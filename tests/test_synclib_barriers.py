"""Correctness tests for the barrier algorithms.

Barrier semantics are checked by having every thread publish a per-phase
value before the barrier and read all other threads' values after it: if
any thread could pass the barrier early (or read stale data after it),
the check fails.
"""

import pytest

from repro.cpu.isa import Compute, Load, SelfInvalidate, Store
from repro.synclib.barriers import CentralBarrier, TreeBarrier


def make_barrier(kind, allocator, nthreads):
    if kind == "central":
        return CentralBarrier(allocator, nthreads)
    if kind == "tree":
        return TreeBarrier(allocator, nthreads, fan_in=2, fan_out=2)
    if kind == "n-ary":
        return TreeBarrier(allocator, nthreads, fan_in=4, fan_out=2)
    raise ValueError(kind)


BARRIER_KINDS = ["central", "tree", "n-ary"]


@pytest.mark.parametrize("kind", BARRIER_KINDS)
@pytest.mark.parametrize("num_cores", [4, 16])
class TestBarrierSemantics:
    def test_phases_synchronize_all_threads(
        self, protocol_name, machine_factory, kind, num_cores
    ):
        machine = machine_factory(protocol_name, num_cores)
        barrier = make_barrier(kind, machine.allocator, num_cores)
        region = machine.allocator.region("bar.data")
        slots = machine.allocator.alloc("bar.data", num_cores).base
        phases = 3
        failures = []

        def program(ctx):
            for phase in range(1, phases + 1):
                yield Compute(ctx.rng.randrange(10, 4000))
                yield Store(slots + ctx.core_id, phase)
                yield from barrier.wait(ctx, episode=phase)
                yield SelfInvalidate((region,))
                for other in range(ctx.num_cores):
                    value = yield Load(slots + other)
                    if value < phase:
                        failures.append((ctx.core_id, phase, other, value))

        machine.run([program(machine.ctx(i)) for i in range(num_cores)])
        assert failures == []


@pytest.mark.parametrize("kind", BARRIER_KINDS)
class TestBarrierReuse:
    def test_many_episodes_back_to_back(self, protocol_name, machine_factory, kind):
        machine = machine_factory(protocol_name, 4)
        barrier = make_barrier(kind, machine.allocator, 4)
        counts = [0] * 4

        def program(ctx):
            for episode in range(1, 11):
                yield from barrier.wait(ctx, episode=episode)
                counts[ctx.core_id] += 1

        machine.run([program(machine.ctx(i)) for i in range(4)])
        assert counts == [10] * 4


class TestBarrierConstruction:
    def test_central_rejects_zero_threads(self, machine_factory):
        machine = machine_factory("MESI", 4)
        with pytest.raises(ValueError):
            CentralBarrier(machine.allocator, 0)

    def test_tree_rejects_fan_in_one(self, machine_factory):
        machine = machine_factory("MESI", 4)
        with pytest.raises(ValueError):
            TreeBarrier(machine.allocator, 4, fan_in=1)

    def test_tree_children(self, machine_factory):
        machine = machine_factory("MESI", 16)
        barrier = TreeBarrier(machine.allocator, 16, fan_in=4, fan_out=2)
        assert barrier._children(0, 4) == [1, 2, 3, 4]
        assert barrier._children(0, 2) == [1, 2]
        assert barrier._children(7, 2) == [15]
        assert barrier._children(8, 2) == []

    def test_flags_line_padded(self, machine_factory):
        machine = machine_factory("MESI", 4)
        barrier = TreeBarrier(machine.allocator, 4)
        amap = machine.allocator.amap
        lines = [amap.line_of(a) for a in barrier.arrive + barrier.depart]
        assert len(set(lines)) == len(lines)
