"""Formal protocol models: conformance, exploration, oracle, TLA+ export.

Structure:

* registry-driven clean checks — every protocol that declares a
  ``formal_model`` capability must pass static conformance (all events
  covered, zero findings) and small-scope exhaustive exploration (zero
  violations, every model state occupied);
* mutation tests — a deliberately wrong model must *fail*: deleting
  DeNovoSync0's sync-read steal rules trips the conformance diff and
  the litmus divergence oracle, and deleting MESI's writer-initiated
  invalidations trips the explorer's SWMR invariant with a replayable
  counterexample trace;
* divergence oracle — clean litmus replays for the modelled protocols;
* golden TLA+ pinning — the export is byte-stable against
  ``tests/golden/*.tla`` (regenerate with ``denovosync-bench formal``
  and copy from ``results/formal/`` after a deliberate model change);
* the ``formal`` cell/CLI plumbing.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import pytest

from repro.formal.conformance import check_protocol
from repro.formal.explore import ExploreScope, explore_model
from repro.formal.model import (
    EVENTS,
    MODELS,
    FormalModel,
    get_model,
    replace_rules,
)
from repro.formal.oracle import replay_corpus
from repro.formal.tla import export_tla, module_name
from repro.protocols.registry import formal_model_set, get_info
from repro.sanitize.findings import (
    KIND_FORBIDDEN_TRANSITION,
    KIND_MODEL_DIVERGENCE,
    KIND_MODEL_INVARIANT,
    SEVERITY_ERROR,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

MODELLED = formal_model_set()


class TestRegistryWiring:
    def test_formal_model_set_names_real_models(self):
        assert MODELLED, "no protocol declares a formal model"
        for protocol in MODELLED:
            info = get_info(protocol)
            assert info.formal_model in MODELS
            assert get_model(info.formal_model).protocol == protocol

    def test_unknown_model_name_rejected(self):
        with pytest.raises(ValueError, match="unknown formal model"):
            get_model("nope")

    def test_paper_protocols_are_modelled(self):
        assert "MESI" in MODELLED
        assert "DeNovoSync0" in MODELLED


class TestModelValidation:
    def test_bad_initial_state_rejected(self):
        model = get_model("mesi")
        with pytest.raises(ValueError, match="not a state"):
            dataclasses.replace(model, initial="Z")

    def test_rule_with_unknown_state_rejected(self):
        model = get_model("mesi")
        bad = dataclasses.replace(model.rules[0], post="Z")
        with pytest.raises(ValueError, match="unknown state"):
            replace_rules(model, (bad,) + model.rules[1:])

    @pytest.mark.parametrize("name", sorted(MODELS))
    def test_every_event_has_rules(self, name):
        model = get_model(name)
        for event in EVENTS:
            assert model.rules_for(event), f"{name}: no rules for {event}"


@pytest.mark.parametrize("protocol", MODELLED)
class TestConformanceClean:
    def test_implementation_conforms(self, protocol):
        result = check_protocol(get_info(protocol))
        assert result.findings == [], [f.message for f in result.findings]

    def test_every_event_covered(self, protocol):
        result = check_protocol(get_info(protocol))
        assert sorted(result.coverage) == sorted(EVENTS)
        for event, cover in result.coverage.items():
            assert cover["handlers"], f"{protocol}: {event} has no handlers"
            assert set(cover["expected"]) <= set(cover["writes"]), (
                protocol,
                event,
                cover,
            )


@pytest.mark.parametrize("protocol", MODELLED)
class TestExplorationClean:
    def test_small_scope_exhaustive(self, protocol):
        model = get_model(get_info(protocol).formal_model)
        result = explore_model(model)
        assert result.findings == [], [f.message for f in result.findings]
        assert set(result.occupied) == set(model.states)
        assert result.states > 1
        assert result.transitions > result.states

    def test_two_core_scope_also_clean(self, protocol):
        model = get_model(get_info(protocol).formal_model)
        result = explore_model(model, ExploreScope(cores=2, addrs=1))
        assert result.findings == []


def _without_syncread_steals(model: FormalModel) -> FormalModel:
    """DeNovoSync0 minus the sync-read registration rules (I->R, V->R)."""
    kept = tuple(
        rule
        for rule in model.rules
        if not (rule.event == "SyncRead" and rule.pre != rule.post)
    )
    assert len(kept) == len(model.rules) - 2
    return replace_rules(model, kept)


class TestMutationsAreCaught:
    def test_conformance_flags_deleted_steal_rules(self):
        # With the sync-read registration rules gone, the model claims a
        # sync read can never install R or downgrade the previous
        # registrant to V — but the implementation does both, so the
        # state-write diff must report forbidden transitions.
        model = _without_syncread_steals(get_model("denovosync0"))
        result = check_protocol(get_info("DeNovoSync0"), model)
        forbidden = [
            f for f in result.findings if f.kind == KIND_FORBIDDEN_TRANSITION
        ]
        assert forbidden, [f.message for f in result.findings]
        assert any(f.details["event"] == "SyncRead" for f in forbidden)
        assert all(f.severity == SEVERITY_ERROR for f in forbidden)

    def test_oracle_diverges_without_steal_rules(self):
        # Replaying real executions against the crippled model: the
        # first sync read from I/V has no enabled rule, which must
        # surface as a model-divergence finding naming the litmus test.
        model = _without_syncread_steals(get_model("denovosync0"))
        findings, stats = replay_corpus(
            "DeNovoSync0", model, bound=0, max_schedules=10
        )
        divergences = [
            f for f in findings if f.kind == KIND_MODEL_DIVERGENCE
        ]
        assert divergences
        assert stats.executions > 0
        first = divergences[0]
        assert first.site.startswith("mc/")
        assert "schedule" in first.details

    def test_explorer_catches_missing_invalidations(self):
        # MESI minus writer-initiated invalidations: a write from I or S
        # leaves the other copies in place, so the SWMR invariant must
        # fail with a replayable trace from the initial state.
        model = get_model("mesi")
        stripped = replace_rules(
            model,
            tuple(
                dataclasses.replace(rule, others=())
                for rule in model.rules
            ),
        )
        result = explore_model(stripped)
        assert not result.ok
        violation = result.findings[0]
        assert violation.kind == KIND_MODEL_INVARIANT
        assert violation.details["invariant"] == "swmr"
        assert violation.details["trace"], "counterexample trace missing"


@pytest.mark.parametrize("protocol", MODELLED)
class TestDivergenceOracle:
    def test_litmus_subset_replays_clean(self, protocol):
        model = get_model(get_info(protocol).formal_model)
        findings, stats = replay_corpus(
            protocol, model, bound=1, max_schedules=60
        )
        assert findings == [], [f.message for f in findings]
        assert stats.executions > 0
        assert stats.events > 0
        assert stats.value_checks > 0
        assert stats.to_dict()["tests"] == stats.tests


@pytest.mark.parametrize("name", sorted(MODELS))
class TestGoldenTla:
    def test_export_matches_golden(self, name):
        model = get_model(name)
        golden = GOLDEN_DIR / f"{module_name(model)}.tla"
        assert golden.exists(), f"missing golden file {golden}"
        expected = golden.read_text(encoding="utf-8")
        assert export_tla(model) == expected, (
            f"TLA+ export for {name} drifted from {golden}; if the model "
            f"change is deliberate, run `denovosync-bench formal` and copy "
            f"results/formal/{module_name(model)}.tla over the golden file"
        )

    def test_export_is_deterministic(self, name):
        model = get_model(name)
        assert export_tla(model) == export_tla(model)


class TestFormalCells:
    def test_run_cell_end_to_end(self):
        from repro.formal.cells import FormalCell, run_cell

        cell = FormalCell(
            protocol="DeNovoSync0",
            divergence_bound=0,
            divergence_schedules=20,
            litmus=("mp", "sb"),
        )
        outcome = run_cell(cell)
        assert outcome.ok, [f.message for f in outcome.findings]
        assert outcome.model == "denovosync0"
        assert outcome.explore_stats["states"] > 1
        assert outcome.oracle_stats["tests"] == 2
        assert outcome.tla_module == "DENOVOSYNC0"
        assert "MODULE DENOVOSYNC0" in outcome.tla_text
        assert "DeNovoSync0" in outcome.describe()
        assert outcome.describe().endswith("ok")

    def test_unmodelled_protocol_rejected(self):
        from repro.formal.cells import FormalCell, run_cell

        with pytest.raises(ValueError, match="no formal model"):
            run_cell(FormalCell(protocol="DeNovoSync"))


class TestCli:
    def test_formal_target_writes_report(self, tmp_path, capsys):
        from repro.harness.cli import main

        report_path = tmp_path / "formal.json"
        tla_dir = tmp_path / "tla"
        code = main(
            [
                "formal",
                "--protocols",
                "DeNovoSync0",
                "--litmus",
                "mp",
                "--divergence-bound",
                "0",
                "--divergence-schedules",
                "20",
                "--formal-out",
                str(report_path),
                "--tla-out",
                str(tla_dir),
                "--jobs",
                "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1/1 protocols verified" in out
        assert report_path.exists()
        assert (tla_dir / "DENOVOSYNC0.tla").exists()

        import json

        report = json.loads(report_path.read_text())
        assert report["clean"] is True
        assert report["errors"] == 0
        assert [c["protocol"] for c in report["cells"]] == ["DeNovoSync0"]
