"""Exhaustive small-scope verification of all three protocols.

Each scenario enumerates every interleaving of the given per-core
programs and checks the section 4 correctness conditions plus structural
invariants.  These are the strongest correctness tests in the suite.
"""

import pytest

from repro.verify import (
    Op,
    data_store,
    explore_protocol,
    rmw_inc,
    sync_load,
    sync_store,
)

PROTOCOLS = ["MESI", "DeNovoSync0", "DeNovoSync", "DeNovoSyncSig", "MESI-RFO"]

# Two distinct words, each on its own line, inside the address space.
A = 64
B = 160


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestExhaustiveScenarios:
    def test_message_passing_pattern(self, protocol):
        """Writer publishes two words; reader reads them (all sync)."""
        programs = [
            [sync_store(A, 1), sync_store(B, 2)],
            [sync_load(B), sync_load(A)],
        ]
        report = explore_protocol(protocol, programs)
        assert report.ok, report.failures[:1]
        assert report.interleavings == 6

    def test_concurrent_writers_one_word(self, protocol):
        programs = [
            [sync_store(A, 1), sync_load(A)],
            [sync_store(A, 2), sync_load(A)],
        ]
        report = explore_protocol(protocol, programs)
        assert report.ok, report.failures[:1]

    def test_rmw_storm(self, protocol):
        """Three cores increment one word twice each: every RMW must see
        the latest value (the FAI-ticket linearizability core case)."""
        programs = [[rmw_inc(A), rmw_inc(A)] for _ in range(3)]
        report = explore_protocol(protocol, programs)
        assert report.ok, report.failures[:1]
        assert report.interleavings == 90  # 6! / (2!2!2!)

    def test_mixed_data_and_sync(self, protocol):
        programs = [
            [data_store(A, 5), sync_store(B, 1)],
            [sync_load(B), sync_load(B)],
            [rmw_inc(A)],
        ]
        report = explore_protocol(protocol, programs)
        assert report.ok, report.failures[:1]

    def test_read_sharing_storm(self, protocol):
        """Many sync readers of one word with an interleaved writer —
        the registration ping-pong scenario."""
        programs = [
            [sync_load(A), sync_load(A)],
            [sync_load(A), sync_load(A)],
            [sync_store(A, 7)],
        ]
        report = explore_protocol(protocol, programs)
        assert report.ok, report.failures[:1]

    def test_false_sharing_words(self, protocol):
        """Two words in one cache line, written by different cores."""
        programs = [
            [sync_store(A, 1), sync_load(A + 1)],
            [sync_store(A + 1, 2), sync_load(A)],
        ]
        report = explore_protocol(protocol, programs)
        assert report.ok, report.failures[:1]


class TestCheckerMachinery:
    def test_scope_limit(self):
        programs = [[rmw_inc(A)] * 6 for _ in range(3)]
        with pytest.raises(ValueError, match="scope too large"):
            explore_protocol("MESI", programs, max_interleavings=100)

    def test_unknown_op_kind(self):
        with pytest.raises(ValueError, match="unknown op kind"):
            explore_protocol("MESI", [[Op("teleport", A)]])

    def test_too_many_programs(self):
        with pytest.raises(ValueError, match="more programs than cores"):
            explore_protocol("MESI", [[sync_load(A)]] * 9)

    def test_report_counts(self):
        report = explore_protocol("MESI", [[sync_store(A, 1)], [sync_load(A)]])
        assert report.interleavings == 2
        assert report.operations_checked == 4
        assert report.ok

    def test_detects_injected_violation(self, monkeypatch):
        """A protocol that serves stale sync reads must be caught."""
        from repro.protocols import denovosync0 as ds0mod

        original = ds0mod.DeNovoSync0Protocol.sync_load

        def broken(self, core_id, addr):
            access = original(self, core_id, addr)
            access.value = 999_999  # corrupt the observed value
            return access

        monkeypatch.setattr(ds0mod.DeNovoSync0Protocol, "sync_load", broken)
        report = explore_protocol(
            "DeNovoSync0", [[sync_store(A, 1)], [sync_load(A)]]
        )
        assert not report.ok
        assert "sync load saw" in report.failures[0].message
