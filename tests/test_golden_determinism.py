"""Golden-run determinism under the hybrid scheduler and epoch execution.

The engine overhaul (bucket-wheel + heap hybrid, free-list, allocation-free
dispatch) and the epoch execution mode layered on top must be invisible to
results: every consumer of the simulator — figures, chaos differential
runs, model checking, trace capture — relies on the deterministic
(cycle, seq) firing order.  These tests pin that down:

* the same workload run twice produces byte-identical stats JSON and
  byte-identical trace files, with epoch mode on and off;
* the hybrid scheduler produces byte-identical results to
  :class:`~repro.sim.engine.ReferenceHeapSimulator`, a pure binary-heap
  subclass that bypasses the bucket wheel entirely — proving neither the
  wheel nor the epoch loop changes the schedule *order* of anything;
* epoch mode on vs off is itself byte-identical, across every registry
  protocol, including the spin fast-forward path (Neat grants leases;
  the untraced check asserts ticks actually replaced polls).
"""

import hashlib
import json

import pytest

import repro.harness.runner as runner_mod
from repro.config import config_for_cores
from repro.harness.runner import run_workload
from repro.protocols.registry import protocol_names
from repro.sim.engine import ReferenceHeapSimulator
from repro.trace.events import write_trace
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel

CELLS = [
    ("tatas", "counter"),  # lock kernel
    ("barrier", "central"),  # barrier kernel
    ("nonblocking", "M-S queue"),  # non-blocking kernel
]
# Every protocol the plugin registry knows about, not just the figure set:
# the epoch loop and the quiescence/lease contract must hold for all of
# them (the matrix the ISSUE-10 acceptance criteria name).
PROTOCOLS = list(protocol_names())
EPOCH_MODES = [True, False]


def _golden(family, name, protocol, tmp_path, tag, epoch_mode=True):
    """(stats JSON bytes, trace SHA-256) for one traced run."""
    workload = make_kernel(family, name, spec=KernelSpec(scale=0.02))
    result = run_workload(
        workload,
        protocol,
        config_for_cores(4, epoch_mode=epoch_mode),
        seed=1,
        trace=True,
    )
    path = tmp_path / f"{tag}.jsonl"
    write_trace(result.meta["trace"], path)
    stats = json.dumps(result.summary(), sort_keys=True).encode()
    return stats, hashlib.sha256(path.read_bytes()).hexdigest()


@pytest.mark.parametrize("family,name", CELLS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("epoch_mode", EPOCH_MODES)
def test_repeat_runs_are_byte_identical(
    family, name, protocol, epoch_mode, tmp_path
):
    first = _golden(family, name, protocol, tmp_path, "first", epoch_mode)
    second = _golden(family, name, protocol, tmp_path, "second", epoch_mode)
    assert first == second


@pytest.mark.parametrize("family,name", CELLS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("epoch_mode", EPOCH_MODES)
def test_hybrid_matches_reference_heap_schedule(
    family, name, protocol, epoch_mode, tmp_path, monkeypatch
):
    hybrid = _golden(family, name, protocol, tmp_path, "hybrid", epoch_mode)
    monkeypatch.setattr(runner_mod, "Simulator", ReferenceHeapSimulator)
    reference = _golden(
        family, name, protocol, tmp_path, "reference", epoch_mode
    )
    assert hybrid == reference


@pytest.mark.parametrize("family,name", CELLS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_epoch_mode_matches_reference_loop(family, name, protocol, tmp_path):
    """Epoch on vs off, same hybrid queue: byte-identical everything."""
    on = _golden(family, name, protocol, tmp_path, "on", True)
    off = _golden(family, name, protocol, tmp_path, "off", False)
    assert on == off


@pytest.mark.parametrize("family,name", [("tatas", "counter"),
                                         ("barrier", "central")])
def test_spin_lease_path_is_byte_identical(family, name):
    """The spin fast-forward must actually engage and still match.

    Tracing wraps the protocol (which disables leasing), so this check
    runs untraced: under Neat — the one registry protocol whose failed
    polls are stateless — the epoch run must elide polls via lease ticks
    and still produce byte-identical summaries to the reference loop.
    """
    def run(epoch_mode):
        workload = make_kernel(family, name, spec=KernelSpec(scale=0.02))
        return run_workload(
            workload, "Neat", config_for_cores(16, epoch_mode=epoch_mode),
            seed=1,
        )

    on, off = run(True), run(False)
    assert on.meta["epoch"]["spin_polls_elided"] > 0
    assert off.meta["epoch"]["spin_polls_elided"] == 0
    assert json.dumps(on.summary(), sort_keys=True) == json.dumps(
        off.summary(), sort_keys=True
    )
