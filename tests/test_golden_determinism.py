"""Golden-run determinism under the hybrid scheduler.

The engine overhaul (bucket-wheel + heap hybrid, free-list, allocation-free
dispatch) must be invisible to results: every consumer of the simulator —
figures, chaos differential runs, model checking, trace capture — relies on
the deterministic (cycle, seq) firing order.  These tests pin that down:

* the same workload run twice produces byte-identical stats JSON and
  byte-identical trace files;
* the hybrid scheduler produces byte-identical results to
  :class:`~repro.sim.engine.ReferenceHeapSimulator`, a pure binary-heap
  subclass that bypasses the bucket wheel entirely — proving the wheel
  changes the schedule *order* of nothing.
"""

import hashlib
import json

import pytest

import repro.harness.runner as runner_mod
from repro.config import config_for_cores
from repro.harness.runner import run_workload
from repro.sim.engine import ReferenceHeapSimulator
from repro.trace.events import write_trace
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel

CELLS = [
    ("tatas", "counter"),  # lock kernel
    ("barrier", "central"),  # barrier kernel
    ("nonblocking", "M-S queue"),  # non-blocking kernel
]
PROTOCOLS = ["MESI", "DeNovoSync0", "DeNovoSync"]


def _golden(family, name, protocol, tmp_path, tag):
    """(stats JSON bytes, trace SHA-256) for one traced run."""
    workload = make_kernel(family, name, spec=KernelSpec(scale=0.02))
    result = run_workload(
        workload, protocol, config_for_cores(4), seed=1, trace=True
    )
    path = tmp_path / f"{tag}.jsonl"
    write_trace(result.meta["trace"], path)
    stats = json.dumps(result.summary(), sort_keys=True).encode()
    return stats, hashlib.sha256(path.read_bytes()).hexdigest()


@pytest.mark.parametrize("family,name", CELLS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_repeat_runs_are_byte_identical(family, name, protocol, tmp_path):
    first = _golden(family, name, protocol, tmp_path, "first")
    second = _golden(family, name, protocol, tmp_path, "second")
    assert first == second


@pytest.mark.parametrize("family,name", CELLS)
@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_hybrid_matches_reference_heap_schedule(
    family, name, protocol, tmp_path, monkeypatch
):
    hybrid = _golden(family, name, protocol, tmp_path, "hybrid")
    monkeypatch.setattr(runner_mod, "Simulator", ReferenceHeapSimulator)
    reference = _golden(family, name, protocol, tmp_path, "reference")
    assert hybrid == reference
