"""Runtime coherence invariant checker tests.

Hand-built illegal states (two Modified copies, a stale DeNovo registry,
a Valid word missing from its self-invalidation tracking) must trip the
checker with messages naming the line/word and the cores involved; full
checking over real kernel executions must find nothing.
"""

import pytest

from repro.config import config_for_cores
from repro.harness.runner import run_workload
from repro.mem.l1 import DeNovoState, MesiState
from repro.protocols import make_protocol
from repro.protocols.invariants import InvariantViolation, verify
from repro.verify.checker import check_protocol_state
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel

#: Beyond any transfer latency, so directs calls never hit a busy window.
STEP = 2_000


def _mesi(level="full", **overrides):
    config = config_for_cores(4, invariant_level=level, **overrides)
    return make_protocol("MESI", config)


def _denovo(level="full", **overrides):
    config = config_for_cores(4, invariant_level=level, **overrides)
    return make_protocol("DeNovoSync", config)


class TestMesiInvariants:
    def test_clean_state_has_no_violations(self):
        protocol = _mesi()
        protocol.set_time(STEP)
        protocol.store(0, 0, 1, sync=True, ticketed=True)
        protocol.set_time(2 * STEP)
        protocol.load(1, 0, ticketed=True)
        assert protocol.invariant_violations() == []
        verify(protocol)  # must not raise

    def test_two_modified_copies_detected(self):
        protocol = _mesi(level="off")
        protocol.set_time(STEP)
        protocol.store(0, 0, 1, sync=True, ticketed=True)  # core 0: line 0 in M
        protocol.l1s[1].insert(0, MesiState.MODIFIED)  # illegal second M copy
        with pytest.raises(InvariantViolation) as excinfo:
            verify(protocol)
        message = str(excinfo.value)
        assert "line 0" in message
        assert "coexists with copies at cores [1]" in message
        assert "directory records owner 0" in message

    def test_sharer_unknown_to_directory_detected(self):
        protocol = _mesi(level="off")
        protocol.set_time(STEP)
        protocol.load(0, 0, ticketed=True)
        protocol.set_time(2 * STEP)
        protocol.load(1, 0, ticketed=True)  # line 0 now unowned, sharers {0, 1}
        protocol.l1s[2].insert(0, MesiState.SHARED)  # directory never told
        violations = protocol.invariant_violations()
        assert any(
            "line 0" in v and "cores [2]" in v and "does not know" in v
            for v in violations
        )

    def test_full_level_checks_on_set_time(self):
        protocol = _mesi(level="full")
        protocol.set_time(STEP)
        protocol.store(0, 0, 1, sync=True, ticketed=True)
        protocol.l1s[1].insert(0, MesiState.MODIFIED)
        with pytest.raises(InvariantViolation):
            protocol.set_time(STEP + 1)

    def test_sampled_level_trips_within_period(self):
        protocol = _mesi(level="sampled", invariant_sample_period=8)
        protocol.set_time(STEP)
        protocol.store(0, 0, 1, sync=True, ticketed=True)
        protocol.l1s[1].insert(0, MesiState.MODIFIED)
        with pytest.raises(InvariantViolation):
            for tick in range(1, 9):  # at most one full period of calls
                protocol.set_time(STEP + tick)

    def test_off_level_never_checks(self):
        protocol = _mesi(level="off")
        protocol.set_time(STEP)
        protocol.store(0, 0, 1, sync=True, ticketed=True)
        protocol.l1s[1].insert(0, MesiState.MODIFIED)
        for tick in range(1, 200):
            protocol.set_time(STEP + tick)  # never raises
        # The state is still reportable on demand.
        assert protocol.invariant_violations()


class TestDeNovoInvariants:
    def test_clean_state_has_no_violations(self):
        protocol = _denovo()
        protocol.set_time(STEP)
        protocol.store(0, 0, 1, sync=True, ticketed=True)
        protocol.set_time(2 * STEP)
        protocol.load(1, 0, ticketed=True)
        assert protocol.invariant_violations() == []
        verify(protocol)

    def test_stale_registry_pointer_detected(self):
        protocol = _denovo(level="off")
        protocol.set_time(STEP)
        protocol.store(0, 0, 1, sync=True, ticketed=True)  # word 0 registered at 0
        protocol.l1s[0].invalidate_word(0)  # copy gone, registry not updated
        with pytest.raises(InvariantViolation) as excinfo:
            verify(protocol)
        message = str(excinfo.value)
        assert "word 0" in message
        assert "registry points at core 0" in message

    def test_stale_registered_value_detected(self):
        protocol = _denovo(level="off")
        protocol.set_time(STEP)
        protocol.store(0, 0, 1, sync=True, ticketed=True)
        protocol.memory.write(0, 99)  # backing store diverges from the copy
        violations = protocol.invariant_violations()
        assert any(
            "word 0" in v and "core 0" in v and "stale" in v for v in violations
        )

    def test_second_registered_copy_detected(self):
        protocol = _denovo(level="off")
        protocol.set_time(STEP)
        protocol.store(0, 0, 1, sync=True, ticketed=True)
        protocol.l1s[1].fill_word(0, 7, DeNovoState.REGISTERED)
        violations = protocol.invariant_violations()
        assert any(
            "word 0" in v and "core 1" in v and "registry points at 0" in v
            for v in violations
        )

    def test_untracked_valid_word_detected(self):
        protocol = _denovo(level="off")
        protocol.set_time(STEP)
        protocol.load(1, 0, ticketed=True)  # core 1 caches word 0 Valid
        assert protocol.l1s[1].state_of(0, touch=False) is DeNovoState.VALID
        protocol.l1s[1]._valid_by_region.clear()  # desync the tracking
        violations = protocol.invariant_violations()
        assert any(
            "word 0" in v and "core 1" in v and "self-invalidation" in v
            for v in violations
        )

    def test_violation_carries_structured_fields(self):
        protocol = _denovo(level="off")
        protocol.set_time(STEP)
        protocol.store(0, 0, 1, sync=True, ticketed=True)
        protocol.l1s[0].invalidate_word(0)
        with pytest.raises(InvariantViolation) as excinfo:
            protocol.check_invariants()
        exc = excinfo.value
        assert exc.protocol_name == protocol.name
        assert exc.now == STEP
        assert len(exc.violations) >= 1


class TestFullCheckingOnKernels:
    """Acceptance: full invariant checking over real executions is clean."""

    @pytest.mark.parametrize("protocol_name", ["MESI", "DeNovoSync0", "DeNovoSync"])
    @pytest.mark.parametrize(
        "figure,name", [("tatas", "counter"), ("nonblocking", "FAI counter")]
    )
    def test_kernels_run_clean_under_full_checking(
        self, protocol_name, figure, name
    ):
        config = config_for_cores(16, invariant_level="full")
        workload = make_kernel(figure, name, spec=KernelSpec(scale=0.02))
        result = run_workload(
            workload, protocol_name, config, seed=1, keep_protocol=True
        )
        assert result.cycles > 0
        assert check_protocol_state(result.meta["protocol"]) == []
