"""Tests for the synchronization sanitizer (:mod:`repro.sanitize`).

Three groups:

* seeded-defect dynamic fixtures — an unannotated racy store, a dropped
  acquire, and a missing self-invalidation each produce exactly the
  expected finding, and their repaired twins are clean;
* regression shims — the annotation defects fixed in the shipped synclib
  (Treiber pop acquire, M&S dequeue link acquire, two-lock queue link
  annotations) are re-broken behind subclasses and the sanitizer must
  catch each one;
* the static lint pass — one fixture per rule, plus the shipped corpus
  staying error-free.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.config import config_for_cores
from repro.cpu.core import Core
from repro.cpu.isa import Cas, Load, SelfInvalidate, Store, WaitLoad
from repro.cpu.thread import ThreadCtx
from repro.mem.address import AddressMap
from repro.mem.regions import RegionAllocator
from repro.mc.litmus import CORPUS
from repro.mc.runner import run_schedule
from repro.protocols import make_protocol
from repro.sanitize.dynamic import analyze_trace, region_lookup
from repro.sanitize.findings import (
    KIND_CAS_UNCHECKED,
    KIND_DISCARDED_RESULT,
    KIND_RAW_ADDRESS,
    KIND_RELEASE_ON_DATA_STORE,
    KIND_STALE_READ_HAZARD,
    KIND_UNANNOTATED_RACE,
    KIND_UNBALANCED_BUCKETS,
    KIND_WAITLOAD_NOT_SYNC,
    SEVERITY_ERROR,
    Finding,
    Report,
)
from repro.sanitize.findings import (
    KIND_UNDECLARED_WAKE_MUTATION,
    KIND_UNORDERED_ITERATION,
)
from repro.sanitize.lint import (
    KIND_WAITLOAD_DISCARDED,
    SIMULATOR_RULES,
    default_lint_targets,
    lint_paths,
    lint_source,
    simulator_lint_targets,
)
from repro.sim.engine import Simulator
from repro.synclib.locked_structures import EMPTY, DoubleLockQueue
from repro.synclib.msqueue import NULL, MichaelScottQueue
from repro.synclib.tatas import TatasLock
from repro.synclib.treiber import TreiberStack
from repro.trace.analysis import summarize
from repro.trace.recorder import TracingProtocol

SANITIZE_PROTOCOLS = ["MESI", "DeNovoSync0", "DeNovoSync"]


class TracedMachine:
    """A MiniMachine twin whose protocol records an access trace."""

    def __init__(self, protocol_name: str = "DeNovoSync", num_cores: int = 4):
        self.config = config_for_cores(num_cores)
        self.allocator = RegionAllocator(AddressMap(self.config))
        self.protocol = TracingProtocol(
            make_protocol(protocol_name, self.config, self.allocator)
        )
        self.sim = Simulator()
        self.cores = [Core(i, self.sim, self.protocol) for i in range(num_cores)]

    def ctx(self, core_id: int) -> ThreadCtx:
        return ThreadCtx(
            core_id=core_id,
            num_cores=self.config.num_cores,
            config=self.config,
            allocator=self.allocator,
            rng=random.Random(core_id),
        )

    def run(self, programs, initial_values=None, max_events: int = 5_000_000):
        for addr, value in (initial_values or {}).items():
            self.protocol.memory.write(addr, value)
        for core, program in zip(self.cores, programs):
            core.start(program)
        self.sim.run(max_events=max_events)
        stuck = [c.core_id for c in self.cores[: len(programs)] if not c.done]
        assert not stuck, f"cores {stuck} deadlocked at cycle {self.sim.now}"
        return list(self.protocol.records)

    def analyze(self):
        return analyze_trace(
            self.protocol.records, region_of=region_lookup(self.allocator)
        )


# ---------------------------------------------------------------------------
# Seeded-defect fixtures: each produces exactly the expected finding.
# ---------------------------------------------------------------------------


def test_unannotated_racy_store_is_flagged():
    """Two cores plain-store the same word: one unannotated-race finding."""
    machine = TracedMachine()
    word = machine.allocator.alloc("race.x", 1, line_align=True).base

    def storer(value):
        yield Store(word, value)

    machine.run([storer(1), storer(2)])
    analysis = machine.analyze()

    assert len(analysis.findings) == 1
    finding = analysis.findings[0]
    assert finding.kind == KIND_UNANNOTATED_RACE
    assert finding.severity == SEVERITY_ERROR
    assert finding.details["addr"] == word
    cores = {finding.details["first"]["core"], finding.details["second"]["core"]}
    assert cores == {0, 1}
    assert analysis.racy_unannotated_pairs == 1
    assert analysis.stale_read_hazards == 0


def _message_passing(machine: TracedMachine, *, acquire: bool):
    data = machine.allocator.alloc("mp.data", 1, line_align=True)
    flag = machine.allocator.alloc_sync("mp.flag").base

    def writer():
        yield Store(data.base, 41)
        yield Store(flag, 1, sync=True, release=True)

    def reader():
        yield WaitLoad(flag, lambda v: v == 1, sync=True, acquire=acquire)
        yield SelfInvalidate((data.region,))
        _ = yield Load(data.base)

    machine.run([writer(), reader()])
    return data.base


def test_message_passing_with_acquire_is_clean():
    machine = TracedMachine()
    _message_passing(machine, acquire=True)
    analysis = machine.analyze()
    assert analysis.findings == []
    assert analysis.racy_unannotated_pairs == 0


def test_dropped_acquire_is_flagged():
    """Waiting without acquire=True leaves the payload access unordered."""
    machine = TracedMachine()
    payload = _message_passing(machine, acquire=False)
    analysis = machine.analyze()

    assert len(analysis.findings) == 1
    finding = analysis.findings[0]
    assert finding.kind == KIND_UNANNOTATED_RACE
    assert finding.details["addr"] == payload
    kinds = {finding.details["first"]["kind"], finding.details["second"]["kind"]}
    assert kinds == {"store", "load"}
    assert analysis.racy_unannotated_pairs == 1


def _two_round_handoff(machine: TracedMachine, *, invalidate_second: bool):
    """Two release/acquire rounds with an ack back-channel; the reader
    caches the payload in round 1, and round 2 re-reads it — stale
    unless it self-invalidates again."""
    data = machine.allocator.alloc("hand.data", 1, line_align=True)
    flag = machine.allocator.alloc_sync("hand.flag").base
    ack = machine.allocator.alloc_sync("hand.ack").base

    def writer():
        yield Store(data.base, 1)
        yield Store(flag, 1, sync=True, release=True)
        yield WaitLoad(ack, lambda v: v == 1, sync=True, acquire=True)
        yield Store(data.base, 2)
        yield Store(flag, 2, sync=True, release=True)

    def reader():
        yield WaitLoad(flag, lambda v: v >= 1, sync=True, acquire=True)
        yield SelfInvalidate((data.region,))
        _ = yield Load(data.base)
        yield Store(ack, 1, sync=True, release=True)
        yield WaitLoad(flag, lambda v: v >= 2, sync=True, acquire=True)
        if invalidate_second:
            yield SelfInvalidate((data.region,))
        _ = yield Load(data.base)

    machine.run([writer(), reader()])
    return data.base


def test_handoff_with_selfinv_is_clean():
    machine = TracedMachine()
    _two_round_handoff(machine, invalidate_second=True)
    analysis = machine.analyze()
    assert analysis.findings == []


def test_missing_selfinv_region_is_flagged():
    """Skipping the second SelfInvalidate: one stale-read hazard."""
    machine = TracedMachine()
    payload = _two_round_handoff(machine, invalidate_second=False)
    analysis = machine.analyze()

    assert len(analysis.findings) == 1
    finding = analysis.findings[0]
    assert finding.kind == KIND_STALE_READ_HAZARD
    assert finding.severity == SEVERITY_ERROR
    assert finding.details["addr"] == payload
    assert finding.details["writer_core"] == 0
    assert finding.details["reader_core"] == 1
    assert analysis.racy_unannotated_pairs == 0
    assert analysis.stale_read_hazards == 1


def test_summarize_exposes_racy_pairs():
    broken = TracedMachine()
    _message_passing(broken, acquire=False)
    assert summarize(broken.protocol.records).racy_unannotated_pairs == 1

    clean = TracedMachine()
    _message_passing(clean, acquire=True)
    assert summarize(clean.protocol.records).racy_unannotated_pairs == 0


# ---------------------------------------------------------------------------
# The shipped litmus corpus is clean under every protocol.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("litmus_protocol", SANITIZE_PROTOCOLS)
@pytest.mark.parametrize("test_name", sorted(CORPUS))
def test_litmus_corpus_is_clean(test_name, litmus_protocol):
    execution = run_schedule(CORPUS[test_name], litmus_protocol)
    assert execution.completed
    analysis = analyze_trace(
        execution.trace,
        region_of=region_lookup(execution.instance.allocator),
    )
    assert [f.message for f in analysis.findings] == []


# ---------------------------------------------------------------------------
# Regression shims: re-break the fixed synclib annotations.
# ---------------------------------------------------------------------------


class _AcquirelessTreiber(TreiberStack):
    """Treiber stack with the pre-fix pop: no acquire on the top read."""

    def pop(self, ctx):
        while True:
            top = yield Load(self.top, sync=True)  # regression: acquire dropped
            if top == NULL:
                return None
            yield SelfInvalidate((self.nodes,))
            nxt = yield Load(top + 1)
            old = yield Cas(self.top, top, nxt, release=True)
            if old == top:
                value = yield Load(top)
                return value


def _run_stack(stack_cls):
    machine = TracedMachine()
    stack = stack_cls(
        machine.allocator, nodes_per_thread=1, nthreads=2,
        name="tr", software_backoff=False,
    )

    def pusher():
        yield from stack.push(machine.ctx(0), 7)

    def popper():
        while True:
            value = yield from stack.pop(machine.ctx(1))
            if value is not None:
                return

    machine.run([pusher(), popper()])
    return machine.analyze()


def test_treiber_pop_acquire_regression():
    analysis = _run_stack(_AcquirelessTreiber)
    assert analysis.racy_unannotated_pairs >= 1
    assert any(f.kind == KIND_UNANNOTATED_RACE for f in analysis.findings)

    assert _run_stack(TreiberStack).findings == []


class _AcquirelessMSQueue(MichaelScottQueue):
    """M&S queue with the pre-fix dequeue: no acquire on the link read."""

    def dequeue(self, ctx):
        while True:
            head = yield Load(self.head, sync=True)
            tail = yield Load(self.tail, sync=True)
            nxt = yield Load(head + 1, sync=True)  # regression: acquire dropped
            head2 = yield Load(self.head, sync=True)
            if head == head2:
                if head == tail:
                    if nxt == NULL:
                        return None
                    _ = yield Cas(self.tail, tail, nxt)
                else:
                    yield SelfInvalidate((self.values,))
                    value = yield Load(nxt)
                    old = yield Cas(self.head, head, nxt, release=True)
                    if old == head:
                        return value


def _run_queue(queue_cls):
    machine = TracedMachine()
    queue = queue_cls(
        machine.allocator, nodes_per_thread=1, nthreads=2,
        name="msq", software_backoff=False,
    )

    def enqueuer():
        yield from queue.enqueue(machine.ctx(0), 5)

    def dequeuer():
        while True:
            value = yield from queue.dequeue(machine.ctx(1))
            if value is not None:
                return

    machine.run([enqueuer(), dequeuer()], initial_values=queue.initial_values())
    return machine.analyze()


def test_msqueue_dequeue_acquire_regression():
    analysis = _run_queue(_AcquirelessMSQueue)
    assert analysis.racy_unannotated_pairs >= 1
    assert any(f.kind == KIND_UNANNOTATED_RACE for f in analysis.findings)

    assert _run_queue(MichaelScottQueue).findings == []


class _RacyLinkDLQ(DoubleLockQueue):
    """Two-lock queue with the pre-fix plain link store/load."""

    def enqueue(self, ctx, value):
        node = self._alloc_node(ctx.core_id)
        yield Store(node, value)
        yield Store(node + 1, 0)
        token = yield from self.tail_lock.acquire(ctx)
        yield SelfInvalidate((self.region,))
        tail_node = yield Load(self.tail)
        yield Store(tail_node + 1, node)  # regression: plain data store
        yield Store(self.tail, node)
        yield from self.tail_lock.release(token)

    def dequeue(self, ctx):
        token = yield from self.head_lock.acquire(ctx)
        yield SelfInvalidate((self.region,))
        head_node = yield Load(self.head)
        nxt = yield Load(head_node + 1)  # regression: plain data load
        if nxt == 0:
            yield from self.head_lock.release(token)
            return EMPTY
        value = yield Load(nxt)
        yield Store(self.head, nxt)
        yield from self.head_lock.release(token)
        return value


def _run_two_lock_queue(queue_cls):
    machine = TracedMachine()
    head_lock = TatasLock(machine.allocator, name="dlq.hl", software_backoff=False)
    tail_lock = TatasLock(machine.allocator, name="dlq.tl", software_backoff=False)
    queue = queue_cls(
        machine.allocator, head_lock, tail_lock,
        nodes_per_thread=1, nthreads=2, name="dlq",
    )

    def enqueuer():
        yield from queue.enqueue(machine.ctx(0), 9)

    def dequeuer():
        while True:
            value = yield from queue.dequeue(machine.ctx(1))
            if value is not EMPTY:
                return

    machine.run([enqueuer(), dequeuer()], initial_values=queue.initial_values())
    return machine.analyze()


def test_double_lock_queue_link_regression():
    analysis = _run_two_lock_queue(_RacyLinkDLQ)
    assert analysis.racy_unannotated_pairs >= 1
    assert any(f.kind == KIND_UNANNOTATED_RACE for f in analysis.findings)

    assert _run_two_lock_queue(DoubleLockQueue).findings == []


# ---------------------------------------------------------------------------
# The static lint pass.
# ---------------------------------------------------------------------------


def _kinds(findings):
    return sorted(f.kind for f in findings)


def test_lint_discarded_result():
    source = (
        "def prog(stack, x):\n"
        "    yield Cas(x, 0, 1)\n"
    )
    assert _kinds(lint_source(source)) == [KIND_DISCARDED_RESULT]


def test_lint_sanctions_explicit_discard():
    source = (
        "def prog(x):\n"
        "    _ = yield Cas(x, 0, 1)\n"
        "    _ = yield Fai(x)\n"
    )
    assert lint_source(source) == []


def test_lint_cas_success_unchecked():
    source = (
        "def prog(x):\n"
        "    old = yield Cas(x, 0, 1)\n"
        "    yield Load(x, sync=True)\n"
    )
    assert _kinds(lint_source(source)) == [KIND_CAS_UNCHECKED]

    checked = (
        "def prog(x):\n"
        "    old = yield Cas(x, 0, 1)\n"
        "    if old == 0:\n"
        "        return True\n"
    )
    assert lint_source(checked) == []


def test_lint_waitload_not_sync():
    source = (
        "def prog(flag):\n"
        "    yield WaitLoad(flag, lambda v: v == 1, sync=False)\n"
    )
    assert _kinds(lint_source(source)) == [KIND_WAITLOAD_NOT_SYNC]


def test_lint_waitload_discard_warning():
    unpinned = (
        "def prog(flag):\n"
        "    yield WaitLoad(flag, lambda v: v >= 1, sync=True)\n"
    )
    findings = lint_source(unpinned)
    assert _kinds(findings) == [KIND_WAITLOAD_DISCARDED]
    assert all(f.severity != SEVERITY_ERROR for f in findings)

    pinned = (
        "def prog(flag):\n"
        "    yield WaitLoad(flag, lambda v: v == 1, sync=True)\n"
    )
    assert lint_source(pinned) == []


def test_lint_release_on_data_store():
    source = (
        "def prog(x):\n"
        "    yield Store(x, 1, release=True)\n"
    )
    assert _kinds(lint_source(source)) == [KIND_RELEASE_ON_DATA_STORE]

    annotated = (
        "def prog(x):\n"
        "    yield Store(x, 1, sync=True, release=True)\n"
    )
    assert lint_source(annotated) == []


def test_lint_raw_address():
    source = (
        "def prog():\n"
        "    yield Load(128, sync=True)\n"
    )
    assert _kinds(lint_source(source)) == [KIND_RAW_ADDRESS]


def test_lint_unbalanced_buckets():
    source = (
        "def prog(x):\n"
        "    yield PushBucket('cs')\n"
        "    yield Load(x, sync=True)\n"
    )
    assert _kinds(lint_source(source)) == [KIND_UNBALANCED_BUCKETS]

    balanced = (
        "def prog(x):\n"
        "    yield PushBucket('cs')\n"
        "    yield Load(x, sync=True)\n"
        "    yield PopBucket('cs')\n"
    )
    assert lint_source(balanced) == []


def test_shipped_lint_corpus_has_no_errors():
    findings, linted = lint_paths(default_lint_targets())
    errors = [f for f in findings if f.severity == SEVERITY_ERROR]
    assert errors == []
    assert len(linted) >= 10


# ---------------------------------------------------------------------------
# The unordered-iteration determinism rule (simulator sources).
# ---------------------------------------------------------------------------


def _order_kinds(source):
    return _kinds(lint_source(source, rules=SIMULATOR_RULES))


def test_unordered_iteration_flags_set_sources():
    for body in (
        "    for t in {1, 2, 3}:\n        f(t)\n",
        "    s = set(xs)\n    for t in s:\n        f(t)\n",
        "    targets = sharers - {core}\n    for t in targets:\n        f(t)\n",
        "    [f(t) for t in sharers | {core}]\n",
    ):
        source = "def run(sharers, core, xs, f):\n" + body
        assert _order_kinds(source) == [KIND_UNORDERED_ITERATION], body


def test_unordered_iteration_sanctions_sorted_wrapper():
    source = (
        "def run(sharers, core, f):\n"
        "    targets = sharers - {core}\n"
        "    for t in sorted(targets):\n"
        "        f(t)\n"
    )
    assert _order_kinds(source) == []


def test_unordered_iteration_exempts_order_insensitive_consumers():
    source = (
        "def run(targets, rtt):\n"
        "    targets = targets & {1, 2}\n"
        "    worst = max(rtt(t) for t in targets)\n"
        "    count = sum(1 for t in targets)\n"
        "    others = {t + 1 for t in targets}\n"
        "    return worst, count, others\n"
    )
    assert _order_kinds(source) == []


def test_unordered_iteration_only_runs_on_simulator_rules():
    source = "def run(f):\n    for t in {1, 2}:\n        f(t)\n"
    assert lint_source(source) == []  # kernel rules: not in scope


def test_simulator_corpus_has_no_unordered_iteration():
    findings, linted = lint_paths(simulator_lint_targets(), rules=SIMULATOR_RULES)
    assert findings == []
    assert len(linted) >= 20


def test_rebroken_mesi_invalidation_fanout_is_flagged():
    """Unwrapping the sorted() around MESI's invalidation fan-out must
    re-trigger the rule (regression guard for the shipped fix)."""
    import repro.protocols.mesi as mesi_mod

    source = open(mesi_mod.__file__).read()
    fixed = "for target in sorted(targets):"
    assert fixed in source
    rebroken = source.replace(fixed, "for target in targets:")
    findings = lint_source(rebroken, "mesi.py", rules=SIMULATOR_RULES)
    assert _kinds(findings) == [KIND_UNORDERED_ITERATION]
    assert all(f.details["function"] == "_obtain_modified" for f in findings)


# ---------------------------------------------------------------------------
# The undeclared-wake-mutation rule (epoch-mode quiescence contract).
# ---------------------------------------------------------------------------


def test_undeclared_wake_mutation_flags_helper_mutation():
    source = (
        "class FooProtocol:\n"
        "    def _drain(self, addr):\n"
        "        self._mem_values[addr] = 1\n"
    )
    findings = lint_source(source, "foo.py", rules=SIMULATOR_RULES)
    assert _kinds(findings) == [KIND_UNDECLARED_WAKE_MUTATION]
    assert findings[0].details["function"] == "FooProtocol._drain"


def test_undeclared_wake_mutation_covers_both_spellings_and_methods():
    source = (
        "class FooProtocol:\n"
        "    def _a(self, addr):\n"
        "        self.memory._values[addr] = 1\n"
        "    def _b(self, addr):\n"
        "        self._mem_values.pop(addr)\n"
    )
    findings = lint_source(source, "foo.py", rules=SIMULATOR_RULES)
    assert _kinds(findings) == [KIND_UNDECLARED_WAKE_MUTATION] * 2


def test_undeclared_wake_mutation_sanctions_declared_hooks():
    clean = (
        "class FooProtocol:\n"
        "    wake_hooks = (\"_drain\",)\n"
        "    def _drain(self, addr):\n"
        "        self._mem_values[addr] = 1\n"
        "    def store(self, core_id, addr, value):\n"
        "        self._mem_values[addr] = value\n"
        "    def __init__(self):\n"
        "        self._mem_values = {}\n"
    )
    assert lint_source(clean, "foo.py", rules=SIMULATOR_RULES) == []


def test_undeclared_wake_mutation_ignores_non_protocol_classes():
    source = (
        "class Memory:\n"
        "    def write(self, addr, value):\n"
        "        self._mem_values[addr] = value\n"
    )
    assert lint_source(source, "mem.py", rules=SIMULATOR_RULES) == []


def test_undeclared_wake_mutation_only_runs_on_simulator_rules():
    source = (
        "class FooProtocol:\n"
        "    def _drain(self, addr):\n"
        "        self._mem_values[addr] = 1\n"
    )
    assert lint_source(source) == []  # kernel rules: not in scope


def test_rebroken_neat_rmw_out_of_hook_is_flagged():
    """Renaming Neat's rmw so the value-store write lives in an
    undeclared helper must re-trigger the rule (regression guard: the
    shipped protocols keep every mutation inside a wake hook)."""
    import repro.protocols.neat as neat_mod

    source = open(neat_mod.__file__).read()
    fixed = "def rmw("
    assert fixed in source
    rebroken = source.replace(fixed, "def _apply_rmw(")
    findings = lint_source(rebroken, "neat.py", rules=SIMULATOR_RULES)
    assert _kinds(findings) == [KIND_UNDECLARED_WAKE_MUTATION]
    assert findings[0].details["function"] == "NeatProtocol._apply_rmw"


# ---------------------------------------------------------------------------
# Report plumbing and the CLI target.
# ---------------------------------------------------------------------------


def test_report_round_trip():
    report = Report(
        findings=[
            Finding(
                kind=KIND_UNANNOTATED_RACE, severity=SEVERITY_ERROR,
                message="m", site="word 8", details={"addr": 8},
            ),
            Finding(
                kind=KIND_WAITLOAD_DISCARDED, severity="warning",
                message="w", site="f.py:3",
            ),
        ],
        cells=[{"cell": "tatas/counter x MESI", "findings": 1}],
        lint_files=["f.py"],
    )
    assert not report.clean
    assert len(report.errors) == 1 and len(report.warnings) == 1
    payload = json.loads(report.to_json())
    assert payload["clean"] is False
    assert payload["counts"][KIND_UNANNOTATED_RACE] == 1

    back = Report.from_json(report.to_json())
    assert back.findings == report.findings
    assert back.cells == report.cells
    assert back.lint_files == report.lint_files


def test_cli_sanitize_smoke(tmp_path, capsys):
    from repro.harness.cli import main

    out = tmp_path / "sanitize.json"
    rc = main([
        "sanitize", "--protocols", "MESI", "--jobs", "2",
        "--scale", "0.05", "--cores", "16", "--sanitize-out", str(out),
    ])
    assert rc == 0
    payload = json.loads(out.read_text())
    assert payload["clean"] is True
    assert payload["cells"]
    stdout = capsys.readouterr().out
    assert "dynamic cells clean" in stdout
