"""Unit tests for the DeNovoSync0 / DeNovoSync protocols."""

import pytest

from repro.config import config_16
from repro.mem.address import AddressMap
from repro.mem.l1 import DeNovoState
from repro.mem.regions import RegionAllocator
from repro.noc.messages import MessageClass
from repro.protocols.denovosync import DeNovoSyncProtocol
from repro.protocols.denovosync0 import DeNovoSync0Protocol


@pytest.fixture
def allocator():
    return RegionAllocator(AddressMap(config_16()))


@pytest.fixture
def proto(allocator):
    return DeNovoSync0Protocol(config_16(), allocator)


@pytest.fixture
def proto_ds(allocator):
    return DeNovoSyncProtocol(config_16(), allocator)


ADDR = 100


class TestDataLoads:
    def test_miss_fills_line_valid_words(self, proto):
        proto.load(0, ADDR)
        line = proto.amap.line_of(ADDR)
        for word in proto.amap.words_of_line(line):
            assert proto.l1s[0].state_of(word) is DeNovoState.VALID

    def test_hit_after_fill(self, proto):
        proto.load(0, ADDR)
        access = proto.load(0, ADDR)
        assert access.hit and access.latency == 1

    def test_remote_owner_serves_data_and_stays_registered(self, proto):
        proto.store(0, ADDR, 5)  # core 0 registers the word
        proto.set_time(1000)
        access = proto.load(1, ADDR)
        assert access.value == 5
        assert proto.registry[ADDR] == 0  # reads do not revoke
        assert proto.l1s[1].state_of(ADDR) is DeNovoState.VALID

    def test_remote_fetch_fills_owners_registered_words(self, proto):
        # Core 0 writes two words of the line; core 1's read of one should
        # bring both (the owner responds with its registered words).
        proto.store(0, ADDR, 5)
        proto.store(0, ADDR + 1, 6)
        proto.set_time(1000)
        proto.load(1, ADDR)
        assert proto.l1s[1].state_of(ADDR + 1) is DeNovoState.VALID

    def test_valid_hit_may_be_stale_until_self_invalidated(self, proto, allocator):
        region = allocator.region("shared")
        allocator._region_of_addr[ADDR] = region  # register addr's region
        proto.load(1, ADDR)  # fills Valid copy of value 0
        proto.set_time(500)
        proto.store(0, ADDR, 9)  # core 0 writes through registration
        proto.set_time(1000)
        assert proto.load(1, ADDR).value == 0  # stale Valid hit (legal: DRF)
        proto.self_invalidate(1, [region])
        assert proto.load(1, ADDR).value == 9  # fresh after self-invalidate


class TestDataStores:
    def test_store_is_non_blocking_and_registers(self, proto):
        access = proto.store(0, ADDR, 5)
        assert access.latency == 1
        assert proto.registry[ADDR] == 0
        assert proto.l1s[0].state_of(ADDR) is DeNovoState.REGISTERED
        assert proto.memory.read(ADDR) == 5

    def test_store_steals_registration_and_invalidates_prev(self, proto):
        proto.store(0, ADDR, 5)
        proto.set_time(1000)
        proto.store(1, ADDR, 6)
        assert proto.registry[ADDR] == 1
        assert proto.l1s[0].state_of(ADDR) is DeNovoState.INVALID

    def test_registered_store_hits_silently(self, proto):
        proto.store(0, ADDR, 5)
        before = proto.traffic.flit_crossings()
        access = proto.store(0, ADDR, 6)
        assert access.hit
        assert proto.traffic.flit_crossings() == before

    def test_store_aggregation_combines_line_burst(self, proto):
        proto.store(0, ADDR, 1)
        first = proto.traffic.flit_crossings(MessageClass.STORE)
        proto.set_time(10)
        proto.store(0, ADDR + 1, 2)  # same line, within the window
        assert proto.traffic.flit_crossings(MessageClass.STORE) == first
        assert proto.registry[ADDR + 1] == 0
        assert proto.counters.get("aggregated_store_registrations") == 1

    def test_store_aggregation_expires(self, proto):
        proto.store(0, ADDR, 1)
        first = proto.traffic.flit_crossings(MessageClass.STORE)
        proto.set_time(proto.STORE_AGGREGATION_WINDOW + 10)
        proto.store(0, ADDR + 1, 2)
        assert proto.traffic.flit_crossings(MessageClass.STORE) > first

    def test_store_aggregation_never_skips_steals(self, proto):
        proto.store(1, ADDR + 1, 9)  # word owned by another core
        proto.set_time(5)
        proto.store(0, ADDR, 1)
        proto.set_time(10)
        proto.store(0, ADDR + 1, 2)  # must take the full transfer path
        assert proto.l1s[1].state_of(ADDR + 1) is DeNovoState.INVALID
        assert proto.registry[ADDR + 1] == 0


class TestSyncLoads:
    def test_sync_read_registers(self, proto):
        access = proto.load(0, ADDR, sync=True)
        assert not access.hit
        assert proto.registry[ADDR] == 0
        assert proto.l1s[0].state_of(ADDR) is DeNovoState.REGISTERED
        assert proto.counters.get("sync_read_misses") == 1

    def test_sync_read_hit_only_when_registered(self, proto):
        proto.load(0, ADDR, sync=True)
        access = proto.load(0, ADDR, sync=True)
        assert access.hit
        assert proto.counters.get("sync_read_hits") == 1

    def test_sync_read_steals_and_downgrades_to_valid(self, proto):
        proto.load(0, ADDR, sync=True)
        proto.set_time(1000)
        proto.load(1, ADDR, sync=True)
        assert proto.registry[ADDR] == 1
        assert proto.l1s[0].state_of(ADDR) is DeNovoState.VALID
        assert proto.counters.get("read_registration_steals") == 1

    def test_sync_read_to_valid_misses_again(self, proto):
        proto.load(0, ADDR, sync=True)
        proto.set_time(1000)
        proto.load(1, ADDR, sync=True)  # steal: core 0 now Valid
        proto.set_time(2000)
        access = proto.load(0, ADDR, sync=True)  # Valid is not usable
        assert not access.hit

    def test_sync_read_sees_latest_write(self, proto):
        proto.store(0, ADDR, 7, sync=True)
        proto.set_time(1000)
        assert proto.load(1, ADDR, sync=True).value == 7

    def test_sync_traffic_classified_synch(self, proto):
        proto.load(0, ADDR, sync=True)
        assert proto.traffic.flit_crossings(MessageClass.SYNCH) > 0
        assert proto.traffic.flit_crossings(MessageClass.LOAD) == 0


class TestSyncStoresAndRmw:
    def test_sync_store_invalidates_prev(self, proto):
        proto.load(0, ADDR, sync=True)
        proto.set_time(1000)
        proto.store(1, ADDR, 3, sync=True)
        assert proto.l1s[0].state_of(ADDR) is DeNovoState.INVALID
        assert proto.registry[ADDR] == 1

    def test_rmw_returns_old_and_writes(self, proto):
        proto.store(0, ADDR, 10, sync=True)
        proto.set_time(100)
        access = proto.rmw(0, ADDR, lambda old: old + 5)
        assert access.value == 10
        assert proto.memory.read(ADDR) == 15

    def test_failed_cas_keeps_registration(self, proto):
        proto.set_time(100)
        access = proto.rmw(0, ADDR, lambda old: None)
        assert access.value == 0
        assert proto.registry[ADDR] == 0
        assert proto.l1s[0].state_of(ADDR) is DeNovoState.REGISTERED

    def test_rmw_hit_when_registered(self, proto):
        proto.rmw(0, ADDR, lambda old: 1)
        proto.set_time(10)
        access = proto.rmw(0, ADDR, lambda old: 2)
        assert access.hit and access.latency == 1


class TestRegistrationChain:
    def test_concurrent_registrations_serialize(self, proto):
        proto.load(0, ADDR, sync=True)
        proto.set_time(1000)
        first = proto.load(1, ADDR, sync=True)
        second = proto.load(2, ADDR, sync=True)  # same cycle: chains behind
        assert second.latency > first.latency
        assert proto.counters.get("registration_chain_waits") == 1

    def test_chain_drains_over_time(self, proto):
        proto.load(0, ADDR, sync=True)
        proto.set_time(1000)
        proto.load(1, ADDR, sync=True)
        proto.set_time(100000)
        access = proto.load(2, ADDR, sync=True)
        assert access.latency <= proto.config.remote_l1_latency.max


class TestSubscriptions:
    def test_subscribe_only_registered(self, proto):
        proto.load(0, ADDR)  # Valid, not Registered
        assert proto.subscribe_line_change(0, ADDR, lambda t: None) is False
        proto.load(0, ADDR, sync=True)
        assert proto.subscribe_line_change(0, ADDR, lambda t: None) is True

    def test_waiter_woken_by_steal(self, proto):
        proto.load(0, ADDR, sync=True)
        wakes = []
        proto.subscribe_line_change(0, ADDR, wakes.append)
        proto.set_time(1000)
        proto.load(1, ADDR, sync=True)
        assert len(wakes) == 1 and wakes[0] >= 1000

    def test_waiter_woken_by_write_steal(self, proto):
        proto.load(0, ADDR, sync=True)
        wakes = []
        proto.subscribe_line_change(0, ADDR, wakes.append)
        proto.set_time(1000)
        proto.store(1, ADDR, 1, sync=True)
        assert len(wakes) == 1


class TestEviction:
    def test_registered_eviction_returns_to_llc(self, proto):
        config = proto.config
        num_sets = config.l1_sets
        wpl = config.words_per_line
        lines = [i * num_sets + 1 for i in range(config.l1_assoc + 1)]
        for i, line in enumerate(lines):
            proto.set_time(i * 1000)
            proto.store(0, line * wpl, i)
        victim_addr = lines[0] * wpl
        assert victim_addr not in proto.registry
        assert proto.counters.get("writebacks") >= 1
        # The value survives at the LLC.
        proto.set_time(10**6)
        assert proto.load(1, victim_addr).value == 0


class TestDeNovoSyncBackoff:
    def test_no_backoff_for_invalid_word(self, proto_ds):
        assert proto_ds.sync_read_backoff(0, ADDR) == 0

    def test_backoff_armed_by_incoming_steal(self, proto_ds):
        proto_ds.load(0, ADDR, sync=True)
        proto_ds.set_time(1000)
        proto_ds.load(1, ADDR, sync=True)  # steals from core 0
        proto_ds.set_time(2000)
        stall = proto_ds.sync_read_backoff(0, ADDR)
        assert stall == proto_ds.config.backoff.default_increment
        assert proto_ds.counters.get("hw_backoff_events") == 1

    def test_write_steal_does_not_arm_backoff(self, proto_ds):
        proto_ds.load(0, ADDR, sync=True)
        proto_ds.set_time(1000)
        proto_ds.store(1, ADDR, 1, sync=True)  # write steal -> Invalid
        proto_ds.set_time(2000)
        assert proto_ds.sync_read_backoff(0, ADDR) == 0

    def test_registered_hit_resets_backoff(self, proto_ds):
        proto_ds.load(0, ADDR, sync=True)
        proto_ds.set_time(1000)
        proto_ds.load(1, ADDR, sync=True)
        proto_ds.set_time(2000)
        proto_ds.load(0, ADDR, sync=True)  # re-register
        proto_ds.load(0, ADDR, sync=True)  # hit: resets counter
        assert proto_ds.backoff_states[0].backoff == 0

    def test_ds0_never_backs_off(self, proto):
        proto.load(0, ADDR, sync=True)
        proto.set_time(1000)
        proto.load(1, ADDR, sync=True)
        proto.set_time(2000)
        assert proto.sync_read_backoff(0, ADDR) == 0
