"""Tests for the model-checking subsystem: controlled execution,
determinism, DPOR exploration, and corpus safety."""

import json

import pytest

from repro.mc import CORPUS, McOptions, ScheduleController, explore, run_schedule
from repro.mc.explorer import _naive_interleavings
from repro.mc.runner import ScheduleDivergence, StepInfo, dependent

MC_PROTOCOLS = ("MESI", "DeNovoSync0", "DeNovoSync")


class TestControlledExecution:
    def test_default_schedule_completes(self):
        execution = run_schedule(CORPUS["mp"], "MESI")
        assert execution.completed
        assert execution.ok
        assert len(execution.steps) == len(execution.schedule)
        # Every core that executed ops shows up in the counts.
        assert set(execution.op_counts) == {0, 1}

    def test_one_visible_op_per_step(self):
        execution = run_schedule(CORPUS["sb"], "DeNovoSync")
        for step in execution.steps:
            assert step.choice[0] == "core"
            # Each core step commits exactly one access record (spin
            # probes included — a probe is a sync load).
            assert len(step.records) == 1
            assert step.records[0].core == step.choice[1]

    def test_forced_prefix_is_respected(self):
        base = run_schedule(CORPUS["mp"], "MESI")
        replay = run_schedule(CORPUS["mp"], "MESI", forced=base.schedule)
        assert replay.schedule == base.schedule
        assert replay.completed

    def test_divergent_forced_choice_raises(self):
        with pytest.raises(ScheduleDivergence):
            run_schedule(CORPUS["mp"], "MESI", forced=[("core", 3)])

    def test_tolerant_replay_skips_disabled_choices(self):
        execution = run_schedule(
            CORPUS["mp"], "MESI", forced=[("core", 3)], tolerant=True
        )
        assert execution.completed
        assert execution.skipped_forced == 1

    def test_double_gate_rejected(self):
        controller = ScheduleController()

        class FakeCore:
            core_id = 0

        core = FakeCore()
        controller.arrive(core, None, lambda: None)
        with pytest.raises(RuntimeError, match="twice"):
            controller.arrive(core, None, lambda: None)


class TestDeterminism:
    """Satellite: the same decision sequence must give byte-identical
    observable output and final memory, for every protocol."""

    @pytest.mark.parametrize("protocol", MC_PROTOCOLS)
    def test_same_schedule_same_bytes(self, protocol):
        def fingerprint():
            execution = run_schedule(CORPUS["treiber"], protocol)
            trace_bytes = "\n".join(r.to_json() for r in execution.trace)
            memory_bytes = json.dumps(
                sorted(execution.final_memory.items())
            )
            counts_bytes = json.dumps(sorted(execution.op_counts.items()))
            return execution.schedule, trace_bytes, memory_bytes, counts_bytes

        first, second = fingerprint(), fingerprint()
        assert first == second

    @pytest.mark.parametrize("protocol", MC_PROTOCOLS)
    def test_forced_replay_reproduces_bytes(self, protocol):
        base = run_schedule(CORPUS["lock"], protocol)
        replay = run_schedule(CORPUS["lock"], protocol, forced=base.schedule)
        assert [r.to_json() for r in replay.trace] == [
            r.to_json() for r in base.trace
        ]
        assert replay.final_memory == base.final_memory


class TestDependence:
    def _info(self, core, lines, mutating):
        return StepInfo(
            actor=("core", core), core=core,
            lines=None if lines is None else frozenset(lines),
            mutating=mutating,
        )

    def test_same_core_always_dependent(self):
        a = self._info(0, {1}, False)
        b = self._info(0, {2}, False)
        assert dependent(a, b)

    def test_reads_commute(self):
        a = self._info(0, {1}, False)
        b = self._info(1, {1}, False)
        assert not dependent(a, b)

    def test_write_conflicts_with_read_on_same_line(self):
        a = self._info(0, {1}, True)
        b = self._info(1, {1}, False)
        assert dependent(a, b)

    def test_disjoint_lines_commute(self):
        a = self._info(0, {1}, True)
        b = self._info(1, {2}, True)
        assert not dependent(a, b)

    def test_flush_all_conflicts_with_any_write(self):
        a = self._info(0, None, False)
        b = self._info(1, {7}, True)
        assert dependent(a, b)


class TestExploration:
    def test_naive_estimate_is_multinomial(self):
        assert _naive_interleavings({0: 2, 1: 2}) == 6
        assert _naive_interleavings({0: 3}) == 1

    def test_mp_explores_clean_with_pruning(self):
        result = explore(CORPUS["mp"], "MESI", bound=2)
        assert result.violation is None
        assert not result.truncated
        assert result.executions >= 2  # both probe/store orders seen
        assert result.pruning_factor >= 5.0

    def test_bound_zero_is_subset_of_bound_two(self):
        small = explore(CORPUS["sb"], "DeNovoSync", bound=0)
        large = explore(CORPUS["sb"], "DeNovoSync", bound=2)
        assert small.violation is None and large.violation is None
        assert small.executions <= large.executions
        assert large.bound_pruned >= 0

    def test_exploration_is_deterministic(self):
        runs = [explore(CORPUS["cas"], "DeNovoSync0", bound=1) for _ in range(2)]
        assert runs[0].executions == runs[1].executions
        assert runs[0].sleep_cuts == runs[1].sleep_cuts
        assert runs[0].bound_pruned == runs[1].bound_pruned

    def test_max_schedules_truncates(self):
        options = McOptions(max_schedules=2)
        result = explore(CORPUS["lock"], "MESI", bound=2, options=options)
        assert result.truncated
        assert result.executions == 2


class TestCorpusSafety:
    """Acceptance: the whole corpus explores clean at preemption bound 2
    under all three protocols, with DPOR pruning >= 5x the naive
    interleaving count in every cell."""

    @pytest.mark.parametrize("protocol", MC_PROTOCOLS)
    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_cell_clean_and_pruned(self, name, protocol):
        result = explore(CORPUS[name], protocol, bound=2)
        assert result.violation is None, result.violation and result.violation.describe()
        assert not result.truncated
        assert result.pruning_factor >= 5.0
