"""End-to-end counterexample pipeline: find a real (re-introduced) bug,
minimize its schedule, export a replayable artifact, reproduce it."""

import pytest

from repro.harness.cli import main
from repro.mc import CORPUS, explore
from repro.mc.artifact import load_counterexample, replay_counterexample
from repro.mc.cells import McCell, run_cell
from repro.protocols.mesi import MesiProtocol, MesiState


def _broken_handle_victim(self, core_id, vline, vstate):
    """The PR-1 sleeping-waiter bug, re-introduced: eviction bookkeeping
    without the spin-waiter wake-up (no ``_notify_waiters`` call)."""
    ventry = self._entry(vline)
    if vstate in (MesiState.MODIFIED, MesiState.EXCLUSIVE):
        ventry.exclusive_owner = None
    else:
        ventry.sharers.discard(core_id)


@pytest.fixture
def broken_mesi(monkeypatch):
    monkeypatch.setattr(MesiProtocol, "_handle_victim", _broken_handle_victim)


class TestCounterexamplePipeline:
    def test_control_without_shim_is_clean(self):
        result = explore(CORPUS["mp+evict"], "MESI", bound=2)
        assert result.violation is None

    def test_shim_found_as_deadlock(self, broken_mesi):
        result = explore(CORPUS["mp+evict"], "MESI", bound=2)
        assert result.violation is not None
        assert result.violation.kind == "deadlock"
        # The counterexample needs the eviction environment action.
        assert any(c[0] == "evict" for c in result.violating_schedule)
        # The diagnostic dump names the stuck waiter.
        assert "WaitLoad" in result.violation.dump

    def test_minimized_and_replayable(self, broken_mesi, tmp_path):
        cell = McCell(
            test_name="mp+evict", protocol="MESI", bound=2,
            out_dir=str(tmp_path),
        )
        outcome = run_cell(cell)
        assert outcome.violation_kind == "deadlock"
        assert 0 < outcome.minimized_len <= outcome.schedule_len
        assert outcome.artifact_path is not None

        payload = load_counterexample(outcome.artifact_path)
        assert payload["test"] == "mp+evict"
        assert payload["violation"]["kind"] == "deadlock"
        assert payload["schedule"]  # non-empty list of tuples
        assert all(isinstance(c, tuple) for c in payload["schedule"])

        # Deterministic reproduction: same violation, identical trace.
        for _ in range(2):
            _, report = replay_counterexample(outcome.artifact_path)
            assert report.reproduced
            assert report.trace_identical

    def test_cli_replay_roundtrip(self, broken_mesi, tmp_path, capsys):
        outcome = run_cell(
            McCell(
                test_name="mp+evict", protocol="MESI", bound=2,
                out_dir=str(tmp_path),
            )
        )
        rc = main(["mc", "--replay", outcome.artifact_path])
        out = capsys.readouterr().out
        assert rc == 0
        assert "reproduced deterministically" in out

    def test_artifact_replay_fails_cleanly_when_bug_fixed(
        self, monkeypatch, tmp_path
    ):
        """An artifact recorded against the broken protocol must report
        non-reproduction (not crash) once the bug is fixed."""
        with monkeypatch.context() as patch:
            patch.setattr(
                MesiProtocol, "_handle_victim", _broken_handle_victim
            )
            outcome = run_cell(
                McCell(
                    test_name="mp+evict", protocol="MESI", bound=2,
                    out_dir=str(tmp_path),
                )
            )
        _, report = replay_counterexample(outcome.artifact_path)
        assert not report.reproduced


class TestMcCli:
    def test_mc_target_smoke(self, capsys):
        rc = main(
            [
                "mc", "--litmus", "mp", "--protocols", "MESI", "DeNovoSync",
                "--bound", "1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "2/2 cells clean" in out

    def test_mc_target_rejects_unknown_litmus(self):
        with pytest.raises(SystemExit, match="unknown litmus"):
            main(["mc", "--litmus", "nope"])

    def test_mc_target_reports_violation_exit_code(
        self, broken_mesi, tmp_path, capsys
    ):
        rc = main(
            [
                "mc", "--litmus", "mp+evict", "--protocols", "MESI",
                "--bound", "2", "--mc-out", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "VIOLATION [deadlock]" in out
        assert "artifact" in out
