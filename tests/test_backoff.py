"""Unit tests for the DeNovoSync hardware backoff counters."""

from repro.config import BackoffConfig
from repro.protocols.backoff import BackoffState


def make(bits=9, inc=1, period=16) -> BackoffState:
    return BackoffState(BackoffConfig(bits, inc, period))


class TestBackoffCounter:
    def test_starts_at_zero(self):
        assert make().stall_cycles(spinning=True) == 0

    def test_incoming_steal_bumps_by_increment(self):
        state = make()
        state.on_incoming_sync_read_steal()
        assert state.backoff == 1

    def test_wraps_on_overflow(self):
        state = make(bits=3, inc=3, period=100)
        for _ in range(3):
            state.on_incoming_sync_read_steal()
        assert state.backoff == (3 * 3) & 0b111  # 9 mod 8 = 1

    def test_hit_resets(self):
        state = make()
        state.on_incoming_sync_read_steal()
        state.on_registered_hit()
        assert state.backoff == 0

    def test_stall_consumes_counter(self):
        state = make()
        state.on_incoming_sync_read_steal()
        assert state.stall_cycles(spinning=True) == 1
        assert state.stall_cycles(spinning=True) == 0

    def test_rearms_after_consumption(self):
        state = make()
        state.on_incoming_sync_read_steal()
        state.stall_cycles(spinning=True)
        state.on_incoming_sync_read_steal()
        assert state.stall_cycles(spinning=True) == 1


class TestIncrementCounter:
    def test_grows_every_update_period(self):
        state = make(inc=2, period=4)
        for _ in range(3):
            state.on_incoming_sync_read_steal()
        assert state.increment == 2
        state.on_incoming_sync_read_steal()  # 4th steal
        assert state.increment == 4

    def test_release_resets_increment(self):
        state = make(inc=2, period=2)
        for _ in range(4):
            state.on_incoming_sync_read_steal()
        assert state.increment > 2
        state.on_release()
        assert state.increment == 2

    def test_increment_applies_to_backoff(self):
        state = make(inc=1, period=2)
        state.on_incoming_sync_read_steal()  # +1
        state.on_incoming_sync_read_steal()  # period hit: inc=2, +2
        assert state.backoff == 3


class TestEpisodeSuppression:
    def test_non_spinning_stall_once_per_episode(self):
        state = make()
        state.on_incoming_sync_read_steal()
        assert state.stall_cycles() == 1
        state.on_incoming_sync_read_steal()
        assert state.stall_cycles() == 0  # suppressed mid-episode

    def test_release_opens_new_episode(self):
        state = make()
        state.on_incoming_sync_read_steal()
        state.stall_cycles()
        state.on_release()
        state.on_incoming_sync_read_steal()
        assert state.stall_cycles() == 1

    def test_spinning_stalls_not_suppressed(self):
        state = make()
        state.on_incoming_sync_read_steal()
        state.stall_cycles()  # non-spinning, sets the episode flag
        state.on_incoming_sync_read_steal()
        assert state.stall_cycles(spinning=True) == 1

    def test_zero_stall_does_not_consume_episode(self):
        state = make()
        assert state.stall_cycles() == 0
        state.on_incoming_sync_read_steal()
        assert state.stall_cycles() == 1
