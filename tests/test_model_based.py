"""Model-based tests: the simulated data structures vs Python models.

Hypothesis drives random operation sequences through the concurrent
structures on a single simulated core (so a sequential Python model is
the exact oracle) under every protocol; any divergence in results or
structure contents is a bug in the structure implementation or the
protocol's value handling.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import config_for_cores
from repro.cpu.core import Core
from repro.cpu.thread import ThreadCtx
from repro.mem.address import AddressMap
from repro.mem.regions import RegionAllocator
from repro.protocols import make_protocol
from repro.sim.engine import Simulator

PROTOCOLS = ["MESI", "DeNovoSync0", "DeNovoSync", "DeNovoSyncSig", "MESI-RFO"]

ops_strategy = st.lists(
    st.tuples(st.sampled_from(["push", "pop"]), st.integers(1, 1000)),
    max_size=24,
)


def run_single_core(protocol_name, program_factory):
    """Run one program on core 0 of a 4-core system; return its results."""
    config = config_for_cores(4)
    allocator = RegionAllocator(AddressMap(config))
    protocol = make_protocol(protocol_name, config, allocator)
    sim = Simulator()
    core = Core(0, sim, protocol)
    ctx = ThreadCtx(
        core_id=0, num_cores=4, config=config, allocator=allocator,
        rng=random.Random(0),
    )
    results = []
    initial = {}

    program = program_factory(ctx, allocator, results, initial)
    for addr, value in initial.items():
        protocol.memory.write(addr, value)
    core.start(program)
    sim.run(max_events=2_000_000)
    assert core.done
    return results


class TestQueueAgainstModel:
    @settings(max_examples=20, deadline=None)
    @given(ops=ops_strategy, protocol=st.sampled_from(PROTOCOLS))
    def test_msqueue_matches_fifo_model(self, ops, protocol):
        from collections import deque

        from repro.synclib.msqueue import MichaelScottQueue

        def factory(ctx, allocator, results, initial):
            queue = MichaelScottQueue(
                allocator, nodes_per_thread=len(ops) + 1, nthreads=4,
                software_backoff=False,
            )
            initial.update(queue.initial_values())

            def program():
                for op, value in ops:
                    if op == "push":
                        yield from queue.enqueue(ctx, value)
                        results.append(("push", value))
                    else:
                        got = yield from queue.dequeue(ctx)
                        results.append(("pop", got))

            return program()

        results = run_single_core(protocol, factory)
        model = deque()
        for (op, observed), (wanted_op, value) in zip(results, ops):
            if wanted_op == "push":
                model.append(value)
            else:
                expected = model.popleft() if model else None
                assert observed == expected

    @settings(max_examples=20, deadline=None)
    @given(ops=ops_strategy, protocol=st.sampled_from(PROTOCOLS))
    def test_treiber_matches_lifo_model(self, ops, protocol):
        from repro.synclib.treiber import TreiberStack

        def factory(ctx, allocator, results, initial):
            stack = TreiberStack(
                allocator, nodes_per_thread=len(ops) + 1, nthreads=4,
                software_backoff=False,
            )

            def program():
                for op, value in ops:
                    if op == "push":
                        yield from stack.push(ctx, value)
                        results.append(("push", value))
                    else:
                        got = yield from stack.pop(ctx)
                        results.append(("pop", got))

            return program()

        results = run_single_core(protocol, factory)
        model = []
        for (op, observed), (wanted_op, value) in zip(results, ops):
            if wanted_op == "push":
                model.append(value)
            else:
                expected = model.pop() if model else None
                assert observed == expected

    @settings(max_examples=15, deadline=None)
    @given(ops=ops_strategy, protocol=st.sampled_from(PROTOCOLS))
    def test_herlihy_heap_matches_heapq_model(self, ops, protocol):
        import heapq

        from repro.synclib.herlihy import HerlihyHeap

        def factory(ctx, allocator, results, initial):
            heap = HerlihyHeap(
                allocator, capacity=len(ops) + 1, blocks_per_thread=len(ops) + 1,
                nthreads=4, software_backoff=False,
            )
            initial.update(heap.initial_values())

            def program():
                for op, value in ops:
                    if op == "push":
                        yield from heap.insert(ctx, value)
                        results.append(("push", value))
                    else:
                        got = yield from heap.extract_min(ctx)
                        results.append(("pop", got))

            return program()

        results = run_single_core(protocol, factory)
        model = []
        for (op, observed), (wanted_op, value) in zip(results, ops):
            if wanted_op == "push":
                heapq.heappush(model, value)
            else:
                expected = heapq.heappop(model) if model else None
                assert observed == expected


class TestLockedStructuresAgainstModel:
    @settings(max_examples=15, deadline=None)
    @given(ops=ops_strategy, protocol=st.sampled_from(PROTOCOLS))
    def test_locked_heap_matches_heapq_model(self, ops, protocol):
        import heapq

        from repro.synclib.locked_structures import LockedHeap
        from repro.synclib.tatas import TatasLock

        def factory(ctx, allocator, results, initial):
            lock = TatasLock(allocator)
            heap = LockedHeap(allocator, lock, capacity=len(ops) + 1)

            def program():
                for op, value in ops:
                    if op == "push":
                        yield from heap.insert(ctx, value)
                        results.append(("push", value))
                    else:
                        got = yield from heap.extract_min(ctx)
                        results.append(("pop", got))

            return program()

        results = run_single_core(protocol, factory)
        model = []
        for (op, observed), (wanted_op, value) in zip(results, ops):
            if wanted_op == "push":
                heapq.heappush(model, value)
            else:
                expected = heapq.heappop(model) if model else None
                assert observed == expected
