"""Tests for the protocol plugin registry: capability descriptors,
query helpers, the derived comparison sets the harness layers consume,
the backwards-compatible ``PROTOCOLS``/``PROTOCOL_LABELS`` views, and
``make_protocol``'s near-miss error path."""

import pytest

import repro.protocols as protocols_pkg
from repro.config import config_for_cores
from repro.mem.address import AddressMap
from repro.mem.regions import RegionAllocator
from repro.protocols import (
    PROTOCOL_LABELS,
    PROTOCOLS,
    make_protocol,
)
from repro.protocols.registry import (
    ProtocolInfo,
    app_comparison_set,
    chaos_comparison_set,
    default_comparison_set,
    get_info,
    iter_protocols,
    protocol_names,
    protocols_with,
    registry_markdown_table,
    registry_table,
)


class TestDescriptors:
    def test_every_backend_is_registered(self):
        names = protocol_names()
        assert set(names) >= {
            "MESI", "DeNovoSync0", "DeNovoSync", "DeNovoSyncSig",
            "MESI-RFO", "Neat", "SynCron",
        }
        # MESI registers first: it is the figures' baseline column.
        assert names[0] == "MESI"

    def test_info_fields(self):
        info = get_info("DeNovoSync")
        assert isinstance(info, ProtocolInfo)
        assert info.label == "DS"
        assert info.tracking == "registry"
        assert info.invalidation == "self"
        assert info.backoff == "adaptive"
        assert info.requires_annotations
        assert info.cls is PROTOCOLS["DeNovoSync"]

    def test_capability_vocabulary_is_validated(self):
        from repro.protocols.registry import register_protocol

        with pytest.raises(ValueError, match="tracking"):
            register_protocol(
                name="Bogus", label="B", paper="-", summary="-",
                tracking="psychic", invalidation="self",
            )(type("Bogus", (), {}))

    def test_descriptor_class_matches_instantiated_protocol(self):
        config = config_for_cores(4)
        allocator = RegionAllocator(AddressMap(config))
        for info in iter_protocols():
            protocol = make_protocol(info.name, config, allocator)
            assert type(protocol) is info.cls
            assert protocol.name == info.name


class TestCapabilityQueries:
    def test_protocols_with_matches_attribute_equality(self):
        assert set(protocols_with(invalidation="writer")) == {
            "MESI", "MESI-RFO",
        }
        assert protocols_with(backoff="adaptive") == (
            "DeNovoSync", "DeNovoSyncSig",
        )

    def test_unknown_capability_field_raises(self):
        with pytest.raises(TypeError, match="no capability field"):
            protocols_with(quantum=True)

    def test_default_comparison_set(self):
        assert default_comparison_set() == (
            "MESI", "DeNovoSync0", "DeNovoSync", "Neat", "SynCron",
        )

    def test_app_comparison_set(self):
        assert app_comparison_set() == (
            "MESI", "DeNovoSync", "Neat", "SynCron",
        )

    def test_chaos_filter_picks_exactly_the_advertised_protocols(self):
        """The chaos sweep must select exactly the default-set backends
        advertising fault hooks + runtime invariants — no hard-coding."""
        from repro.harness.chaos import CHAOS_PROTOCOLS

        expected = tuple(
            info.name
            for info in iter_protocols()
            if info.default_comparison
            and info.fault_hooks
            and info.runtime_invariants
        )
        assert chaos_comparison_set() == expected
        assert CHAOS_PROTOCOLS == expected

    def test_sanitize_filter_picks_exactly_the_self_invalidators(self):
        from repro.protocols.registry import sanitize_comparison_set

        expected = tuple(
            info.name
            for info in iter_protocols()
            if info.invalidation == "self"
        )
        assert sanitize_comparison_set() == expected
        assert "MESI" not in expected  # writer-initiated: no stale oracle

    def test_experiment_defaults_derive_from_registry(self):
        from repro.harness.experiments import APP_PROTOCOLS, KERNEL_PROTOCOLS

        assert KERNEL_PROTOCOLS == default_comparison_set()
        assert APP_PROTOCOLS == app_comparison_set()


class TestBackCompatViews:
    def test_protocols_view_is_a_mapping_of_classes(self):
        assert list(PROTOCOLS) == list(protocol_names())
        assert len(PROTOCOLS) == len(protocol_names())
        assert PROTOCOLS["MESI"] is protocols_pkg.MesiProtocol
        assert "Neat" in PROTOCOLS
        assert "MOESI" not in PROTOCOLS
        with pytest.raises(KeyError):
            PROTOCOLS["MOESI"]

    def test_labels_view(self):
        assert PROTOCOL_LABELS["DeNovoSync0"] == "DS0"
        assert PROTOCOL_LABELS.get("nope", "nope") == "nope"
        assert dict(PROTOCOL_LABELS)["SynCron"] == "SynC"

    def test_labels_are_unique(self):
        labels = list(PROTOCOL_LABELS.values())
        assert len(labels) == len(set(labels))


class TestMakeProtocolErrors:
    def test_case_insensitive_near_miss(self):
        with pytest.raises(ValueError) as excinfo:
            make_protocol("mesi", config_for_cores(4))
        message = str(excinfo.value)
        assert "unknown protocol 'mesi'" in message
        assert "did you mean 'MESI'?" in message

    def test_close_match_suggestion(self):
        with pytest.raises(ValueError) as excinfo:
            make_protocol("DeNovoSink", config_for_cores(4))
        assert "did you mean" in str(excinfo.value)
        assert "DeNovoSync" in str(excinfo.value)

    def test_no_suggestion_for_garbage(self):
        with pytest.raises(ValueError) as excinfo:
            make_protocol("zzzzqqqq", config_for_cores(4))
        message = str(excinfo.value)
        assert "expected one of" in message
        assert "did you mean" not in message


class TestPresentation:
    def test_text_table_has_one_row_per_protocol(self):
        table = registry_table()
        for name in protocol_names():
            assert name in table

    def test_markdown_table_is_embedded_in_docs(self):
        """The satellite CI check, enforced in-suite too: README and
        architecture docs embed the generated table verbatim."""
        import os

        table = registry_markdown_table()
        root = os.path.join(os.path.dirname(__file__), "..")
        for doc in ("README.md", os.path.join("docs", "architecture.md")):
            with open(os.path.join(root, doc)) as fh:
                assert table in fh.read(), f"{doc} protocol table is stale"

    def test_protocols_cli_target(self, capsys):
        from repro.harness.cli import main as cli_main

        assert cli_main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "SynCron" in out and "dirty-set" in out

    def test_protocols_cli_check_doc_detects_drift(self, tmp_path, capsys):
        from repro.harness.cli import main as cli_main

        stale = tmp_path / "stale.md"
        stale.write_text("# no table here\n")
        fresh = tmp_path / "fresh.md"
        fresh.write_text("intro\n\n" + registry_markdown_table() + "\n")
        assert cli_main(["protocols", "--check-doc", str(fresh)]) == 0
        assert cli_main(["protocols", "--check-doc", str(stale)]) == 1
