"""Correctness tests for the non-blocking data structures.

Linearizability-level checks done the concrete way: all values pushed by
all threads are popped exactly once; FIFO/LIFO order holds per producer;
the heap always returns current minima; FAI tickets are unique.
"""

import pytest

from repro.cpu.isa import Compute
from repro.synclib.counters import FaiCounter
from repro.synclib.herlihy import HerlihyHeap, HerlihyStack
from repro.synclib.msqueue import MichaelScottQueue
from repro.synclib.pljqueue import PLJQueue
from repro.synclib.treiber import TreiberStack

NUM_CORES = 9  # core counts must be perfect squares (2D mesh)
OPS = 6


def value_of(core_id, i):
    """Globally unique, per-thread-increasing values (and positive)."""
    return core_id * 1000 + i + 1


class TestMichaelScottQueue:
    def test_all_values_transit_exactly_once(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, NUM_CORES)
        queue = MichaelScottQueue(machine.allocator, OPS, NUM_CORES)
        machine.initial_values = queue.initial_values()
        popped = []

        def program(ctx):
            for i in range(OPS):
                yield Compute(ctx.rng.randrange(10, 500))
                yield from queue.enqueue(ctx, value_of(ctx.core_id, i))
                value = yield from queue.dequeue(ctx)
                if value is not None:
                    popped.append(value)

        machine.run([program(machine.ctx(i)) for i in range(NUM_CORES)])
        expected = {value_of(c, i) for c in range(NUM_CORES) for i in range(OPS)}
        assert sorted(popped) == sorted(expected)

    def test_fifo_per_producer(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, 4)
        queue = MichaelScottQueue(machine.allocator, OPS, 4)
        machine.initial_values = queue.initial_values()
        popped = []

        def producer(ctx):
            for i in range(OPS):
                yield from queue.enqueue(ctx, value_of(ctx.core_id, i))
                yield Compute(ctx.rng.randrange(10, 200))

        def consumer(ctx):
            got = 0
            while got < 2 * OPS:
                value = yield from queue.dequeue(ctx)
                if value is None:
                    yield Compute(200)
                else:
                    popped.append(value)
                    got += 1

        machine.run(
            [producer(machine.ctx(0)), producer(machine.ctx(1)), consumer(machine.ctx(2))]
        )
        for core in (0, 1):
            mine = [v for v in popped if v // 1000 == core]
            assert mine == sorted(mine)

    def test_dequeue_empty_returns_none(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, 4)
        queue = MichaelScottQueue(machine.allocator, 2, 4)
        machine.initial_values = queue.initial_values()
        results = []

        def program(ctx):
            results.append((yield from queue.dequeue(ctx)))

        machine.run([program(machine.ctx(0))])
        assert results == [None]


class TestPLJQueue:
    def test_all_values_transit_exactly_once(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, NUM_CORES)
        queue = PLJQueue(machine.allocator, total_ops=NUM_CORES * OPS)
        popped = []

        def program(ctx):
            for i in range(OPS):
                yield Compute(ctx.rng.randrange(10, 500))
                yield from queue.enqueue(ctx, value_of(ctx.core_id, i))
                value = yield from queue.dequeue(ctx)
                if value is not None:
                    popped.append(value)

        machine.run([program(machine.ctx(i)) for i in range(NUM_CORES)])
        expected = {value_of(c, i) for c in range(NUM_CORES) for i in range(OPS)}
        assert sorted(popped) == sorted(expected)

    def test_rejects_non_positive_values(self, machine_factory):
        machine = machine_factory("MESI", 4)
        queue = PLJQueue(machine.allocator, total_ops=4)

        def program(ctx):
            yield from queue.enqueue(ctx, 0)

        with pytest.raises(ValueError):
            machine.run([program(machine.ctx(0))])


class TestTreiberStack:
    def test_all_values_pop_exactly_once(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, NUM_CORES)
        stack = TreiberStack(machine.allocator, OPS, NUM_CORES)
        popped = []

        def program(ctx):
            for i in range(OPS):
                yield Compute(ctx.rng.randrange(10, 500))
                yield from stack.push(ctx, value_of(ctx.core_id, i))
                value = yield from stack.pop(ctx)
                if value is not None:
                    popped.append(value)

        machine.run([program(machine.ctx(i)) for i in range(NUM_CORES)])
        expected = {value_of(c, i) for c in range(NUM_CORES) for i in range(OPS)}
        assert sorted(popped) == sorted(expected)

    def test_pop_empty_returns_none(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, 4)
        stack = TreiberStack(machine.allocator, 2, 4)
        results = []

        def program(ctx):
            results.append((yield from stack.pop(ctx)))

        machine.run([program(machine.ctx(0))])
        assert results == [None]

    def test_single_thread_lifo(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, 4)
        stack = TreiberStack(machine.allocator, 4, 4)
        popped = []

        def program(ctx):
            for i in range(3):
                yield from stack.push(ctx, i + 1)
            for _ in range(3):
                popped.append((yield from stack.pop(ctx)))

        machine.run([program(machine.ctx(0))])
        assert popped == [3, 2, 1]


@pytest.mark.parametrize("reduced_checks", [False, True])
class TestHerlihyStack:
    def test_all_values_pop_exactly_once(
        self, protocol_name, machine_factory, reduced_checks
    ):
        machine = machine_factory(protocol_name, 4)
        stack = HerlihyStack(
            machine.allocator,
            capacity=32,
            blocks_per_thread=2 * OPS + 1,
            nthreads=4,
            reduced_checks=reduced_checks,
        )
        machine.initial_values = stack.initial_values()
        popped = []

        def program(ctx):
            for i in range(OPS):
                yield Compute(ctx.rng.randrange(10, 500))
                yield from stack.push(ctx, value_of(ctx.core_id, i))
                value = yield from stack.pop(ctx)
                if value is not None:
                    popped.append(value)

        machine.run([program(machine.ctx(i)) for i in range(4)])
        expected = {value_of(c, i) for c in range(4) for i in range(OPS)}
        assert sorted(popped) == sorted(expected)


class TestHerlihyHeap:
    def test_extracts_are_minima(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, 4)
        heap = HerlihyHeap(
            machine.allocator,
            capacity=32,
            blocks_per_thread=2 * OPS + 1,
            nthreads=4,
        )
        machine.initial_values = heap.initial_values()
        extracted = []

        def program(ctx):
            for i in range(OPS):
                yield Compute(ctx.rng.randrange(10, 500))
                yield from heap.insert(ctx, value_of(ctx.core_id, i))
                value = yield from heap.extract_min(ctx)
                if value is not None:
                    extracted.append(value)

        machine.run([program(machine.ctx(i)) for i in range(4)])
        expected = {value_of(c, i) for c in range(4) for i in range(OPS)}
        assert sorted(extracted) == sorted(expected)

    def test_single_thread_heap_order(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, 4)
        heap = HerlihyHeap(
            machine.allocator, capacity=16, blocks_per_thread=20, nthreads=4
        )
        machine.initial_values = heap.initial_values()
        out = []

        def program(ctx):
            for value in (5, 3, 9, 1):
                yield from heap.insert(ctx, value)
            for _ in range(4):
                out.append((yield from heap.extract_min(ctx)))

        machine.run([program(machine.ctx(0))])
        assert out == [1, 3, 5, 9]


class TestFaiCounter:
    def test_tickets_unique_and_dense(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, NUM_CORES)
        counter = FaiCounter(machine.allocator)
        tickets = []

        def program(ctx):
            for _ in range(OPS):
                yield Compute(ctx.rng.randrange(1, 100))
                ticket = yield from counter.increment(ctx)
                tickets.append(ticket)

        machine.run([program(machine.ctx(i)) for i in range(NUM_CORES)])
        assert sorted(tickets) == list(range(NUM_CORES * OPS))
