"""Edge-case coverage for degenerate system sizes (1 and 4 cores)."""

import pytest

from repro.config import config_for_cores
from repro.harness.runner import run_workload
from repro.noc.mesh import Mesh
from repro.protocols import PROTOCOLS
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel


class TestOneCoreSystem:
    def test_config(self):
        config = config_for_cores(1)
        assert config.mesh_side == 1
        assert config.max_hops == 0

    def test_mesh_degenerates_gracefully(self):
        config = config_for_cores(1)
        mesh = Mesh(config)
        assert mesh.hops(0, 0) == 0
        assert mesh.per_hop_cycles() == 0.0
        assert mesh.l2_access_latency(0, 0) == config.l2_hit_latency.min
        assert mesh.nearest_controller(0) == 0
        assert mesh.invalidation_round_trip(0, 0) == config.tuning.inv_processing

    @pytest.mark.parametrize("protocol", list(PROTOCOLS))
    def test_kernel_runs_on_one_core(self, protocol):
        workload = make_kernel("tatas", "counter", spec=KernelSpec(iterations=3))
        result = run_workload(
            workload, protocol, config_for_cores(1), seed=1, keep_protocol=True
        )
        assert result.meta["protocol"].memory.read(workload.counter.addr) == 3
        # Nothing crosses a link in a one-tile mesh.
        assert result.total_traffic == 0

    @pytest.mark.parametrize("protocol", list(PROTOCOLS))
    def test_barrier_on_one_core(self, protocol):
        workload = make_kernel("barrier", "central", spec=KernelSpec(iterations=2))
        result = run_workload(workload, protocol, config_for_cores(1), seed=1)
        assert result.cycles > 0


class TestFourCoreSystem:
    @pytest.mark.parametrize(
        "figure,name",
        [("tatas", "counter"), ("nonblocking", "Treiber stack"), ("barrier", "tree")],
    )
    def test_kernels_run(self, figure, name):
        workload = make_kernel(figure, name, spec=KernelSpec(iterations=3))
        result = run_workload(workload, "DeNovoSync", config_for_cores(4), seed=1)
        assert result.cycles > 0

    def test_controllers_on_2x2_mesh(self):
        mesh = Mesh(config_for_cores(4))
        assert mesh._controller_tiles == (0, 1, 2, 3)
