"""Reproduction-shape regression tests.

These assert the *qualitative* results of the paper's evaluation at small
scale — who wins, in which direction, for which synchronization pattern.
They are the repository's contract that the reproduction keeps
reproducing; EXPERIMENTS.md records the corresponding quantitative runs.

Thresholds are deliberately loose: shapes must hold, exact ratios may
drift with scale and seed.
"""

import pytest

from repro.config import config_for_cores
from repro.harness.experiments import (
    run_selfinv_ablation,
    run_sw_backoff_ablation,
)
from repro.harness.runner import run_workload
from repro.workloads.apps import make_app
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel

SCALE = 0.05


def run(figure, name, protocol, cores=16, seed=1, **kwargs):
    workload = make_kernel(figure, name, spec=KernelSpec(scale=SCALE), **kwargs)
    return run_workload(workload, protocol, config_for_cores(cores), seed=seed)


class TestFigure3Shapes:
    """TATAS kernels: DeNovo comparable or better, big traffic savings."""

    @pytest.mark.parametrize("name", ["single Q", "stack", "counter"])
    def test_denovosync_beats_mesi_on_small_cs_kernels(self, name):
        mesi = run("tatas", name, "MESI")
        denovo = run("tatas", name, "DeNovoSync")
        assert denovo.cycles < mesi.cycles
        assert denovo.total_traffic < mesi.total_traffic

    def test_gap_grows_with_core_count(self):
        ratios = {}
        for cores in (16, 64):
            mesi = run("tatas", "counter", "MESI", cores=cores)
            denovo = run("tatas", "counter", "DeNovoSync0", cores=cores)
            ratios[cores] = denovo.cycles / mesi.cycles
        assert ratios[64] < ratios[16]

    def test_mesi_invalidation_traffic_present(self):
        mesi = run("tatas", "counter", "MESI")
        assert mesi.traffic_breakdown()["Inv"] > 0

    def test_denovo_has_no_invalidation_traffic(self):
        for protocol in ("DeNovoSync0", "DeNovoSync"):
            result = run("tatas", "counter", protocol)
            assert result.traffic_breakdown()["Inv"] == 0
            assert result.traffic_breakdown()["SYNCH"] > 0


class TestFigure4Shapes:
    """Array locks: DS == DS0 (no spurious registrations to back off)."""

    @pytest.mark.parametrize("name", ["single Q", "counter"])
    def test_backoff_changes_nothing_for_array_locks(self, name):
        from repro.stats.timeparts import TimeComponent

        ds0 = run("array", name, "DeNovoSync0")
        ds = run("array", name, "DeNovoSync")
        assert abs(ds.cycles - ds0.cycles) / ds0.cycles < 0.05
        # Negligible backoff time: single waiter per flag, nothing to delay.
        assert ds.component_cycles(TimeComponent.HW_BACKOFF) < 0.005 * ds.cycles

    def test_denovo_saves_traffic_on_array_locks(self):
        mesi = run("array", "counter", "MESI")
        denovo = run("array", "counter", "DeNovoSync")
        assert denovo.total_traffic < 0.6 * mesi.total_traffic

    def test_heap_is_denovos_weak_spot(self):
        """Conservative region self-invalidation hurts heap under array
        locks (paper: 6-7% worse); allow anything up to 'not much better'."""
        mesi = run("array", "heap", "MESI")
        denovo = run("array", "heap", "DeNovoSync")
        others = run("array", "counter", "DeNovoSync").cycles / run(
            "array", "counter", "MESI"
        ).cycles
        heap_ratio = denovo.cycles / mesi.cycles
        assert heap_ratio > others  # heap is relatively worse for DeNovo


class TestFigure5Shapes:
    """Non-blocking kernels: read-heavy CAS loops hurt DeNovo; single-
    hot-word structures favour it; traffic is always lower."""

    def test_ms_queue_prelinearization_cost(self):
        mesi = run("nonblocking", "M-S queue", "MESI", cores=64)
        ds0 = run("nonblocking", "M-S queue", "DeNovoSync0", cores=64)
        assert ds0.counters.get("read_registration_steals") > 0
        assert ds0.cycles > 0.9 * mesi.cycles  # comparable-to-worse

    def test_treiber_favours_denovo_at_scale(self):
        mesi = run("nonblocking", "Treiber stack", "MESI", cores=64)
        ds = run("nonblocking", "Treiber stack", "DeNovoSync", cores=64)
        assert ds.cycles < mesi.cycles

    @pytest.mark.parametrize(
        "name", ["M-S queue", "Treiber stack", "Herlihy stack", "FAI counter"]
    )
    def test_traffic_always_lower(self, name):
        mesi = run("nonblocking", name, "MESI")
        ds = run("nonblocking", name, "DeNovoSync")
        assert ds.total_traffic < mesi.total_traffic


class TestFigure6Shapes:
    """Barriers: tree barriers tie on time with big traffic savings; the
    centralized barrier is DeNovo's traffic-unfriendly pattern."""

    @pytest.mark.parametrize("name", ["tree", "n-ary"])
    def test_tree_barriers_comparable_time(self, name):
        mesi = run("barrier", name, "MESI")
        ds = run("barrier", name, "DeNovoSync")
        assert abs(ds.cycles - mesi.cycles) / mesi.cycles < 0.15

    @pytest.mark.parametrize("name", ["tree", "n-ary"])
    def test_tree_barriers_big_traffic_savings(self, name):
        mesi = run("barrier", name, "MESI")
        ds = run("barrier", name, "DeNovoSync")
        assert ds.total_traffic < 0.6 * mesi.total_traffic

    def test_central_barrier_relative_traffic_worse_than_tree(self):
        tree_ratio = (
            run("barrier", "tree", "DeNovoSync0").total_traffic
            / run("barrier", "tree", "MESI").total_traffic
        )
        central_ratio = (
            run("barrier", "central", "DeNovoSync0").total_traffic
            / run("barrier", "central", "MESI").total_traffic
        )
        assert central_ratio > tree_ratio

    def test_tree_barriers_scale_better_in_traffic(self):
        """The paper's scalability point, asserted on traffic (our timing
        model rates the centralized barrier slightly cheaper in absolute
        cycles at small scale — a documented deviation): the per-episode
        network cost of the centralized barrier grows much faster with
        core count than the tree's."""
        tree = run("barrier", "tree", "DeNovoSync", cores=64)
        central = run("barrier", "central", "DeNovoSync", cores=64)
        # Under DeNovo the centralized departure serializes read
        # registrations over one word: more traffic than the whole tree.
        assert tree.total_traffic < central.total_traffic
        # ... and absolute times stay in the same ballpark.
        assert tree.cycles <= central.cycles * 1.6


class TestFigure7Shapes:
    """Applications: comparable time, lower traffic; the paper's named
    outliers point the right way."""

    def test_lu_false_sharing_favours_denovo(self):
        config = config_for_cores(64)
        mesi = run_workload(make_app("LU", scale=0.25), "MESI", config, seed=2)
        ds = run_workload(make_app("LU", scale=0.25), "DeNovoSync", config, seed=2)
        assert ds.cycles < mesi.cycles

    def test_fluidanimate_conservative_selfinv_hurts_denovo(self):
        config = config_for_cores(64)
        mesi = run_workload(make_app("fluidanimate", scale=0.5), "MESI", config, seed=2)
        ds = run_workload(
            make_app("fluidanimate", scale=0.5), "DeNovoSync", config, seed=2
        )
        assert ds.cycles > 0.95 * mesi.cycles  # comparable-to-worse
        # The mechanism: DeNovo invalidated (and re-missed) far more data.
        assert ds.counters.get("self_invalidated_words") > 0

    @pytest.mark.parametrize("name", ["blackscholes", "radix", "canneal", "ferret"])
    def test_traffic_lower_across_patterns(self, name):
        from repro.workloads.apps import app_core_count

        config = config_for_cores(app_core_count(name))
        mesi = run_workload(make_app(name, scale=0.15), "MESI", config, seed=2)
        ds = run_workload(make_app(name, scale=0.15), "DeNovoSync", config, seed=2)
        assert ds.total_traffic < mesi.total_traffic


class TestAblationShapes:
    def test_sw_backoff_cuts_denovo_false_races(self):
        """Section 7.1.1's mechanism: software backoff spaces failed
        synchronization reads, slashing DeNovo's false-race registration
        steals and improving its absolute time.  (In our model MESI also
        benefits — see the deviation note in EXPERIMENTS.md — so we assert
        the mechanism, not the relative-gap change.)"""
        results = run_sw_backoff_ablation(cores=64, scale=SCALE)

        def ds0_stat(figure_result, fn):
            return sum(fn(r.results["DeNovoSync0"]) for r in figure_result.rows)

        def steals(res):
            return res.counters.get("read_registration_steals")
        assert ds0_stat(results["sw backoff"], steals) < ds0_stat(
            results["no backoff"], steals
        )

    def test_flush_all_selfinv_never_helps(self):
        results = run_selfinv_ablation(app="water", scale=0.15)
        selective = results["selective regions"].rows[0].rel_time("DeNovoSync")
        flush = results["flush-all"].rows[0].rel_time("DeNovoSync")
        assert flush >= selective * 0.95
