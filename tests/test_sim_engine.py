"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(30, lambda: fired.append(30))
        sim.schedule_at(10, lambda: fired.append(10))
        sim.schedule_at(20, lambda: fired.append(20))
        sim.run()
        assert fired == [10, 20, 30]

    def test_same_cycle_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.schedule_at(7, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_schedule_after_is_relative(self):
        sim = Simulator()
        times = []
        sim.schedule_at(5, lambda: sim.schedule_after(10, lambda: times.append(sim.now)))
        sim.run()
        assert times == [15]

    def test_now_tracks_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]
        assert sim.now == 42

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule_at(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule_after(-1, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_at(10, lambda: fired.append("no"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        event = sim.schedule_at(10, lambda: None)
        sim.schedule_at(20, lambda: None)
        assert sim.pending_events == 2
        event.cancel()
        assert sim.pending_events == 1


class TestPendingEventsCounter:
    """``pending_events`` is a live counter (O(1)), with heap compaction
    once cancelled events dominate the queue."""

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule_at(10, lambda: None)
        sim.schedule_at(20, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending_events == 1

    def test_counter_tracks_fired_events(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule_at(t, lambda: None)
        assert sim.pending_events == 5
        sim.run()
        assert sim.pending_events == 0

    def test_counter_with_mixed_cancel_and_fire(self):
        sim = Simulator()
        events = [sim.schedule_at(t, lambda: None) for t in range(10)]
        for event in events[::2]:
            event.cancel()
        assert sim.pending_events == 5
        sim.run()
        assert sim.pending_events == 0

    def test_compaction_shrinks_queue(self):
        sim = Simulator()
        keep = sim.schedule_at(1000, lambda: None)
        doomed = [
            sim.schedule_at(10 + t, lambda: None)
            for t in range(sim.COMPACT_MIN_SIZE * 2)
        ]
        for event in doomed:
            event.cancel()
        # Cancelled events dominate: compaction must have kept the queue
        # from retaining every tombstone (it shrinks whenever live
        # entries fall below half of a COMPACT_MIN_SIZE-or-larger side).
        assert sim.pending_events == 1
        assert sim._retained_entries() < sim.COMPACT_MIN_SIZE
        assert not keep.cancelled
        fired = []
        sim.schedule_at(1001, lambda: fired.append(1))
        sim.run()
        assert fired == [1]

    def test_compaction_shrinks_far_future_heap(self):
        # Same storm, but beyond the wheel window so it lands in the
        # overflow heap.
        sim = Simulator()
        far = sim.WHEEL_SIZE * 4
        keep = sim.schedule_at(far + 5000, lambda: None)
        doomed = [
            sim.schedule_at(far + t, lambda: None)
            for t in range(sim.COMPACT_MIN_SIZE * 2)
        ]
        for event in doomed:
            event.cancel()
        assert sim.pending_events == 1
        assert sim._retained_entries() < sim.COMPACT_MIN_SIZE
        assert not keep.cancelled
        fired = []
        sim.schedule_at(far + 5001, lambda: fired.append(1))
        sim.run()
        assert fired == [1]

    def test_small_queues_are_not_compacted(self):
        sim = Simulator()
        events = [sim.schedule_at(10 + t, lambda: None) for t in range(4)]
        for event in events[:3]:
            event.cancel()
        # Below COMPACT_MIN_SIZE the tombstones stay (compaction would
        # cost more than it saves) but the counter is still exact.
        assert sim.pending_events == 1
        assert sim._retained_entries() == 4


class TestRunLimits:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(10, lambda: fired.append(10))
        sim.schedule_at(100, lambda: fired.append(100))
        sim.run(until=50)
        assert fired == [10]
        sim.run()
        assert fired == [10, 100]

    def test_until_advances_clock(self):
        # run(until=t) must leave now == t, not at the last fired event,
        # so a subsequent schedule_at(t - k) is rejected as in-the-past.
        sim = Simulator()
        sim.schedule_at(10, lambda: None)
        sim.schedule_at(100, lambda: None)
        sim.run(until=50)
        assert sim.now == 50
        with pytest.raises(ValueError):
            sim.schedule_at(40, lambda: None)

    def test_until_advances_clock_on_empty_queue(self):
        sim = Simulator()
        assert sim.run(until=30) == 0
        assert sim.now == 30

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(50, lambda: fired.append(50))
        sim.schedule_at(51, lambda: fired.append(51))
        sim.run(until=50)
        assert fired == [50]
        assert sim.now == 50

    def test_stale_until_does_not_rewind_clock(self):
        sim = Simulator()
        sim.schedule_at(40, lambda: None)
        sim.run()
        assert sim.now == 40
        sim.run(until=10)
        assert sim.now == 40

    def test_until_then_resume_is_seamless(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(10, lambda: fired.append(10))
        sim.schedule_at(100, lambda: fired.append(100))
        sim.run(until=50)
        sim.schedule_at(60, lambda: fired.append(60))
        sim.run()
        assert fired == [10, 60, 100]

    def test_max_events_raises(self):
        sim = Simulator()

        def reschedule():
            sim.schedule_after(1, reschedule)

        sim.schedule_at(0, reschedule)
        with pytest.raises(RuntimeError, match="max_events"):
            sim.run(max_events=100)

    def test_max_events_fires_exactly_that_many(self):
        sim = Simulator()
        fired = []
        for t in range(5):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        with pytest.raises(RuntimeError, match="max_events"):
            sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_max_events_does_not_advance_clock_to_until(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule_at(t, lambda: None)
        with pytest.raises(RuntimeError, match="max_events"):
            sim.run(until=100, max_events=2)
        assert sim.now == 1  # last fired event, not until

    def test_max_events_zero_with_pending_events_raises(self):
        sim = Simulator()
        sim.schedule_at(10, lambda: None)
        with pytest.raises(RuntimeError, match="max_events"):
            sim.run(max_events=0)

    def test_run_returns_event_count(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule_at(t, lambda: None)
        assert sim.run() == 5

    def test_step_on_empty_queue(self):
        assert Simulator().step() is False
