"""Liveness watchdog tests: hang detection, dumps, event attribution.

The centerpiece is the PR-1 regression: re-introduce the MESI
sleeping-waiter bug (eviction of a subscribed spin-waiter's copy without
waking it) behind a test shim, force the eviction with a scripted fault,
and assert the watchdog converts the silent hang into a
:class:`SimulationStuck` whose dump names the blocked core, its pending
op, and the contested line's directory state.
"""

import pytest

from repro.config import config_for_cores
from repro.cpu.isa import Compute, Store, WaitLoad
from repro.harness.runner import run_workload
from repro.mem.address import AddressMap
from repro.mem.l1 import MesiState
from repro.mem.regions import RegionAllocator
from repro.noc.faults import FaultPlan
from repro.protocols.mesi import MesiProtocol
from repro.sim.engine import Simulator
from repro.sim.watchdog import HangError, SimulationStuck, Watchdog
from repro.workloads.base import Workload, WorkloadInstance


class FlagHandoff(Workload):
    """Core 1 spin-waits on a flag that core 0 sets after a delay."""

    name = "flag-handoff"

    def __init__(self, write_at: int = 400):
        self.write_at = write_at
        self.flag = None  # filled by build(); allocation is deterministic

    def build(self, config, *, seed=0):
        allocator = RegionAllocator(AddressMap(config))
        flag = allocator.alloc_sync("flag").base
        self.flag = flag

        def writer():
            yield Compute(self.write_at)
            yield Store(flag, 1, sync=True)

        def waiter():
            yield WaitLoad(flag, lambda v: v == 1, sync=True)

        def idle():
            yield Compute(1)

        programs = [writer(), waiter()]
        programs += [idle() for _ in range(config.num_cores - 2)]
        return WorkloadInstance(self.name, allocator, programs)


class SpinForever(Workload):
    """Cores 0 and 1 both spin on a flag nobody ever sets.  Under
    DeNovoSync0 each registering probe steals the registration from (and
    wakes) the other spinner: an endless ping-pong in which events keep
    firing and the clock keeps advancing but no operation ever retires —
    the livelock shape the progress window exists to catch."""

    name = "spin-forever"

    def build(self, config, *, seed=0):
        allocator = RegionAllocator(AddressMap(config))
        flag = allocator.alloc_sync("flag").base

        def spinner():
            yield WaitLoad(flag, lambda v: v == 1, sync=True)

        def idle():
            yield Compute(1)

        programs = [spinner(), spinner()]
        programs += [idle() for _ in range(config.num_cores - 2)]
        return WorkloadInstance(self.name, allocator, programs)


def _flag_line(config):
    """The cache line the flag lands on (allocation is deterministic)."""
    probe = FlagHandoff()
    probe.build(config)
    return probe.flag, AddressMap(config).line_of(probe.flag)


def _broken_handle_victim(self, core_id, vline, vstate):
    """The PR-1 bug, re-introduced: eviction bookkeeping without the
    spin-waiter wake-up (no ``_notify_waiters`` call)."""
    ventry = self._entry(vline)
    if vstate in (MesiState.MODIFIED, MesiState.EXCLUSIVE):
        ventry.exclusive_owner = None
    else:
        ventry.sharers.discard(core_id)


class TestSleepingWaiterRegression:
    def test_rebroken_mesi_waiter_caught_with_dump(self, monkeypatch):
        config = config_for_cores(4)
        flag, line = _flag_line(config)
        monkeypatch.setattr(MesiProtocol, "_handle_victim", _broken_handle_victim)
        # Evict the waiter's subscribed copy between its subscription
        # (cycle 0) and the writer's store (cycle ~400): with the shim the
        # waiter is never woken and the run silently deadlocks.
        plan = FaultPlan(scripted_evictions=((100, 1, line),))

        with pytest.raises(SimulationStuck) as excinfo:
            run_workload(FlagHandoff(), "MESI", config, fault_plan=plan)

        message = str(excinfo.value)
        # The dump names the blocked core and its pending op...
        assert "core 1: WaitLoad" in message
        assert "spin-sleep (subscribed)" in message
        # ...and the contested line's directory state.
        assert f"addr {flag} (line {line})" in message
        assert "directory[" in message
        assert "subscribed waiters=[1]" in message

        dump = excinfo.value.dump
        assert dump is not None
        assert dump.reason == "quiescence deadlock"
        assert [info.core_id for info in dump.blocked] == [1]
        assert dump.blocked[0].wait_reason == "spin-sleep (subscribed)"
        assert dump.pending_events == 0  # drained queue = deadlock shape

    def test_fixed_protocol_survives_the_same_eviction(self):
        """Control: without the shim the identical scripted eviction wakes
        the waiter (the PR-1 fix) and the run completes."""
        config = config_for_cores(4)
        flag, line = _flag_line(config)
        plan = FaultPlan(scripted_evictions=((100, 1, line),))

        result = run_workload(
            FlagHandoff(), "MESI", config, fault_plan=plan, keep_protocol=True
        )
        assert result.meta["fault_injector"].forced_evictions == 1
        assert result.meta["protocol"].memory.read(flag) == 1


class TestProgressWindow:
    def test_denovo_spin_livelock_detected(self):
        config = config_for_cores(4)
        with pytest.raises(HangError) as excinfo:
            run_workload(
                SpinForever(), "DeNovoSync0", config, progress_window=5_000
            )
        assert "livelock" in str(excinfo.value)
        dump = excinfo.value.dump
        assert dump.reason == "no global progress"
        assert [info.core_id for info in dump.blocked] == [0, 1]
        assert dump.pending_events > 0  # events in flight = livelock shape

    def test_max_cycles_budget(self):
        config = config_for_cores(4)
        with pytest.raises(HangError) as excinfo:
            run_workload(SpinForever(), "DeNovoSync0", config, max_cycles=2_000)
        assert "max_cycles=2000" in str(excinfo.value)
        assert excinfo.value.dump.reason == "max-cycles budget exceeded"

    def test_disabled_window_allows_long_quiet_stretches(self):
        """window=None turns the no-progress check off entirely."""
        config = config_for_cores(4)
        result = run_workload(
            FlagHandoff(write_at=50), "MESI", config, progress_window=None
        )
        assert result.cycles > 0


class TestWatchdogValidation:
    def test_check_interval_validated(self):
        with pytest.raises(ValueError):
            Watchdog(Simulator(), [], None, check_interval=0)

    def test_window_validated(self):
        with pytest.raises(ValueError):
            Watchdog(Simulator(), [], None, window=0)

    def test_run_guards_zero_interval_watchdog(self):
        """Simulator.run validates the interval itself, so a watchdog-like
        object that bypasses Watchdog.__init__ raises ValueError, not a
        ZeroDivisionError (or an infinite poll loop) deep in the run loop."""

        class BrokenWatchdog:
            check_interval = 0

            def check(self):  # pragma: no cover - never reached
                raise AssertionError("must not be polled")

        sim = Simulator()
        sim.watchdog = BrokenWatchdog()
        sim.schedule_at(1, lambda: None)
        with pytest.raises(ValueError, match="check_interval"):
            sim.run()


class TestEventAttribution:
    def test_callback_exception_names_scheduling_site(self):
        sim = Simulator()

        def boom():
            raise ValueError("kaboom")

        # Scheduled at cycle 5 (inside another event), fires at cycle 12.
        sim.schedule_at(5, lambda: sim.schedule_after(7, boom))
        with pytest.raises(ValueError, match="kaboom") as excinfo:
            sim.run()
        notes = getattr(excinfo.value, "__notes__", [])
        assert any(
            "at cycle 12" in note and "scheduled at cycle 5" in note
            for note in notes
        )

    def test_exception_type_is_preserved(self):
        """Attribution annotates (PEP 678); it must not wrap or re-type."""
        sim = Simulator()
        sim.schedule_at(0, lambda: 1 // 0)
        with pytest.raises(ZeroDivisionError):
            sim.run()


class TestCliGuard:
    def test_run_aborts_with_dump_on_max_cycles(self, capsys):
        from repro.harness.cli import main as cli_main

        code = cli_main(
            [
                "run", "--workload", "tatas/counter", "--protocol", "MESI",
                "--cores", "16", "--scale", "0.02", "--max-cycles", "2000",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "simulation aborted" in err
        assert "watchdog diagnostic dump" in err
        assert "blocked cores" in err
