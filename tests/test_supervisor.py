"""Tests for the worker-pool supervisor (``repro.service.supervisor``).

These drive :class:`PoolSupervisor` deterministically: the supervision
loop is never started; tests call ``step()`` by hand (every state
transition lives there), with real worker processes underneath so crash
attribution, pool recycling, and harvest are exercised for real.

Worker functions are module-level so they pickle under the process pool.
The supervisor never introspects the spec it is given, so these tests
pass plain strings (paths, sleep durations) instead of full RunSpecs.
"""

from __future__ import annotations

import asyncio
import os
import random
import signal
import time
from pathlib import Path

import pytest

from repro.service.executor import SweepExecutor
from repro.service.supervisor import PoolSupervisor, RetryPolicy

#: fast, deterministic backoff so retry tests take milliseconds.
FAST = dict(base_delay=0.01, multiplier=2.0, max_delay=0.05, jitter=0.0)


# -- module-level worker behaviors (must be picklable) -----------------------

def ok_worker(spec, marker_path):
    Path(marker_path).touch()
    return f"ok:{spec}"


def flaky_worker(spec, marker_path):
    """Fails the first time, succeeds after: ``spec`` is a sentinel path
    recording (across processes) that a first attempt already happened."""
    Path(marker_path).touch()
    sentinel = Path(spec)
    if not sentinel.exists():
        sentinel.touch()
        raise ValueError("transient worker failure")
    return "recovered"


def always_fail_worker(spec, marker_path):
    Path(marker_path).touch()
    raise ValueError(f"permanent failure for {spec}")


def suicide_worker(spec, marker_path):
    Path(marker_path).touch()
    os.kill(os.getpid(), signal.SIGKILL)


def sleepy_worker(spec, marker_path):
    Path(marker_path).touch()
    time.sleep(float(spec))
    return f"slept:{spec}"


# -- helpers -----------------------------------------------------------------

async def drive(supervisor, *tasks, timeout=90.0):
    """Step the supervisor until every task settles; returns resolutions."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not all(task.outcome.done() for task in tasks):
        assert loop.time() < deadline, "cell never settled"
        supervisor.step()
        await asyncio.sleep(0.02)
    return [task.outcome.result() for task in tasks]


def make(workers=1, *, worker_fn, counters=None, **policy_kwargs):
    policy = RetryPolicy(**{**FAST, **policy_kwargs})
    on_counter = None
    if counters is not None:
        def on_counter(name, by=1):
            counters[name] = counters.get(name, 0) + by
    return PoolSupervisor(
        workers=workers, policy=policy, worker_fn=worker_fn,
        on_counter=on_counter,
    )


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="max_crashes"):
            RetryPolicy(max_crashes=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(jitter=-0.1)

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0)
        rng = random.Random(0)
        assert policy.delay(1, rng) == pytest.approx(0.1)
        assert policy.delay(2, rng) == pytest.approx(0.2)
        assert policy.delay(3, rng) == pytest.approx(0.4)
        assert policy.delay(4, rng) == pytest.approx(0.5)  # capped
        assert policy.delay(10, rng) == pytest.approx(0.5)

    def test_jitter_spreads_but_stays_bounded(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=1.0, jitter=0.5)
        rng = random.Random(42)
        delays = [policy.delay(1, rng) for _ in range(200)]
        assert all(0.1 <= d <= 0.15 for d in delays)
        assert len({round(d, 6) for d in delays}) > 1


class TestRetries:
    def test_transient_failure_retries_then_succeeds(self, tmp_path):
        counters = {}
        supervisor = make(worker_fn=flaky_worker, counters=counters)

        async def scenario():
            task = supervisor.submit(str(tmp_path / "sentinel"), "k1")
            return (await drive(supervisor, task))[0], task

        try:
            resolution, task = asyncio.run(scenario())
        finally:
            supervisor.shutdown()
        assert resolution.ok
        assert resolution.result == "recovered"
        assert resolution.attempts == 2
        assert task.failures == 1
        assert supervisor.retries == 1
        assert counters.get("cells_retried") == 1

    def test_retry_budget_exhausted_settles_with_final_error(self):
        supervisor = make(worker_fn=always_fail_worker, max_attempts=2)

        async def scenario():
            task = supervisor.submit("doomed", "k1")
            return (await drive(supervisor, task))[0]

        try:
            resolution = asyncio.run(scenario())
        finally:
            supervisor.shutdown()
        assert not resolution.ok
        assert resolution.error["kind"] == "ValueError"
        assert "permanent failure" in resolution.error["message"]
        assert resolution.error["attempts"] == 2
        assert resolution.attempts == 2
        assert resolution.error["traceback"]


class TestCrashRecovery:
    def test_repeat_crasher_settles_as_worker_crash(self):
        counters = {}
        supervisor = make(
            worker_fn=suicide_worker, counters=counters, max_crashes=2
        )

        async def scenario():
            task = supervisor.submit("boom", "k1")
            return (await drive(supervisor, task))[0]

        try:
            resolution = asyncio.run(scenario())
        finally:
            supervisor.shutdown()
        assert not resolution.ok
        assert resolution.error["kind"] == "worker_crash"
        assert "mid-execution" in resolution.error["message"]
        assert supervisor.crash_settles == 1
        assert counters.get("cells_crashed") == 1
        assert counters.get("workers_recycled", 0) >= 2

    def test_innocent_bystander_resubmitted_without_crash_charge(self, tmp_path):
        """Killing a worker mid-cell charges only the cell it was running;
        a queued cell lost to the same pool break is re-submitted free."""
        supervisor = make(workers=1, worker_fn=sleepy_worker, max_crashes=3)

        async def scenario():
            running = supervisor.submit("0.7", "victim")
            queued = supervisor.submit("0.01", "bystander")
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 30.0
            while not (running.marker and running.marker.exists()):
                assert loop.time() < deadline, "victim never started"
                await asyncio.sleep(0.01)
            os.kill(supervisor.worker_pids()[0], signal.SIGKILL)
            resolutions = await drive(supervisor, running, queued)
            return resolutions, running, queued

        try:
            (res_running, res_queued), running, queued = asyncio.run(scenario())
        finally:
            supervisor.shutdown()
        assert res_running.ok and res_running.result == "slept:0.7"
        assert res_queued.ok and res_queued.result == "slept:0.01"
        assert running.crashes == 1
        assert queued.crashes == 0
        assert supervisor.recycles >= 1


class TestDeadlines:
    def test_hung_cell_settles_as_deadline_exceeded_and_pool_survives(self):
        counters = {}
        supervisor = make(worker_fn=sleepy_worker, counters=counters)

        async def scenario():
            loop = asyncio.get_running_loop()
            hung = supervisor.submit("60", "hung", deadline=0.3)
            t0 = loop.time()
            resolution = (await drive(supervisor, hung))[0]
            elapsed = loop.time() - t0
            # The worker slot is immediately reusable: a normal cell runs
            # to completion on the recycled pool.
            after = supervisor.submit("0.01", "after")
            after_res = (await drive(supervisor, after))[0]
            return resolution, elapsed, after_res, supervisor.worker_health()

        try:
            resolution, elapsed, after_res, health = asyncio.run(scenario())
        finally:
            supervisor.shutdown()
        assert not resolution.ok
        assert resolution.error["kind"] == "deadline_exceeded"
        assert "0.3" in resolution.error["message"]
        # Settled within deadline + supervision slack — nowhere near the
        # cell's own 60s runtime.
        assert elapsed < 10.0
        assert counters.get("cells_deadline_exceeded") == 1
        assert supervisor.deadline_settles == 1
        assert after_res.ok
        assert health["alive"] >= 1

    def test_deadline_recycle_charges_no_crashes(self):
        supervisor = make(workers=1, worker_fn=sleepy_worker)

        async def scenario():
            hung = supervisor.submit("60", "hung", deadline=0.2)
            await drive(supervisor, hung)
            return hung

        try:
            hung = asyncio.run(scenario())
        finally:
            supervisor.shutdown()
        assert hung.crashes == 0  # intentional recycle, nobody charged


class TestShutdownHarvest:
    def test_shutdown_settles_completed_work_instead_of_dropping_it(self):
        """A result that finished in a worker but was never observed by a
        supervision pass must be harvested on shutdown, not discarded."""
        settled = []
        supervisor = PoolSupervisor(
            workers=1, policy=RetryPolicy(**FAST), worker_fn=ok_worker,
            on_settle=settled.append,
        )

        async def scenario():
            task = supervisor.submit("payload", "k1")
            # Wait for the worker to finish WITHOUT stepping: the result
            # sits unobserved in the pool future.
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 30.0
            while not task.pool_future.done():
                assert loop.time() < deadline
                await asyncio.sleep(0.01)
            supervisor.shutdown()
            return task.outcome.result()

        resolution = asyncio.run(scenario())
        assert resolution.ok
        assert resolution.result == "ok:payload"
        assert [r.ok for r in settled] == [True]

    def test_legacy_stop_order_dropped_completed_results(self, monkeypatch):
        """Re-breaking shim: without the harvest pass (the old shutdown
        behavior — cancel everything, then kill the pool), the very same
        completed-in-worker result is lost and the cell settles as a
        ``shutdown`` error."""
        monkeypatch.setattr(PoolSupervisor, "harvest", lambda self: 0)
        supervisor = PoolSupervisor(
            workers=1, policy=RetryPolicy(**FAST), worker_fn=ok_worker
        )

        async def scenario():
            task = supervisor.submit("payload", "k1")
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 30.0
            while not task.pool_future.done():
                assert loop.time() < deadline
                await asyncio.sleep(0.01)
            supervisor.shutdown()
            return task.outcome.result()

        resolution = asyncio.run(scenario())
        assert not resolution.ok
        assert resolution.error["kind"] == "shutdown"

    def test_unfinished_cells_settle_with_structured_shutdown_error(self):
        supervisor = make(worker_fn=sleepy_worker)

        async def scenario():
            task = supervisor.submit("60", "k1")
            supervisor.shutdown()
            return task.outcome.result()

        resolution = asyncio.run(scenario())
        assert not resolution.ok
        assert resolution.error["kind"] == "shutdown"
        assert supervisor.worker_health()["shutdown"]


class TestDedupeAfterFailure:
    def test_follower_observes_the_retried_outcome(self, tmp_path):
        """Satellite regression: a submission deduped against an in-flight
        cell whose first attempt *fails* must observe the retried success,
        not the dead first attempt."""
        executor = SweepExecutor(
            workers=1, cache=None, worker_fn=flaky_worker,
            policy=RetryPolicy(**FAST),
        )

        async def scenario():
            spec = str(tmp_path / "sentinel")
            source1, leader = executor.lookup(spec, "k1")
            source2, follower = executor.lookup(spec, "k1")
            assert source1 == "run" and source2 == "dedupe"
            assert follower is leader  # one task, one terminal outcome
            resolutions = await drive(executor.supervisor, leader, follower)
            return resolutions

        try:
            res_leader, res_follower = asyncio.run(scenario())
        finally:
            executor.shutdown()
        assert res_leader.ok and res_follower.ok
        assert res_follower.result == "recovered"
        assert res_follower.attempts == 2

    def test_without_retries_the_follower_shares_the_failure(self, tmp_path):
        """Re-breaking shim: with retries disabled (``max_attempts=1``, the
        legacy behavior), the follower is stuck with the first attempt's
        failure — the exact outcome the retry layer exists to prevent."""
        executor = SweepExecutor(
            workers=1, cache=None, worker_fn=flaky_worker,
            policy=RetryPolicy(max_attempts=1, **FAST),
        )

        async def scenario():
            spec = str(tmp_path / "sentinel")
            _, leader = executor.lookup(spec, "k1")
            source2, follower = executor.lookup(spec, "k1")
            assert source2 == "dedupe"
            return await drive(executor.supervisor, leader, follower)

        try:
            res_leader, res_follower = asyncio.run(scenario())
        finally:
            executor.shutdown()
        assert not res_leader.ok and not res_follower.ok
        assert res_follower.error["kind"] == "ValueError"
