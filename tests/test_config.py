"""Tests for the system configuration (paper Table 1)."""

import pytest

from repro.config import (
    BackoffConfig,
    LatencyRange,
    SystemConfig,
    config_16,
    config_64,
    config_for_cores,
)


class TestLatencyRange:
    def test_interpolate_endpoints(self):
        rng = LatencyRange(28, 68)
        assert rng.interpolate(0, 6) == 28
        assert rng.interpolate(6, 6) == 68

    def test_interpolate_midpoint(self):
        rng = LatencyRange(0, 100)
        assert rng.interpolate(5, 10) == 50

    def test_interpolate_clamps_beyond_max(self):
        rng = LatencyRange(10, 20)
        assert rng.interpolate(99, 4) == 20

    def test_interpolate_zero_max_hops(self):
        rng = LatencyRange(10, 20)
        assert rng.interpolate(3, 0) == 10


class TestBackoffConfig:
    def test_counter_max_9_bits(self):
        assert BackoffConfig(9, 1, 16).counter_max == 511

    def test_counter_max_12_bits(self):
        assert BackoffConfig(12, 64, 64).counter_max == 4095

    def test_counter_max_is_a_valid_bit_mask(self):
        # The hardware wrap in repro.protocols.backoff uses `& counter_max`,
        # which is only correct for masks of the form 2^k - 1.
        for bits in (1, 5, 9, 12):
            mask = BackoffConfig(bits, 1, 16).counter_max
            assert mask & (mask + 1) == 0
            assert mask == 2**bits - 1

    def test_zero_counter_bits_rejected(self):
        with pytest.raises(ValueError, match="counter_bits"):
            BackoffConfig(0, 1, 16)

    def test_negative_counter_bits_rejected(self):
        with pytest.raises(ValueError, match="counter_bits"):
            BackoffConfig(-3, 1, 16)

    def test_non_integer_counter_bits_rejected(self):
        with pytest.raises(ValueError, match="counter_bits"):
            BackoffConfig(8.5, 1, 16)

    def test_zero_update_period_rejected(self):
        with pytest.raises(ValueError, match="update_period"):
            BackoffConfig(9, 1, 0)

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="default_increment"):
            BackoffConfig(9, -1, 16)


class TestTable1Presets:
    def test_16_core_parameters(self):
        config = config_16()
        assert config.num_cores == 16
        assert config.l2_banks == 16
        assert config.l2_hit_latency == LatencyRange(28, 68)
        assert config.remote_l1_latency == LatencyRange(37, 97)
        assert config.memory_latency == LatencyRange(197, 277)
        assert config.backoff == BackoffConfig(9, 1, 16)

    def test_64_core_parameters(self):
        config = config_64()
        assert config.num_cores == 64
        assert config.l2_banks == 64
        assert config.l2_hit_latency == LatencyRange(28, 140)
        assert config.remote_l1_latency == LatencyRange(37, 205)
        assert config.memory_latency == LatencyRange(197, 421)
        assert config.backoff == BackoffConfig(12, 64, 64)

    def test_common_parameters(self):
        for config in (config_16(), config_64()):
            assert config.line_bytes == 64
            assert config.word_bytes == 4
            assert config.l1_bytes == 32 * 1024
            assert config.flit_bits == 16
            assert config.l1_hit_latency == 1

    def test_derived_geometry_16(self):
        config = config_16()
        assert config.mesh_side == 4
        assert config.max_hops == 6
        assert config.words_per_line == 16
        assert config.l1_lines == 512
        assert config.l1_sets == 64

    def test_derived_geometry_64(self):
        config = config_64()
        assert config.mesh_side == 8
        assert config.max_hops == 14


class TestValidation:
    def test_non_square_core_count_rejected(self):
        with pytest.raises(ValueError, match="perfect square"):
            SystemConfig(num_cores=15)

    def test_line_must_be_word_multiple(self):
        with pytest.raises(ValueError, match="multiple"):
            SystemConfig(line_bytes=63)

    def test_overrides(self):
        config = config_16(l1_bytes=16 * 1024)
        assert config.l1_bytes == 16 * 1024
        assert config.num_cores == 16


class TestConfigForCores:
    def test_known_sizes_delegate(self):
        assert config_for_cores(16) == config_16()
        assert config_for_cores(64) == config_64()

    def test_other_sizes_scale_backoff_period(self):
        config = config_for_cores(4)
        assert config.num_cores == 4
        assert config.backoff.update_period == 4

    def test_large_size_uses_64_core_latencies(self):
        config = config_for_cores(256)
        assert config.l2_hit_latency == config_64().l2_hit_latency
        assert config.backoff.update_period == 256

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            config_for_cores(10)
