"""Property-based tests (hypothesis) on the core data structures and
protocol invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BackoffConfig, LatencyRange, config_16, config_for_cores
from repro.mem.address import AddressMap
from repro.mem.l1 import DeNovoState
from repro.mem.regions import RegionAllocator
from repro.noc.mesh import Mesh
from repro.noc.messages import MessageClass, control_flits, data_flits
from repro.noc.traffic import TrafficLedger
from repro.protocols.backoff import BackoffState
from repro.sim.engine import Simulator


class TestLatencyRangeProperties:
    @given(
        lo=st.integers(1, 200),
        span=st.integers(0, 300),
        hops=st.integers(0, 50),
        max_hops=st.integers(1, 50),
    )
    def test_interpolation_within_bounds_and_monotonic(self, lo, span, hops, max_hops):
        rng = LatencyRange(lo, lo + span)
        value = rng.interpolate(hops, max_hops)
        assert lo <= value <= lo + span
        if hops + 1 <= max_hops:
            assert rng.interpolate(hops + 1, max_hops) >= value


class TestMeshProperties:
    @given(
        cores=st.sampled_from([4, 16, 64]),
        a=st.integers(0, 63),
        b=st.integers(0, 63),
        c=st.integers(0, 63),
    )
    def test_hops_is_a_metric(self, cores, a, b, c):
        mesh = Mesh(config_for_cores(cores))
        a, b, c = a % cores, b % cores, c % cores
        assert mesh.hops(a, a) == 0
        assert mesh.hops(a, b) == mesh.hops(b, a)
        assert mesh.hops(a, c) <= mesh.hops(a, b) + mesh.hops(b, c)

    @given(cores=st.sampled_from([4, 16, 64]), a=st.integers(0, 63), b=st.integers(0, 63))
    def test_latencies_within_table1_ranges(self, cores, a, b):
        config = config_for_cores(cores)
        mesh = Mesh(config)
        a, b = a % cores, b % cores
        assert (
            config.l2_hit_latency.min
            <= mesh.l2_access_latency(a, b)
            <= config.l2_hit_latency.max
        )
        assert (
            config.memory_latency.min
            <= mesh.memory_latency(a, b)
            <= config.memory_latency.max
        )


class TestMessageProperties:
    @given(payload=st.integers(0, 4096))
    def test_data_message_never_smaller_than_control(self, payload):
        assert data_flits(payload) >= control_flits()

    @given(p1=st.integers(0, 2048), p2=st.integers(0, 2048))
    def test_flit_count_monotonic_in_payload(self, p1, p2):
        if p1 <= p2:
            assert data_flits(p1) <= data_flits(p2)


class TestTrafficLedgerProperties:
    @given(
        records=st.lists(
            st.tuples(
                st.sampled_from(list(MessageClass)),
                st.integers(0, 100),
                st.integers(0, 20),
            ),
            max_size=50,
        )
    )
    def test_total_equals_sum_of_classes(self, records):
        ledger = TrafficLedger()
        for klass, flits, hops in records:
            ledger.record(klass, flits, hops)
        assert ledger.flit_crossings() == sum(
            ledger.flit_crossings(k) for k in MessageClass
        )
        assert ledger.flit_crossings() == sum(
            f * h for _, f, h in records
        )


class TestAddressMapProperties:
    @given(addr=st.integers(0, 10**9))
    def test_line_word_roundtrip(self, addr):
        amap = AddressMap(config_16())
        line = amap.line_of(addr)
        offset = amap.word_in_line(addr)
        assert amap.line_base(line) + offset == addr
        assert 0 <= offset < amap.words_per_line
        assert addr in amap.words_of_line(line)

    @given(addr=st.integers(0, 10**6))
    def test_home_bank_in_range(self, addr):
        amap = AddressMap(config_16())
        assert 0 <= amap.home_bank_of_addr(addr) < 16


class TestRegionAllocatorProperties:
    @given(
        sizes=st.lists(st.tuples(st.integers(1, 40), st.booleans()), max_size=25)
    )
    def test_allocations_disjoint_and_tracked(self, sizes):
        allocator = RegionAllocator(AddressMap(config_16()))
        seen = set()
        for i, (nwords, align) in enumerate(sizes):
            alloc = allocator.alloc(f"r{i % 5}", nwords, line_align=align)
            assert alloc.nwords == nwords
            if align:
                assert alloc.base % 16 == 0
            for addr in alloc:
                assert addr not in seen
                seen.add(addr)
                assert allocator.region_of(addr) is allocator.region(f"r{i % 5}")


class TestBackoffProperties:
    @given(
        bits=st.integers(2, 12),
        inc=st.integers(1, 64),
        period=st.integers(1, 64),
        events=st.lists(st.sampled_from(["steal", "hit", "release", "stall"]), max_size=200),
    )
    def test_counter_stays_in_hardware_range(self, bits, inc, period, events):
        state = BackoffState(BackoffConfig(bits, inc, period))
        for event in events:
            if event == "steal":
                state.on_incoming_sync_read_steal()
            elif event == "hit":
                state.on_registered_hit()
            elif event == "release":
                state.on_release()
            else:
                assert state.stall_cycles(spinning=True) >= 0
            assert 0 <= state.backoff <= state.config.counter_max


class TestSimulatorProperties:
    @given(times=st.lists(st.integers(0, 10_000), max_size=60))
    def test_events_fire_in_nondecreasing_time_order(self, times):
        sim = Simulator()
        fired = []
        for t in times:
            sim.schedule_at(t, lambda t=t: fired.append(t))
        sim.run()
        assert fired == sorted(times)
        assert len(fired) == len(times)


class TestProtocolValueProperties:
    @given(
        protocol_name=st.sampled_from(["MESI", "DeNovoSync0", "DeNovoSync"]),
        ops=st.lists(
            st.tuples(
                st.integers(0, 3),  # core
                st.integers(0, 5),  # word index within a small pool
                st.sampled_from(["load", "store", "sync_load", "sync_store", "fai"]),
            ),
            max_size=60,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_sync_accesses_always_see_latest_value(self, protocol_name, ops):
        """SC for synchronization: a sync read returns the latest write."""
        from repro.protocols import make_protocol

        config = config_for_cores(4)
        allocator = RegionAllocator(AddressMap(config))
        pool = [allocator.alloc_sync(f"w{i}").base for i in range(6)]
        protocol = make_protocol(protocol_name, config, allocator)
        shadow = {}
        now = 0
        for core, word, op in ops:
            now += 1000  # space operations out: no in-flight overlap
            protocol.set_time(now)
            addr = pool[word]
            if op == "load":
                protocol.load(core, addr, ticketed=True)
            elif op == "sync_load":
                access = protocol.load(core, addr, sync=True, ticketed=True)
                assert access.value == shadow.get(addr, 0)
            elif op == "store":
                protocol.store(core, addr, core * 7 + word, ticketed=True)
                shadow[addr] = core * 7 + word
            elif op == "sync_store":
                protocol.store(core, addr, core * 9 + word, sync=True, ticketed=True)
                shadow[addr] = core * 9 + word
            else:
                access = protocol.rmw(core, addr, lambda old: old + 1, ticketed=True)
                assert access.value == shadow.get(addr, 0)
                shadow[addr] = shadow.get(addr, 0) + 1

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_denovo_registry_consistent_with_l1_states(self, seed):
        """Single-writer invariant: a word's registry owner (if any) holds
        it Registered, and nobody else does."""
        from repro.protocols.denovosync0 import DeNovoSync0Protocol

        config = config_for_cores(4)
        allocator = RegionAllocator(AddressMap(config))
        pool = [allocator.alloc(f"d{i}", 4).base for i in range(4)]
        protocol = DeNovoSync0Protocol(config, allocator)
        rng = random.Random(seed)
        now = 0
        for _ in range(80):
            now += 500
            protocol.set_time(now)
            core = rng.randrange(4)
            addr = pool[rng.randrange(4)] + rng.randrange(4)
            op = rng.choice(["load", "store", "sync_load", "rmw"])
            if op == "load":
                protocol.load(core, addr)
            elif op == "store":
                protocol.store(core, addr, rng.randrange(100))
            elif op == "sync_load":
                protocol.load(core, addr, sync=True)
            else:
                protocol.rmw(core, addr, lambda old: old + 1)
        for addr, owner in protocol.registry.items():
            for core_id, l1 in enumerate(protocol.l1s):
                state = l1.state_of(addr, touch=False)
                if core_id == owner:
                    assert state is DeNovoState.REGISTERED
                    assert l1.value_of(addr) == protocol.memory.read(addr)
                else:
                    assert state is not DeNovoState.REGISTERED
