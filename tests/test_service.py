"""Tests for the sweep job server (``repro.service``).

The end-to-end tests start a real :class:`SweepService` on an ephemeral
port (its event loop in a daemon thread, its simulations in a real
2-worker process pool) and drive it through the blocking
:class:`ServiceClient` — exactly the production topology, scaled down.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.config import config_16
from repro.harness.parallel import ResultCache, RunSpec, cache_key_for, kernel_cell
from repro.service import ServiceClient, SweepService, spec_from_dict, spec_to_dict
from repro.service.client import ServiceError
from repro.service.specs import describe_workload
from repro.workloads.base import KernelSpec

SCALE = 0.02
PROTOCOLS = ("MESI", "DeNovoSync0", "DeNovoSync", "MESI-RFO")


def sweep_specs(protocols=PROTOCOLS, seed=1, name="counter"):
    config = config_16()
    return [
        RunSpec(kernel_cell("tatas", name, KernelSpec(scale=SCALE)), protocol,
                config, seed=seed)
        for protocol in protocols
    ]


def poisoned_spec(seed=1):
    """A cell whose worker-side materialization raises (unknown kernel)."""
    return RunSpec(
        kernel_cell("tatas", "no-such-kernel", KernelSpec(scale=SCALE)),
        "MESI",
        config_16(),
        seed=seed,
    )


class ServiceHarness:
    """A running service + the thread its event loop lives on."""

    def __init__(self, cache_root) -> None:
        self.service = SweepService(
            host="127.0.0.1", port=0, workers=2, cache=ResultCache(cache_root)
        )
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self.loop.run_forever, daemon=True)
        self.thread.start()
        _, self.port = self.submit_coro(self.service.start())
        self.client = ServiceClient("127.0.0.1", self.port, timeout=30.0)

    def submit_coro(self, coro):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(30)

    def close(self) -> None:
        self.submit_coro(self.service.stop())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


@pytest.fixture(scope="module")
def harness(tmp_path_factory):
    harness = ServiceHarness(tmp_path_factory.mktemp("service-cache"))
    yield harness
    harness.close()


class TestEndToEnd:
    def test_resubmitted_sweep_is_all_cache_or_dedupe_hits(self, harness):
        client = harness.client
        specs = sweep_specs()

        first = client.submit_specs(specs)
        assert first["cells"] == 4
        settled = client.wait(first["job"], timeout=300)
        assert settled["status"] == "done"
        assert settled["counts"]["done"] == 4
        assert all(c["status"] == "done" for c in settled["cell_details"])
        assert all(c["summary"]["cycles"] > 0 for c in settled["cell_details"])

        # Second submission of the identical sweep: 100% served without a
        # new simulation (on-disk cache, or dedupe against an in-flight
        # sibling had the first still been running).
        second = client.submit_specs(specs)
        settled2 = client.wait(second["job"], timeout=300)
        assert settled2["status"] == "done"
        sources = [c["source"] for c in settled2["cell_details"]]
        assert all(source in ("cache", "dedupe") for source in sources)
        # Results are byte-equal across the two paths.
        for a, b in zip(settled["cell_details"], settled2["cell_details"]):
            assert a["summary"] == b["summary"]
            assert a["key"] == b["key"]

    def test_concurrent_overlapping_jobs_simulate_each_unique_cell_once(self, harness):
        client = harness.client
        # Fresh cells (unique seed), two overlapping submissions fired
        # back-to-back without waiting: job B's overlap with job A must
        # resolve via dedupe (still in flight) or cache (already done).
        a_specs = sweep_specs(protocols=("MESI", "DeNovoSync"), seed=77)
        b_specs = sweep_specs(protocols=("DeNovoSync", "DeNovoSync0"), seed=77)
        before = harness.service.metrics.counts["cells_simulated"]
        job_a = client.submit_specs(a_specs)["job"]
        job_b = client.submit_specs(b_specs)["job"]
        status_a = client.wait(job_a, timeout=300)
        status_b = client.wait(job_b, timeout=300)
        assert status_a["status"] == "done"
        assert status_b["status"] == "done"
        unique = {cache_key_for(spec) for spec in a_specs + b_specs}
        simulated = harness.service.metrics.counts["cells_simulated"] - before
        assert simulated == len(unique) == 3
        overlap = status_b["cell_details"][0]
        assert overlap["protocol"] == "DeNovoSync"
        assert overlap["source"] in ("cache", "dedupe")

    def test_poisoned_cell_fails_alone_siblings_complete_and_cache(self, harness):
        client = harness.client
        specs = sweep_specs(protocols=("MESI", "DeNovoSync"), seed=99)
        job = client.submit_specs(specs + [poisoned_spec(seed=99)])["job"]
        status = client.wait(job, timeout=300)
        assert status["status"] == "failed"
        assert status["counts"] == {"queued": 0, "running": 0, "done": 2, "failed": 1}
        good = status["cell_details"][:2]
        bad = status["cell_details"][2]
        assert all(c["status"] == "done" for c in good)
        assert bad["status"] == "failed"
        assert bad["error"]["kind"] == "KeyError"
        assert "no-such-kernel" in bad["error"]["message"]
        assert bad["error"]["traceback"]

        # The siblings were cached despite the poisoned cell: resubmitting
        # just them is a pure cache hit.
        again = client.submit_specs(specs)["job"]
        settled = client.wait(again, timeout=60)
        assert settled["status"] == "done"
        assert [c["source"] for c in settled["cell_details"]] == ["cache", "cache"]

    def test_healthz_and_metrics_sanity(self, harness):
        health = harness.client.healthz()
        assert health["status"] == "ok"
        assert health["workers"]["configured"] == 2
        assert not health["workers"]["broken"]
        assert health["uptime_seconds"] >= 0
        assert health["counters"]["jobs_submitted"] >= 1

        metrics = harness.client.metrics()
        for line in (
            "repro_uptime_seconds",
            "repro_queue_depth",
            "repro_cells_per_second",
            "repro_cache_hit_rate",
            "repro_workers_configured 2",
            "repro_pool_broken 0",
        ):
            assert line in metrics
        # Prometheus text shape: every sample line has a HELP and TYPE.
        samples = [
            ln for ln in metrics.splitlines() if ln and not ln.startswith("#")
        ]
        for sample in samples:
            name, value = sample.rsplit(" ", 1)
            float(value)
            assert f"# TYPE {name} " in metrics

    def test_job_listing_and_errors(self, harness):
        client = harness.client
        listed = client.jobs()["jobs"]
        assert listed, "earlier tests submitted jobs"
        assert all({"job", "status", "cells", "counts"} <= set(j) for j in listed)

        with pytest.raises(ServiceError) as excinfo:
            client.job("j9999")
        assert excinfo.value.status == 404

        with pytest.raises(ServiceError) as excinfo:
            client.submit_cells([])
        assert excinfo.value.status == 400

        with pytest.raises(ServiceError) as excinfo:
            client.submit_cells([{"protocol": "MESI"}])  # no workload
        assert excinfo.value.status == 400
        assert "workload" in str(excinfo.value)


class TestWireFormat:
    def test_spec_round_trip_preserves_cache_key(self):
        for spec in sweep_specs() + [poisoned_spec()]:
            clone = spec_from_dict(spec_to_dict(spec))
            assert clone == spec
            assert cache_key_for(clone) == cache_key_for(spec)

    def test_json_round_trip_preserves_cache_key(self):
        import json

        spec = sweep_specs()[0]
        wire = json.loads(json.dumps(spec_to_dict(spec)))
        assert cache_key_for(spec_from_dict(wire)) == cache_key_for(spec)

    def test_cores_shorthand(self):
        spec = spec_from_dict(
            {"workload": ["kernel", "tatas", "counter", [120, 0.02, False], [], True],
             "protocol": "MESI", "cores": 16, "seed": 3}
        )
        assert spec.config == config_16()
        assert spec.seed == 3

    def test_malformed_cells_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            spec_from_dict({"protocol": "MESI"})
        with pytest.raises(ValueError, match="protocol"):
            spec_from_dict({"workload": ["kernel", "tatas", "counter"]})
        with pytest.raises(ValueError, match="malformed"):
            spec_from_dict(
                {"workload": ["app", "LU", 0.5], "protocol": "MESI",
                 "config": {"num_cores": "many"}}
            )
        with pytest.raises(ValueError, match="object"):
            spec_from_dict(["not", "a", "dict"])

    def test_describe_workload(self):
        assert describe_workload(("kernel", "tatas", "counter", (), (), True)) == (
            "tatas/counter"
        )
        assert describe_workload(("app", "LU", 0.5)) == "app/LU"
