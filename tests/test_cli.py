"""Tests for the command-line interface."""

import pytest

from repro.harness.cli import main as cli_main


class TestFigureTargets:
    def test_fig3_table_output(self, capsys):
        assert cli_main(["fig3", "--cores", "16", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "single Q" in out

    def test_plot_format(self, capsys):
        assert (
            cli_main(["fig3", "--cores", "16", "--scale", "0.02", "--format", "plot"])
            == 0
        )
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "|" in out

    def test_csv_format(self, capsys):
        assert (
            cli_main(["fig3", "--cores", "16", "--scale", "0.02", "--format", "csv"])
            == 0
        )
        out = capsys.readouterr().out
        header = out.splitlines()[0]
        assert header.startswith("figure,workload,protocol")

    def test_json_format(self, capsys):
        import json

        assert (
            cli_main(["fig3", "--cores", "16", "--scale", "0.02", "--format", "json"])
            == 0
        )
        from repro.harness.experiments import KERNEL_PROTOCOLS

        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 6 * len(KERNEL_PROTOCOLS)  # kernels x protocols

    def test_out_directory(self, tmp_path):
        assert (
            cli_main(
                ["fig3", "--cores", "16", "--scale", "0.02", "--out", str(tmp_path)]
            )
            == 0
        )
        assert (tmp_path / "fig3.txt").exists()


class TestRunTarget:
    def test_run_kernel(self, capsys):
        assert (
            cli_main(
                [
                    "run", "--workload", "tatas/counter",
                    "--protocol", "DeNovoSync", "--cores", "16",
                    "--scale", "0.02",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "dynamic energy" in out
        assert "SYNCH" in out

    def test_run_micro(self, capsys):
        assert (
            cli_main(
                ["run", "--workload", "micro/pingpong", "--protocol", "MESI",
                 "--cores", "4"]
            )
            == 0
        )
        assert "micro.pingpong" in capsys.readouterr().out

    def test_run_app_uses_paper_cores(self, capsys):
        assert (
            cli_main(
                ["run", "--workload", "app/ferret", "--protocol", "MESI",
                 "--app-scale", "0.1"]
            )
            == 0
        )
        assert "16 cores" in capsys.readouterr().out

    def test_run_writes_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        assert (
            cli_main(
                ["run", "--workload", "tatas/counter", "--protocol", "MESI",
                 "--cores", "16", "--scale", "0.02", "--trace", str(trace_path)]
            )
            == 0
        )
        assert trace_path.exists()
        from repro.trace.events import read_trace

        assert len(read_trace(trace_path)) > 0

    def test_run_requires_workload(self):
        with pytest.raises(SystemExit):
            cli_main(["run"])

    def test_run_rejects_bad_spec(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "--workload", "nonsense"])


class TestProfileTarget:
    def test_profile_prints_hot_functions(self, capsys, tmp_path):
        out_path = tmp_path / "prof.pstats"
        assert (
            cli_main(
                [
                    "profile",
                    "--workload", "tatas/counter",
                    "--protocol", "DeNovoSync",
                    "--cores", "4",
                    "--scale", "0.02",
                    "--top", "5",
                    "--profile-out", str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "cumtime" in out  # pstats header
        assert "run_workload" in out  # the profiled entry point
        import pstats

        assert pstats.Stats(str(out_path)).total_calls > 0

    def test_profile_requires_workload(self):
        with pytest.raises(SystemExit):
            cli_main(["profile"])
