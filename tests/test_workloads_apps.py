"""Integration tests: all 13 application models run under both protocols."""

import pytest

from repro.config import config_for_cores
from repro.harness.runner import run_workload
from repro.stats.timeparts import TimeComponent
from repro.workloads.apps import (
    APP_NAMES,
    APP_PROFILES,
    AppProfile,
    AppWorkload,
    app_core_count,
    make_app,
)

TINY_SCALE = 0.1


class TestProfileSet:
    def test_thirteen_apps(self):
        assert len(APP_NAMES) == 13

    def test_paper_core_counts(self):
        assert app_core_count("ferret") == 16
        assert app_core_count("x264") == 16
        for name in APP_NAMES:
            if name not in ("ferret", "x264"):
                assert app_core_count(name) == 64

    def test_pattern_classification(self):
        barrier_only = ("FFT", "LU", "blackscholes", "swaptions", "radix")
        for name in barrier_only:
            assert APP_PROFILES[name].locks == 0
            assert APP_PROFILES[name].pipeline_stages == 0
        for name in ("bodytrack", "barnes", "water", "ocean", "fluidanimate"):
            assert APP_PROFILES[name].locks > 0
        assert APP_PROFILES["canneal"].cas_swaps_per_phase > 0
        assert APP_PROFILES["ferret"].pipeline_stages > 0

    def test_paper_traits(self):
        assert not APP_PROFILES["LU"].pad_private  # false sharing
        assert APP_PROFILES["fluidanimate"].selfinv_whole_shared

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            make_app("doom")


@pytest.mark.parametrize("name", APP_NAMES)
@pytest.mark.parametrize("protocol", ["MESI", "DeNovoSync"])
class TestAppRuns:
    def test_runs_and_accounts(self, name, protocol):
        config = config_for_cores(app_core_count(name))
        result = run_workload(make_app(name, scale=TINY_SCALE), protocol, config, seed=5)
        assert result.cycles > 0
        assert result.total_traffic > 0
        breakdown = result.traffic_breakdown()
        if protocol == "MESI":
            assert breakdown["SYNCH"] == 0
        else:
            assert breakdown["Inv"] == 0


class TestAppBehaviours:
    def test_lu_false_sharing_penalizes_mesi(self):
        """LU's unpadded private data makes MESI invalidate; DeNovo's
        word-grain state is immune (the paper's stated LU effect)."""
        config = config_for_cores(16)
        profile = APP_PROFILES["LU"]
        small = AppProfile(**{**profile.__dict__, "cores": 16})
        mesi = run_workload(AppWorkload(small, 0.3), "MESI", config, seed=5)
        denovo = run_workload(AppWorkload(small, 0.3), "DeNovoSync", config, seed=5)
        assert mesi.counters.get("invalidations_sent") > 0
        assert denovo.cycles < mesi.cycles

    def test_pipeline_app_moves_items_through_stages(self):
        config = config_for_cores(16)
        result = run_workload(
            make_app("ferret", scale=0.2), "DeNovoSync", config, seed=5,
            keep_protocol=True,
        )
        assert result.cycles > 0

    def test_apps_have_barrier_phases(self):
        config = config_for_cores(64)
        result = run_workload(make_app("FFT", scale=TINY_SCALE), "MESI", config, seed=5)
        assert result.component_cycles(TimeComponent.BARRIER_STALL) > 0
