"""Tests for the parallel sweep executor and the on-disk result cache.

The load-bearing property is *determinism*: a sweep run with any ``jobs``
value (or served from a warm cache) must produce byte-identical figure
output to the serial reference path.
"""

from __future__ import annotations

import io
import pickle

import pytest

from repro.config import config_16, config_for_cores
from repro.harness.experiments import run_apps_figure, run_kernel_figure
from repro.harness.parallel import (
    ResultCache,
    RunSpec,
    app_cell,
    code_version,
    execute_spec,
    kernel_cell,
    materialize_workload,
    resolve_jobs,
    run_specs,
)
from repro.harness.report import print_figure
from repro.harness.runner import run_workload
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel

SCALE = 0.02


def figure_text(figure) -> str:
    buffer = io.StringIO()
    print_figure(figure, buffer)
    return buffer.getvalue()


def figure_summaries(figure) -> list[dict]:
    return [
        {protocol: result.summary() for protocol, result in row.results.items()}
        for row in figure.rows
    ]


class TestSerialParallelEquivalence:
    def test_kernel_figure_identical_across_jobs(self):
        kwargs = dict(core_counts=(16,), scale=SCALE, seed=1, names=["counter"])
        serial = run_kernel_figure("tatas", jobs=1, **kwargs)
        parallel = run_kernel_figure("tatas", jobs=4, **kwargs)
        assert figure_summaries(serial) == figure_summaries(parallel)
        # Counters too (summary() doesn't include them).
        for s_row, p_row in zip(serial.rows, parallel.rows):
            for protocol in s_row.results:
                assert (
                    s_row.results[protocol].counters.as_dict()
                    == p_row.results[protocol].counters.as_dict()
                )
        assert figure_text(serial) == figure_text(parallel)

    def test_apps_figure_identical_across_jobs(self):
        kwargs = dict(scale=0.1, seed=2, names=["ferret"])
        serial = run_apps_figure(jobs=1, **kwargs)
        parallel = run_apps_figure(jobs=2, **kwargs)
        assert figure_summaries(serial) == figure_summaries(parallel)
        assert figure_text(serial) == figure_text(parallel)

    def test_run_specs_preserves_spec_order(self):
        config = config_16()
        specs = [
            RunSpec(kernel_cell("tatas", "counter", KernelSpec(scale=SCALE)), proto,
                    config, seed=1)
            for proto in ("DeNovoSync", "MESI", "DeNovoSync0")
        ]
        results = run_specs(specs, jobs=3)
        assert [r.protocol for r in results] == ["DeNovoSync", "MESI", "DeNovoSync0"]

    def test_execute_spec_matches_run_workload(self):
        config = config_16()
        spec = RunSpec(
            kernel_cell("tatas", "counter", KernelSpec(scale=SCALE)),
            "MESI",
            config,
            seed=5,
        )
        direct = run_workload(
            make_kernel("tatas", "counter", spec=KernelSpec(scale=SCALE)),
            "MESI",
            config,
            seed=5,
        )
        via_spec = execute_spec(spec)
        assert via_spec.summary() == direct.summary()
        assert via_spec.counters.as_dict() == direct.counters.as_dict()


class TestResultCache:
    def sweep(self, cache, jobs=1):
        return run_kernel_figure(
            "tatas",
            core_counts=(16,),
            scale=SCALE,
            seed=1,
            names=["counter"],
            jobs=jobs,
            cache=cache,
        )

    def test_warm_run_is_served_from_cache(self, tmp_path):
        from repro.harness.experiments import KERNEL_PROTOCOLS

        cold_cache = ResultCache(tmp_path)
        cold = self.sweep(cold_cache)
        assert cold_cache.hits == 0
        # one store per default protocol x one kernel
        assert cold_cache.stores == len(KERNEL_PROTOCOLS)

        warm_cache = ResultCache(tmp_path)
        warm = self.sweep(warm_cache)
        assert warm_cache.hits == len(KERNEL_PROTOCOLS)
        assert warm_cache.stores == 0
        assert figure_summaries(cold) == figure_summaries(warm)
        assert figure_text(cold) == figure_text(warm)

    def test_warm_run_identical_under_parallel_jobs(self, tmp_path):
        cache = ResultCache(tmp_path)
        from repro.harness.experiments import KERNEL_PROTOCOLS

        cold = self.sweep(cache, jobs=2)
        warm = self.sweep(cache, jobs=2)
        assert cache.hits == len(KERNEL_PROTOCOLS)
        assert figure_summaries(cold) == figure_summaries(warm)

    def test_seed_is_part_of_the_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = config_16()
        cell = kernel_cell("tatas", "counter", KernelSpec(scale=SCALE))
        run_specs([RunSpec(cell, "MESI", config, seed=1)], cache=cache)
        run_specs([RunSpec(cell, "MESI", config, seed=2)], cache=cache)
        assert cache.hits == 0
        assert cache.stores == 2

    def test_config_is_part_of_the_key(self):
        cell = kernel_cell("tatas", "counter", KernelSpec(scale=SCALE))
        cache = ResultCache("unused")
        key16 = cache.key_for(RunSpec(cell, "MESI", config_16(), seed=1))
        key64 = cache.key_for(RunSpec(cell, "MESI", config_for_cores(64), seed=1))
        assert key16 != key64

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = config_16()
        spec = RunSpec(
            kernel_cell("tatas", "counter", KernelSpec(scale=SCALE)),
            "MESI",
            config,
            seed=1,
        )
        (result,) = run_specs([spec], cache=cache)
        path = cache._path_for(cache.key_for(spec))
        path.write_bytes(b"not a pickle")
        fresh = ResultCache(tmp_path)
        assert fresh.load(spec) is None
        assert fresh.misses == 1
        # A re-run repairs the entry.
        (again,) = run_specs([spec], cache=fresh)
        assert again.summary() == result.summary()
        assert fresh.stores == 1

    def test_unwritable_cache_root_does_not_fail_the_sweep(self, tmp_path):
        # e.g. --cache-dir pointing at an existing file: the sweep's
        # results must still come back; the store is silently skipped.
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("occupied")
        cache = ResultCache(bogus)
        spec = RunSpec(
            kernel_cell("tatas", "counter", KernelSpec(scale=SCALE)),
            "MESI",
            config_16(),
            seed=1,
        )
        (result,) = run_specs([spec], cache=cache)
        assert result.cycles > 0
        assert cache.stores == 0
        assert bogus.read_text() == "occupied"

    def test_code_version_is_stable_within_process(self):
        assert code_version() == code_version()
        assert len(code_version()) == 64


class TestSpecsAndPickling:
    def test_kernel_cell_kwargs_order_insensitive(self):
        a = kernel_cell("tatas", "counter", KernelSpec(), software_backoff=True, x=1)
        b = kernel_cell("tatas", "counter", KernelSpec(), x=1, software_backoff=True)
        assert a == b

    def test_runspec_pickle_roundtrip(self):
        spec = RunSpec(app_cell("ferret", 0.1), "DeNovoSync", config_16(), seed=3)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_runresult_pickle_roundtrip(self):
        result = run_workload(
            make_kernel("tatas", "counter", spec=KernelSpec(scale=SCALE)),
            "DeNovoSync",
            config_16(),
            seed=1,
        )
        clone = pickle.loads(pickle.dumps(result))
        assert clone.summary() == result.summary()
        assert clone.counters.as_dict() == result.counters.as_dict()
        assert clone.traffic.breakdown() == result.traffic.breakdown()
        assert [b.as_dict() for b in clone.per_core_time] == [
            b.as_dict() for b in result.per_core_time
        ]

    def test_portable_copy_drops_live_objects(self):
        result = run_workload(
            make_kernel("tatas", "counter", spec=KernelSpec(scale=SCALE)),
            "MESI",
            config_16(),
            seed=1,
            keep_protocol=True,
        )
        assert "protocol" in result.meta
        portable = result.portable_copy()
        assert "protocol" not in portable.meta
        assert portable.cycles == result.cycles
        pickle.dumps(portable)  # must not raise

    def test_materialize_unpadded_kernel(self):
        cell = kernel_cell(
            "tatas", "counter", KernelSpec(scale=SCALE), padded=False
        )
        workload = materialize_workload(cell)
        instance = workload.build(config_16(), seed=1)
        assert instance.allocator.pad_sync_vars is False
        padded = materialize_workload(
            kernel_cell("tatas", "counter", KernelSpec(scale=SCALE))
        )
        assert padded.build(config_16(), seed=1).allocator.pad_sync_vars is True

    def test_unknown_descriptor_rejected(self):
        with pytest.raises(ValueError, match="descriptor"):
            materialize_workload(("mystery",))

    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(7) == 7
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1


class TestCliFlags:
    def test_jobs_flag_output_matches_serial(self, capsys, tmp_path):
        from repro.harness.cli import main as cli_main

        argv = ["fig3", "--cores", "16", "--scale", "0.02", "--format", "csv"]
        assert cli_main(argv + ["--no-cache"]) == 0
        serial_out = capsys.readouterr().out
        assert (
            cli_main(argv + ["--jobs", "2", "--cache-dir", str(tmp_path / "rc")]) == 0
        )
        parallel_out = capsys.readouterr().out
        assert parallel_out == serial_out
        # Warm re-run: served from cache, still byte-identical.
        assert (
            cli_main(argv + ["--jobs", "2", "--cache-dir", str(tmp_path / "rc")]) == 0
        )
        assert capsys.readouterr().out == serial_out
