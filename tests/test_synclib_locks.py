"""Correctness tests for the lock algorithms under all three protocols.

Mutual exclusion is checked the strong way: N simulated threads increment
a shared counter with unprotected read-modify-write *data* accesses inside
the critical section; any mutual-exclusion violation or stale read loses
increments and the final count comes up short.
"""

import pytest

from repro.cpu.isa import Compute, Load, SelfInvalidate, Store
from repro.synclib.arraylock import ArrayLock
from repro.synclib.tatas import TatasLock


def locked_increment_program(machine, lock, region, counter_addr, ctx, iterations):
    for _ in range(iterations):
        token = yield from lock.acquire(ctx)
        yield SelfInvalidate((region,))
        value = yield Load(counter_addr)
        yield Compute(ctx.rng.randrange(1, 20))  # widen the race window
        yield Store(counter_addr, value + 1)
        yield from lock.release(token)
        yield Compute(ctx.rng.randrange(50, 300))


@pytest.mark.parametrize("num_cores", [4, 16])
class TestTatasMutualExclusion:
    def test_no_lost_increments(self, protocol_name, machine_factory, num_cores):
        machine = machine_factory(protocol_name, num_cores)
        lock = TatasLock(machine.allocator, "lock")
        region = machine.allocator.region("counter.data")
        counter = machine.allocator.alloc("counter.data").base
        iterations = 10
        programs = [
            locked_increment_program(
                machine, lock, region, counter, machine.ctx(i), iterations
            )
            for i in range(num_cores)
        ]
        machine.run(programs)
        assert machine.protocol.memory.read(counter) == num_cores * iterations


@pytest.mark.parametrize("num_cores", [4, 16])
class TestArrayLockMutualExclusion:
    def test_no_lost_increments(self, protocol_name, machine_factory, num_cores):
        machine = machine_factory(protocol_name, num_cores)
        lock = ArrayLock(machine.allocator, nslots=num_cores, name="alock")
        machine.initial_values = lock.initial_values()
        region = machine.allocator.region("counter.data")
        counter = machine.allocator.alloc("counter.data").base
        iterations = 10
        programs = [
            locked_increment_program(
                machine, lock, region, counter, machine.ctx(i), iterations
            )
            for i in range(num_cores)
        ]
        machine.run(programs)
        assert machine.protocol.memory.read(counter) == num_cores * iterations


class TestTatasDetails:
    def test_single_thread_acquire_release(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, 4)
        lock = TatasLock(machine.allocator)
        done = []

        def program(ctx):
            yield from lock.acquire(ctx)
            yield from lock.release()
            done.append(True)

        machine.run([program(machine.ctx(0))])
        assert done == [True]
        assert machine.protocol.memory.read(lock.addr) == 0

    def test_lock_held_value_is_one(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, 4)
        lock = TatasLock(machine.allocator)
        observed = []

        def program(ctx):
            yield from lock.acquire(ctx)
            observed.append(machine.protocol.memory.read(lock.addr))
            yield from lock.release()

        machine.run([program(machine.ctx(0))])
        assert observed == [1]

    def test_software_backoff_variant_still_correct(self, machine_factory):
        machine = machine_factory("DeNovoSync", 4)
        lock = TatasLock(machine.allocator, software_backoff=True)
        region = machine.allocator.region("c.data")
        counter = machine.allocator.alloc("c.data").base
        programs = [
            locked_increment_program(machine, lock, region, counter, machine.ctx(i), 5)
            for i in range(4)
        ]
        machine.run(programs)
        assert machine.protocol.memory.read(counter) == 20


class TestArrayLockDetails:
    def test_slots_cycle_in_fifo_order(self, protocol_name, machine_factory):
        machine = machine_factory(protocol_name, 4)
        lock = ArrayLock(machine.allocator, nslots=4)
        machine.initial_values = lock.initial_values()
        order = []

        def program(ctx, delay):
            yield Compute(delay)
            slot = yield from lock.acquire(ctx)
            order.append((ctx.core_id, slot))
            yield Compute(100)
            yield from lock.release(slot)

        programs = [program(machine.ctx(i), 1 + i * 2000) for i in range(4)]
        machine.run(programs)
        # Tickets (and hence slots) are handed out in arrival order.
        assert [slot for _, slot in order] == [0, 1, 2, 3]
        assert [core for core, _ in order] == [0, 1, 2, 3]

    def test_invalid_nslots_rejected(self, machine_factory):
        machine = machine_factory("MESI", 4)
        with pytest.raises(ValueError):
            ArrayLock(machine.allocator, nslots=0)
