"""Tests for the mesh topology, message sizing and traffic ledger."""

import pytest

from repro.config import config_16, config_64
from repro.noc.mesh import Mesh
from repro.noc.messages import (
    BYTES_PER_FLIT,
    CONTROL_FLITS,
    MessageClass,
    control_flits,
    data_flits,
)
from repro.noc.traffic import TrafficLedger


class TestMeshTopology:
    def test_coords_row_major(self):
        mesh = Mesh(config_16())
        assert mesh.coords(0) == (0, 0)
        assert mesh.coords(3) == (3, 0)
        assert mesh.coords(4) == (0, 1)
        assert mesh.coords(15) == (3, 3)

    def test_coords_out_of_range(self):
        mesh = Mesh(config_16())
        with pytest.raises(ValueError):
            mesh.coords(16)

    def test_hops_manhattan(self):
        mesh = Mesh(config_16())
        assert mesh.hops(0, 0) == 0
        assert mesh.hops(0, 3) == 3
        assert mesh.hops(0, 15) == 6
        assert mesh.hops(5, 10) == 2

    def test_hops_symmetric(self):
        mesh = Mesh(config_64())
        for a, b in [(0, 63), (10, 20), (7, 56)]:
            assert mesh.hops(a, b) == mesh.hops(b, a)

    def test_controllers_at_corners(self):
        mesh = Mesh(config_16())
        assert mesh._controller_tiles == (0, 3, 12, 15)

    def test_nearest_controller(self):
        mesh = Mesh(config_16())
        assert mesh.nearest_controller(0) == 0
        assert mesh.nearest_controller(5) == 0  # ties break to lowest id
        assert mesh.nearest_controller(11) == 15


class TestLatencyModel:
    @pytest.mark.parametrize("config", [config_16(), config_64()])
    def test_l2_range_matches_table1(self, config):
        mesh = Mesh(config)
        latencies = [
            mesh.l2_access_latency(c, b)
            for c in range(config.num_cores)
            for b in range(config.l2_banks)
        ]
        assert min(latencies) == config.l2_hit_latency.min
        assert max(latencies) == config.l2_hit_latency.max

    @pytest.mark.parametrize("config", [config_16(), config_64()])
    def test_remote_l1_range_matches_table1(self, config):
        mesh = Mesh(config)
        latencies = [
            mesh.remote_l1_latency(0, b, o)
            for b in range(config.l2_banks)
            for o in range(config.num_cores)
        ]
        assert min(latencies) == config.remote_l1_latency.min
        assert max(latencies) == config.remote_l1_latency.max

    @pytest.mark.parametrize("config", [config_16(), config_64()])
    def test_memory_range_within_table1(self, config):
        mesh = Mesh(config)
        latencies = [
            mesh.memory_latency(c, b)
            for c in range(config.num_cores)
            for b in range(config.l2_banks)
        ]
        assert min(latencies) >= config.memory_latency.min
        assert max(latencies) == config.memory_latency.max

    def test_latency_grows_with_distance(self):
        mesh = Mesh(config_16())
        assert mesh.l2_access_latency(0, 0) < mesh.l2_access_latency(0, 15)

    def test_invalidation_round_trip_zero_hops(self):
        mesh = Mesh(config_16())
        assert mesh.invalidation_round_trip(3, 3) == 4  # processing only

    def test_invalidation_round_trip_grows(self):
        mesh = Mesh(config_16())
        assert mesh.invalidation_round_trip(0, 15) > mesh.invalidation_round_trip(0, 1)


class TestMessageSizing:
    def test_control_flits(self):
        assert control_flits() == CONTROL_FLITS

    def test_data_flits_word(self):
        assert data_flits(4) == CONTROL_FLITS + 2

    def test_data_flits_line(self):
        assert data_flits(64) == CONTROL_FLITS + 32

    def test_data_flits_rounds_up(self):
        assert data_flits(3) == CONTROL_FLITS + 2
        assert data_flits(1) == CONTROL_FLITS + 1

    def test_data_flits_zero_payload(self):
        assert data_flits(0) == CONTROL_FLITS

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            data_flits(-1)

    def test_flit_carries_two_bytes(self):
        assert BYTES_PER_FLIT == 2  # 16-bit flits per Table 1


class TestTrafficLedger:
    def test_flit_crossings_multiply_hops(self):
        ledger = TrafficLedger()
        ledger.record(MessageClass.LOAD, flits=10, hops=3)
        assert ledger.flit_crossings() == 30
        assert ledger.flit_crossings(MessageClass.LOAD) == 30
        assert ledger.flit_crossings(MessageClass.STORE) == 0

    def test_zero_hop_messages_are_free(self):
        ledger = TrafficLedger()
        ledger.record(MessageClass.LOAD, flits=10, hops=0)
        assert ledger.flit_crossings() == 0
        assert ledger.message_count() == 1

    def test_breakdown_covers_all_classes(self):
        ledger = TrafficLedger()
        ledger.record(MessageClass.INVALIDATION, 5, 2)
        breakdown = ledger.breakdown()
        assert breakdown["Inv"] == 10
        assert set(breakdown) == {"LD", "ST", "SYNCH", "WB", "Inv"}

    def test_merged_with(self):
        a, b = TrafficLedger(), TrafficLedger()
        a.record(MessageClass.LOAD, 5, 1)
        b.record(MessageClass.LOAD, 5, 2)
        b.record(MessageClass.WRITEBACK, 2, 2)
        merged = a.merged_with(b)
        assert merged.flit_crossings(MessageClass.LOAD) == 15
        assert merged.flit_crossings(MessageClass.WRITEBACK) == 4
        # originals untouched
        assert a.flit_crossings() == 5

    def test_negative_rejected(self):
        ledger = TrafficLedger()
        with pytest.raises(ValueError):
            ledger.record(MessageClass.LOAD, -1, 2)

    def test_merged_with_preserves_zero_count_keys(self):
        # A zero-hop message records 0 flit crossings but 1 message; the
        # merge must not drop the key (Counter.__add__ would).
        a, b = TrafficLedger(), TrafficLedger()
        a.record(MessageClass.WRITEBACK, 5, 0)  # co-located: zero crossings
        b.record(MessageClass.LOAD, 3, 2)
        merged = a.merged_with(b)
        assert MessageClass.WRITEBACK.value in merged.breakdown()
        assert merged.flit_crossings(MessageClass.WRITEBACK) == 0
        assert merged.message_count(MessageClass.WRITEBACK) == 1
        assert merged.message_count() == 2

    def test_breakdown_total_over_foreign_keys(self):
        # A protocol extension may record under its own key; the ledger
        # must keep it: breakdown() is total over every recorded key, and
        # merging never drops a class (zero-count classes included).
        a, b = TrafficLedger(), TrafficLedger()
        a.record("ext-probe", 4, 3)
        a.record(MessageClass.LOAD, 2, 0)  # zero crossings, must survive
        b.record("ext-probe", 1, 1)
        merged = a.merged_with(b)
        assert merged.breakdown()["ext-probe"] == 13
        assert merged.flit_crossings("ext-probe") == 13
        assert merged.message_count("ext-probe") == 2
        assert merged.breakdown()[MessageClass.LOAD.value] == 0
        assert merged.message_count() == 2 + 1
        # every recorded key and every MessageClass member is present
        assert set(merged.breakdown()) == {m.value for m in MessageClass} | {
            "ext-probe"
        }
        assert merged.flit_crossings() == sum(merged.breakdown().values())

    def test_merged_with_zero_keys_from_both_sides(self):
        a, b = TrafficLedger(), TrafficLedger()
        a.record(MessageClass.LOAD, 2, 0)
        b.record(MessageClass.STORE, 4, 0)
        merged = a.merged_with(b)
        assert MessageClass.LOAD.value in merged.breakdown()
        assert MessageClass.STORE.value in merged.breakdown()
        assert merged.flit_crossings() == 0
        assert merged.message_count() == 2
