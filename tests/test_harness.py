"""Tests for the experiment harness, reporting, and CLI."""

import io

import pytest

from repro.config import config_16
from repro.harness.cli import main as cli_main
from repro.harness.experiments import (
    run_apps_figure,
    run_eqcheck_ablation,
    run_kernel_figure,
    run_sw_backoff_ablation,
)
from repro.harness.report import figure_summary, print_figure
from repro.harness.runner import SimulationStuck, run_workload
from repro.stats.collector import normalize_to
from repro.workloads.base import KernelSpec, Workload, WorkloadInstance
from repro.workloads.registry import make_kernel

SCALE = 0.03


@pytest.fixture(scope="module")
def fig3_16():
    return run_kernel_figure("tatas", core_counts=(16,), scale=SCALE, seed=1)


class TestKernelFigure:
    def test_row_per_kernel(self, fig3_16):
        assert len(fig3_16.rows) == 6
        assert {row.workload for row in fig3_16.rows} == {
            "single Q", "double Q", "stack", "heap", "counter", "large CS",
        }

    def test_default_protocol_set_per_row(self, fig3_16):
        from repro.harness.experiments import KERNEL_PROTOCOLS

        for row in fig3_16.rows:
            assert set(row.results) == set(KERNEL_PROTOCOLS)

    def test_relative_metrics(self, fig3_16):
        row = fig3_16.rows[0]
        assert row.rel_time("MESI") == 1.0
        assert row.rel_traffic("MESI") == 1.0
        assert row.rel_time("DeNovoSync") > 0

    def test_denovo_saves_traffic_on_tatas(self, fig3_16):
        """The paper's headline: large traffic savings on TATAS kernels."""
        for row in fig3_16.rows:
            assert row.rel_traffic("DeNovoSync") < 1.0


class TestAppsFigure:
    def test_rows_and_cores(self):
        result = run_apps_figure(scale=0.05, seed=2, names=["FFT", "ferret"])
        assert [row.workload for row in result.rows] == ["FFT", "ferret"]
        assert result.rows[0].num_cores == 64
        assert result.rows[1].num_cores == 16
        from repro.harness.experiments import APP_PROTOCOLS

        for row in result.rows:
            assert set(row.results) == set(APP_PROTOCOLS)


class TestReport:
    def test_print_figure_contains_rows(self, fig3_16):
        buffer = io.StringIO()
        print_figure(fig3_16, buffer)
        text = buffer.getvalue()
        assert "Figure 3" in text
        for name in ("single Q", "large CS"):
            assert name in text
        for label in (" M ", "DS0", " DS "):
            assert label.strip() in text

    def test_summary_averages(self, fig3_16):
        summary = figure_summary(fig3_16)
        assert summary["MESI"]["avg_rel_time"] == pytest.approx(1.0)
        assert 0 < summary["DeNovoSync"]["avg_rel_time"] < 2.0


class TestAblations:
    def test_sw_backoff_ablation_labels(self):
        results = run_sw_backoff_ablation(cores=16, scale=SCALE)
        assert set(results) == {"no backoff", "sw backoff"}

    def test_eqcheck_ablation_runs_both_variants(self):
        results = run_eqcheck_ablation(cores=16, scale=SCALE)
        assert set(results) == {"original checks", "reduced checks"}
        for result in results.values():
            assert {row.workload for row in result.rows} == {
                "Herlihy stack", "Herlihy heap",
            }

    def test_eqchecks_cost_denovo_more(self):
        """Extra pointer re-reads are near-free under MESI but registration
        misses under DeNovo (section 7.1.3)."""
        results = run_eqcheck_ablation(cores=16, scale=0.05)

        def denovo_time(result):
            return sum(
                row.results["DeNovoSync"].cycles for row in result.rows
            )

        assert denovo_time(results["reduced checks"]) < denovo_time(
            results["original checks"]
        )


class TestRunner:
    def test_deadlock_detection(self):
        from repro.cpu.isa import WaitLoad
        from repro.mem.address import AddressMap
        from repro.mem.regions import RegionAllocator

        class Deadlock(Workload):
            name = "deadlock"

            def build(self, config, *, seed=0):
                allocator = RegionAllocator(AddressMap(config))
                flag = allocator.alloc_sync("flag").base

                def waiter():
                    yield WaitLoad(flag, lambda v: v == 1, sync=True)

                programs = [waiter()]
                from repro.cpu.isa import Compute

                def idle():
                    yield Compute(1)

                programs += [idle() for _ in range(config.num_cores - 1)]
                return WorkloadInstance("deadlock", allocator, programs)

        with pytest.raises(SimulationStuck):
            run_workload(Deadlock(), "MESI", config_16())

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            run_workload(make_kernel("tatas", "counter"), "MOESI", config_16())


class TestNormalize:
    def test_normalize_to_baseline(self):
        workload = make_kernel("tatas", "counter", spec=KernelSpec(scale=SCALE))
        base = run_workload(workload, "MESI", config_16(), seed=1)
        workload = make_kernel("tatas", "counter", spec=KernelSpec(scale=SCALE))
        other = run_workload(workload, "DeNovoSync", config_16(), seed=1)
        rows = normalize_to([base, other], base)
        assert rows[0]["rel_time"] == pytest.approx(1.0)
        assert rows[1]["rel_time"] == other.cycles / base.cycles


class TestCli:
    def test_cli_fig3_to_files(self, tmp_path, monkeypatch):
        code = cli_main(
            ["fig3", "--cores", "16", "--scale", "0.02", "--out", str(tmp_path)]
        )
        assert code == 0
        text = (tmp_path / "fig3.txt").read_text()
        assert "Figure 3" in text

    def test_cli_rejects_unknown_target(self):
        with pytest.raises(SystemExit):
            cli_main(["fig99"])
