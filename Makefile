# Developer entry points for the DeNovoSync reproduction.

PYTHON ?= python

.PHONY: install test test-fast lint sanitize bench figures examples clean

install:
	pip install -e ".[dev]"

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -k "not paper_shapes and not differential"

lint:
	ruff check src tests

# DRF-contract sanitizer: lint the synclib/workloads sources and sweep
# every kernel x protocol for unannotated races and stale-read hazards.
sanitize:
	$(PYTHON) -m repro.harness.cli sanitize --jobs 0

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper figure into results/ (text tables).
figures:
	$(PYTHON) -m repro.harness.cli all --out results/

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

clean:
	rm -rf results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
