# Developer entry points for the DeNovoSync reproduction.

PYTHON ?= python

# Let every target work from a fresh checkout (no `pip install -e .`
# needed); with the package installed this still prefers the checkout.
export PYTHONPATH := src:$(PYTHONPATH)

.PHONY: install test test-fast lint typecheck formal sanitize serve chaos-service bench bench-micro profile figures examples clean

install:
	pip install -e ".[dev]"

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -x -q -k "not paper_shapes and not differential"

lint:
	ruff check src tests

# Static types on the typed subset (config, registry, formal models);
# the [tool.mypy] files list in pyproject.toml is the source of truth.
typecheck:
	$(PYTHON) -m mypy

# Formal verification: conformance + model exploration + the litmus
# divergence oracle + TLA+ export for every protocol with a model.
formal:
	$(PYTHON) -m repro.harness.cli formal --jobs 0

# DRF-contract sanitizer: lint the synclib/workloads sources and sweep
# every kernel x protocol for unannotated races and stale-read hazards.
sanitize:
	$(PYTHON) -m repro.harness.cli sanitize --jobs 0

# Simulation-as-a-service: persistent sweep job server, e.g.:
#   make serve PORT=8642 WORKERS=8
# then: denovosync-bench submit --port 8642 --sweep-family tatas --wait
PORT ?= 8642
WORKERS ?= 0
serve:
	$(PYTHON) -m repro.harness.cli serve --port $(PORT) --workers $(WORKERS)

# Service-level chaos: SIGKILL workers mid-sweep against a live server
# and assert it self-heals (every cell settles, cache invariant holds).
chaos-service:
	$(PYTHON) -m repro.harness.cli chaos-service --workers 2 --kills 2 \
		--cell-deadline 5.0

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Engine/dispatch microbenchmarks with the committed-baseline gate
# (exact event counts + throughput floor; see benchmarks/bench_engine_micro.py).
bench-micro:
	$(PYTHON) benchmarks/bench_engine_micro.py --compare results/bench_baseline.json --strict-counts

# cProfile one workload end to end, e.g.:
#   make profile WORKLOAD=tatas/counter PROTO=DeNovoSync CORES=64
WORKLOAD ?= tatas/counter
PROTO ?= DeNovoSync
CORES ?= 64
profile:
	$(PYTHON) -m repro.harness.cli profile --workload "$(WORKLOAD)" \
		--protocol $(PROTO) --cores $(CORES) --top 25

# Regenerate every paper figure into results/ (text tables).
figures:
	$(PYTHON) -m repro.harness.cli all --out results/

examples:
	@for f in examples/*.py; do echo "== $$f"; $(PYTHON) $$f; done

clean:
	rm -rf .pytest_cache .benchmarks
	# results/ holds generated figures and the sweep cache, but
	# bench_baseline.json is committed (the perf-smoke reference).
	find results -mindepth 1 ! -name bench_baseline.json -exec rm -rf {} + 2>/dev/null || true
	find . -name __pycache__ -type d -exec rm -rf {} +
