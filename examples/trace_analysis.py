"""Trace a workload, analyze its sharing pattern, replay it elsewhere.

Demonstrates the trace subsystem end to end:

1. run the Michael-Scott queue kernel under MESI with tracing on;
2. analyze the trace — hit rates, the hottest words, sharing degrees
   (the queue's head/tail/next words should dominate);
3. replay the recorded reference stream under DeNovoSync and compare the
   protocols on *identical* access sequences (classic trace-driven
   methodology).

    python examples/trace_analysis.py
"""

from repro.config import config_16
from repro.harness.runner import run_workload
from repro.trace.analysis import interleaving_histogram, summarize
from repro.trace.replay import TraceReplayWorkload
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel


def main() -> None:
    workload = make_kernel("nonblocking", "M-S queue", spec=KernelSpec(scale=0.1))
    traced = run_workload(workload, "MESI", config_16(), seed=1, trace=True)
    trace = traced.meta["trace"]

    summary = summarize(trace)
    print(f"Recorded {summary.accesses} accesses "
          f"({summary.sync_accesses} synchronization)")
    print(f"  hit rate {summary.hit_rate:.1%}, "
          f"avg latency {summary.avg_latency:.1f} cycles "
          f"(misses {summary.avg_miss_latency:.1f})")
    print(f"  {summary.read_shared_words} read-shared words, "
          f"max sharing degree {summary.max_sharing_degree}")
    print("  hottest words:")
    for addr, count in summary.hot_words[:5]:
        sharers = len(interleaving_histogram(trace, addr))
        print(f"    word {addr:6d}: {count:5d} accesses from {sharers} cores")

    print("\nReplaying the same reference stream:")
    for protocol in ("MESI", "DeNovoSync"):
        replay = TraceReplayWorkload(trace)
        result = run_workload(replay, protocol, config_16(), seed=0)
        print(f"  {protocol:>12s}: {result.cycles:8d} cycles, "
              f"traffic {result.total_traffic:8d}")
    print(
        "\nThe replayed DeNovoSync run shows what the identical access"
        "\nsequence costs without writer-initiated invalidations."
    )


if __name__ == "__main__":
    main()
