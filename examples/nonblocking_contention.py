"""Non-blocking data structures under contention: where DeNovoSync0 hurts
and hardware backoff helps.

The Michael-Scott queue does several synchronization reads (equality
checks) per CAS.  Under DeNovoSync0 each of those reads must *register*,
stealing the word from whoever read it last — the pre-linearization cost
of section 6.2.  DeNovoSync's per-core hardware backoff delays reads to
recently-stolen (Valid-state) words, trading memory stall for shorter
backoff stalls.

This example contrasts the M-S queue (read-heavy) with the Treiber stack
(one hot word, CAS-dominated) at rising core counts and prints the
counters that explain the difference: sync read misses, registration
steals, and hardware backoff events.

    python examples/nonblocking_contention.py
"""

from repro.config import config_for_cores
from repro.harness.runner import run_workload
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel


def main() -> None:
    for kernel in ("M-S queue", "Treiber stack"):
        print(f"== {kernel} ==")
        print(
            f"{'cores':>5s} {'proto':>5s} {'rel time':>8s} {'rel traffic':>11s} "
            f"{'sync misses':>11s} {'steals':>8s} {'hw backoffs':>11s}"
        )
        for cores in (16, 64):
            config = config_for_cores(cores)
            base = None
            for protocol in ("MESI", "DeNovoSync0", "DeNovoSync"):
                workload = make_kernel(
                    "nonblocking", kernel, spec=KernelSpec(scale=0.1)
                )
                result = run_workload(workload, protocol, config, seed=1)
                if base is None:
                    base = result
                label = {"MESI": "M", "DeNovoSync0": "DS0", "DeNovoSync": "DS"}[protocol]
                print(
                    f"{cores:5d} {label:>5s} "
                    f"{result.cycles / base.cycles:8.2f} "
                    f"{result.total_traffic / base.total_traffic:11.2f} "
                    f"{result.counters.get('sync_read_misses'):11d} "
                    f"{result.counters.get('read_registration_steals'):8d} "
                    f"{result.counters.get('hw_backoff_events'):11d}"
                )
        print()
    print(
        "Read-heavy CAS loops (M-S queue) are DeNovo's worst case: every\n"
        "equality check is a registering miss.  Single-hot-word structures\n"
        "(Treiber) favour DeNovo: the linearizing CAS is a point-to-point\n"
        "registration transfer instead of an invalidation storm."
    )


if __name__ == "__main__":
    main()
