"""Quickstart: compare MESI, DeNovoSync0 and DeNovoSync on one kernel.

Runs the TATAS-lock counter kernel (16 simulated cores, a scaled-down
version of the paper's Figure 3 setup) under all three protocols and
prints execution time, its decomposition, and network traffic by message
class — the same quantities as the paper's stacked bars.

    python examples/quickstart.py
"""

from repro.config import config_16
from repro.harness.runner import run_workload
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel


def main() -> None:
    config = config_16()
    spec = KernelSpec(scale=0.2)  # 20 of the paper's 100 iterations

    results = {}
    for protocol in ("MESI", "DeNovoSync0", "DeNovoSync"):
        workload = make_kernel("tatas", "counter", spec=spec)
        results[protocol] = run_workload(workload, protocol, config, seed=1)

    baseline = results["MESI"]
    print(f"TATAS counter kernel, {config.num_cores} cores, scale {spec.scale}")
    print(f"{'protocol':>12s} {'cycles':>10s} {'vs MESI':>8s} {'traffic':>10s} {'vs MESI':>8s}")
    for protocol, result in results.items():
        print(
            f"{protocol:>12s} {result.cycles:10d} "
            f"{result.cycles / baseline.cycles:8.2f} "
            f"{result.total_traffic:10d} "
            f"{result.total_traffic / baseline.total_traffic:8.2f}"
        )

    print("\nExecution-time decomposition (mean cycles per core):")
    for protocol, result in results.items():
        parts = ", ".join(
            f"{name}={cycles:.0f}"
            for name, cycles in result.avg_time_breakdown.items()
            if cycles
        )
        print(f"  {protocol:>12s}: {parts}")

    print("\nNetwork traffic by message class (flit-link crossings):")
    for protocol, result in results.items():
        parts = ", ".join(
            f"{name}={flits}" for name, flits in result.traffic_breakdown().items() if flits
        )
        print(f"  {protocol:>12s}: {parts}")

    print(
        "\nNote how DeNovo replaces MESI's Inv/WB traffic with point-to-point"
        "\nSYNCH registrations and ships words instead of whole lines."
    )


if __name__ == "__main__":
    main()
