"""Writing your own workload against the simulator's public API.

Builds a small producer/consumer pipeline from scratch — shared variables
from the region allocator, thread programs as generators yielding ISA
operations, a tree barrier from the synchronization library — and runs it
under all three protocols.  This is the pattern every kernel in
``repro.workloads`` follows, so it is the template for adding your own.

    python examples/custom_workload.py
"""

from repro.config import config_for_cores
from repro.cpu.isa import Compute, Load, SelfInvalidate, Store, WaitLoad
from repro.harness.runner import run_workload
from repro.mem.address import AddressMap
from repro.mem.regions import RegionAllocator
from repro.synclib.barriers import TreeBarrier
from repro.workloads.base import Workload, WorkloadInstance

ITEMS = 20
BATCH_WORDS = 8


class HandoffPipeline(Workload):
    """Each thread produces batches for its right neighbour.

    The payload is *data* (self-invalidated by the consumer at the
    acquire); the sequence flag is a *synchronization* variable published
    with a release store — the canonical flag-based producer/consumer the
    data-race-free model is built around.
    """

    name = "handoff-pipeline"

    def build(self, config, *, seed=0):
        import random

        from repro.cpu.thread import ThreadCtx

        allocator = RegionAllocator(AddressMap(config))
        n = config.num_cores
        flags = [allocator.alloc_sync(f"flag{t}").base for t in range(n)]
        payload_region = allocator.region("payload")
        payloads = [
            allocator.alloc("payload", BATCH_WORDS, line_align=True).base
            for _ in range(n)
        ]
        barrier = TreeBarrier(allocator, n, name="end")

        def program(ctx: ThreadCtx):
            me, left = ctx.core_id, ctx.core_id - 1
            for seq in range(1, ITEMS + 1):
                if left >= 0:
                    # Acquire: wait for the item, then self-invalidate the
                    # payload region so the data reads are fresh.
                    yield WaitLoad(flags[left], lambda v, s=seq: v >= s, sync=True)
                    yield SelfInvalidate((payload_region,))
                    total = 0
                    for w in range(BATCH_WORDS):
                        total += yield Load(payloads[left] + w)
                yield Compute(ctx.rng.randrange(100, 300))  # "work"
                if me < ctx.num_cores - 1:
                    for w in range(BATCH_WORDS):
                        yield Store(payloads[me] + w, seq * 100 + w)
                    # Release: publish the sequence number.
                    yield Store(flags[me], seq, sync=True, release=True)
            yield from barrier.wait(ctx, episode=1)

        programs = [
            program(
                ThreadCtx(
                    core_id=i,
                    num_cores=n,
                    config=config,
                    allocator=allocator,
                    rng=random.Random(seed * 97 + i),
                )
            )
            for i in range(n)
        ]
        return WorkloadInstance(self.name, allocator, programs)


def main() -> None:
    config = config_for_cores(16)
    print(f"{ITEMS}-item handoff pipeline over {config.num_cores} cores")
    base = None
    for protocol in ("MESI", "DeNovoSync0", "DeNovoSync"):
        result = run_workload(HandoffPipeline(), protocol, config, seed=3)
        if base is None:
            base = result
        print(
            f"{protocol:>12s}: {result.cycles:8d} cycles "
            f"({result.cycles / base.cycles:4.2f}x), "
            f"traffic {result.total_traffic:8d} "
            f"({result.total_traffic / base.total_traffic:4.2f}x)"
        )


if __name__ == "__main__":
    main()
