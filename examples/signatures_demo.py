"""Write signatures vs static regions vs no information at all.

The DeNovo data-consistency spectrum on one workload (the fluidanimate
model, whose conservative static regions are the paper's worst case):

* MESI — no self-invalidation needed (writer-initiated invalidations);
* DeNovoSync, selective regions — the paper's assumption;
* DeNovoSync, flush-all — the section 3 no-information fallback;
* DeNovoSyncSig — DeNovoND-style hardware write signatures (the paper's
  future-work direction): per-acquire deltas of exactly what was
  written, with zero software region information.

    python examples/signatures_demo.py
"""

from dataclasses import replace

from repro.config import config_64
from repro.harness.runner import run_workload
from repro.workloads.apps import APP_PROFILES, AppWorkload


def main() -> None:
    config = config_64()
    base_profile = APP_PROFILES["fluidanimate"]
    runs = [
        ("MESI", "MESI", base_profile),
        ("DeNovoSync + static regions", "DeNovoSync", base_profile),
        (
            "DeNovoSync + flush-all",
            "DeNovoSync",
            replace(base_profile, flush_all_selfinv=True),
        ),
        ("DeNovoSyncSig (signatures)", "DeNovoSyncSig", base_profile),
    ]

    baseline = None
    print(f"fluidanimate model, {config.num_cores} cores")
    print(f"{'configuration':>30s} {'time':>6s} {'traffic':>8s} {'invalidated':>12s}")
    for label, protocol, profile in runs:
        result = run_workload(
            AppWorkload(profile, scale=0.4), protocol, config, seed=2
        )
        if baseline is None:
            baseline = result
        print(
            f"{label:>30s} {result.cycles / baseline.cycles:6.2f} "
            f"{result.total_traffic / baseline.total_traffic:8.2f} "
            f"{result.counters.get('self_invalidated_words'):12d}"
        )
    print(
        "\nLess information means more invalidation: flush-all discards"
        "\nevery cached word at each acquire; static regions discard the"
        "\nwhole protected region; signatures discard only what was"
        "\nactually written since this core's last acquire."
    )


if __name__ == "__main__":
    main()
