"""Lock shootout: how lock algorithms interact with coherence protocols.

The paper's section 6 analysis in one script: TATAS locks hand off through
a single hot word (writer-initiated invalidations put MESI's invalidation
storm on the critical path; DeNovo's read registrations ping-pong), while
Anderson array locks give every waiter its own word (all protocols look
alike, but MESI pays an extra ownership request to reset the flag).

Sweeps both lock types over 4/16/64 cores and prints the handoff costs.

    python examples/lock_shootout.py
"""

from repro.config import config_for_cores
from repro.harness.runner import run_workload
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel


def main() -> None:
    spec_scale = 0.1
    print(f"{'lock':>8s} {'cores':>5s} "
          f"{'MESI':>10s} {'DS0':>14s} {'DS':>14s}   (cycles, normalized)")
    for lock_type in ("tatas", "array"):
        for cores in (4, 16, 64):
            config = config_for_cores(cores)
            row = {}
            for protocol in ("MESI", "DeNovoSync0", "DeNovoSync"):
                workload = make_kernel(
                    lock_type, "counter", spec=KernelSpec(scale=spec_scale)
                )
                row[protocol] = run_workload(workload, protocol, config, seed=1)
            base = row["MESI"].cycles
            print(
                f"{lock_type:>8s} {cores:5d} {base:10d} "
                f"{row['DeNovoSync0'].cycles:8d} ({row['DeNovoSync0'].cycles / base:4.2f}) "
                f"{row['DeNovoSync'].cycles:8d} ({row['DeNovoSync'].cycles / base:4.2f})"
            )

    print(
        "\nTATAS: DeNovo's advantage grows with core count — MESI must"
        "\ninvalidate every spinner on each release, and that round trip is"
        "\non the lock-handoff critical path.  Array locks: single waiter"
        "\nper word, so the protocols converge (the paper's section 6.1)."
    )


if __name__ == "__main__":
    main()
