"""Extension: is DeNovoSync "just" read-for-ownership?  (section 8)

QOLB-era work dismissed RFO synchronization reads on invalidation
protocols; the paper argues its read registration is a judicious RFO.
This bench runs plain MESI, MESI-RFO, and DeNovoSync side by side on the
kernels that separate the three designs:

* array-lock kernels — RFO should recover MESI's extra flag-reset write
  miss (the single-waiter case where RFO shines);
* TATAS and non-blocking kernels — RFO inherits MESI's invalidation
  storms *plus* R-R ping-pong, while DeNovoSync's registry (no blocking
  directory, no sharer lists, word-granularity transfers, hardware
  backoff) keeps the RFO idea cheap.
"""

from __future__ import annotations

from _bench_utils import bench_scale

from repro.harness.experiments import run_kernel_figure

PROTOCOLS = ("MESI", "MESI-RFO", "DeNovoSync")


def _run():
    results = {}
    for family, names in (
        ("array", ["counter", "stack"]),
        ("tatas", ["counter"]),
        ("nonblocking", ["M-S queue", "Treiber stack"]),
    ):
        results[family] = run_kernel_figure(
            family,
            core_counts=(16, 64),
            scale=bench_scale(),
            names=names,
            protocols=PROTOCOLS,
        )
    return results


def test_bench_ext_rfo(benchmark, figure_reporter):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    for family, result in results.items():
        figure_reporter(f"ext_rfo_{family}", result)
    # RFO must not lose to plain MESI on the array locks (single waiter,
    # the write miss it exists to save)...
    for row in results["array"].rows:
        assert row.rel_time("MESI-RFO") <= 1.10
