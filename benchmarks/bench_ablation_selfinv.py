"""Section 3 ablation: selective vs flush-all self-invalidation.

The paper assumes compiler-provided regions make acquires invalidate only
the data the synchronization protects; without that information DeNovo
must flush every Valid word at each acquire — always correct, but it
destroys all cached reuse.  This bench quantifies the gap on a
barriers+locks application (water) under DeNovoSync, against the common
MESI baseline.
"""

from __future__ import annotations

from repro.harness.experiments import run_selfinv_ablation


def test_bench_ablation_selfinv(benchmark, figure_reporter):
    results = benchmark.pedantic(
        run_selfinv_ablation,
        kwargs={"app": "water", "scale": 0.25},
        rounds=1,
        iterations=1,
    )
    for label, result in results.items():
        figure_reporter(f"ablation_selfinv_{label.replace(' ', '_')}", result)
    selective = results["selective regions"].rows[0]
    flush = results["flush-all"].rows[0]
    # Flushing everything must not be cheaper than selective invalidation.
    assert flush.rel_time("DeNovoSync") >= selective.rel_time("DeNovoSync") * 0.95
