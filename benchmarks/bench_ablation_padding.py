"""Section 7.1.1 ablation: lock padding.

Paper result: removing lock padding hurts MESI (false sharing between
lock words in one line) but also narrows the MESI-vs-DeNovo gap, because
word-granularity DeNovo must now issue separate requests for locks and
data sharing a line.
"""

from __future__ import annotations

from _bench_utils import bench_scale

from repro.harness.experiments import run_padding_ablation


def test_bench_ablation_padding(benchmark, figure_reporter):
    results = benchmark.pedantic(
        run_padding_ablation,
        kwargs={"cores": 16, "scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    for label, result in results.items():
        figure_reporter(f"ablation_padding_{label.replace(' ', '_')}", result)
