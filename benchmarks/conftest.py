"""Shared fixtures for the figure-reproduction benchmarks.

Every bench regenerates one of the paper's tables/figures, printing the
rows and writing them under ``results/``.  ``REPRO_BENCH_SCALE`` (default
0.05) sets the fraction of the paper's kernel iteration counts; the
figure *shapes* are stable across scales, and scale 1.0 reproduces the
paper's full methodology (slow in pure Python).
"""

from __future__ import annotations

import io
import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")


@pytest.fixture
def figure_reporter():
    """Returns a function that prints a FigureResult and saves it."""
    from repro.harness.report import print_figure

    def report(name: str, result) -> None:
        buffer = io.StringIO()
        print_figure(result, buffer)
        text = buffer.getvalue()
        print()
        print(text)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        mode = "a" if os.path.exists(path) else "w"
        with open(path, mode) as fh:
            fh.write(text)

    return report
