"""Figure 4: array-lock kernels at 16 and 64 cores.

Paper result: DeNovoSync0 and DeNovoSync are indistinguishable (array
locks have one waiter per flag word, so there are no spurious read
registrations to back off from); DeNovo is comparable or up to 24% better
than MESI except heap (6-7% worse, from conservative region
self-invalidation), with ~64% traffic savings.
"""

from __future__ import annotations

from _bench_utils import bench_scale

from repro.harness.experiments import run_kernel_figure


def test_bench_fig4_16_cores(benchmark, figure_reporter):
    result = benchmark.pedantic(
        run_kernel_figure,
        args=("array",),
        kwargs={"core_counts": (16,), "scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    figure_reporter("fig4_arraylock", result)


def test_bench_fig4_64_cores(benchmark, figure_reporter):
    result = benchmark.pedantic(
        run_kernel_figure,
        args=("array",),
        kwargs={"core_counts": (64,), "scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    figure_reporter("fig4_arraylock", result)
