"""Extension: lock-design study across coherence protocols.

Not a paper figure.  Compares the three lock families — TATAS (one hot
word), Anderson array (one padded flag per slot) and MCS (list-based
queue nodes) — on the counter kernel at both system sizes.  The paper's
section 6 analysis predicts: TATAS separates the protocols the most
(invalidation storms vs registration transfers on one word); the queuing
locks converge them (single spinner per word), with MESI paying an extra
ownership request on the array lock's flag reset.
"""

from __future__ import annotations

from _bench_utils import bench_scale

from repro.harness.experiments import run_kernel_figure
from repro.harness.report import figure_summary


def _run_all():
    return {
        lock_type: run_kernel_figure(
            lock_type,
            core_counts=(16, 64),
            scale=bench_scale(),
            names=["counter", "stack"],
        )
        for lock_type in ("tatas", "array", "mcs")
    }


def test_bench_ext_lock_design(benchmark, figure_reporter):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    for lock_type, result in results.items():
        figure_reporter(f"ext_lock_design_{lock_type}", result)
    # The queuing locks should separate the protocols less than TATAS.
    tatas = figure_summary(results["tatas"])["DeNovoSync"]["avg_rel_time"]
    mcs = figure_summary(results["mcs"])["DeNovoSync"]["avg_rel_time"]
    assert tatas <= mcs + 0.15
