"""Figure 7: the 13 SPLASH-2 / PARSEC application models.

Paper result: DeNovoSync matches MESI on execution time overall (4%
better on average; noticeably better for LU, water, ocean, ferret; 7%
worse for fluidanimate due to conservative self-invalidation) and cuts
network traffic by 24% on average.
"""

from __future__ import annotations

from _bench_utils import app_scale

from repro.harness.experiments import run_apps_figure


def test_bench_fig7_apps(benchmark, figure_reporter):
    result = benchmark.pedantic(
        run_apps_figure,
        kwargs={"scale": app_scale()},
        rounds=1,
        iterations=1,
    )
    figure_reporter("fig7_apps", result)
