"""Figure 3: TATAS-lock kernels at 16 and 64 cores.

Paper result: DeNovoSync is comparable or better than MESI across all six
kernels (31% lower time, 42% lower traffic on average); DeNovoSync0 wins
everywhere except large CS at 16 cores; the gap grows at 64 cores where
MESI's invalidation latency sits on the lock-handoff critical path.
"""

from __future__ import annotations

from _bench_utils import bench_scale

from repro.harness.experiments import run_kernel_figure


def test_bench_fig3_16_cores(benchmark, figure_reporter):
    result = benchmark.pedantic(
        run_kernel_figure,
        args=("tatas",),
        kwargs={"core_counts": (16,), "scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    figure_reporter("fig3_tatas", result)


def test_bench_fig3_64_cores(benchmark, figure_reporter):
    result = benchmark.pedantic(
        run_kernel_figure,
        args=("tatas",),
        kwargs={"core_counts": (64,), "scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    figure_reporter("fig3_tatas", result)
