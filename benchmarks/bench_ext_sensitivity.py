"""Extension: sensitivity of the headline results to calibration constants.

The simulator's micro-architectural calibration constants (directory
occupancy, DeNovo registration-chain link cost, backoff parameters) are
not published numbers; this bench sweeps them and checks that the
*orderings* the reproduction reports — who wins on a TATAS lock, the
direction of the M-S queue penalty — are robust across the swept range.
"""

from __future__ import annotations


from _bench_utils import bench_scale

from repro.config import BackoffConfig, ProtocolTuning, config_16, config_64
from repro.harness.runner import run_workload
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel


def _ratio(kernel_family, name, config, protocol, scale):
    workload = make_kernel(kernel_family, name, spec=KernelSpec(scale=scale))
    mesi = run_workload(workload, "MESI", config, seed=1)
    workload = make_kernel(kernel_family, name, spec=KernelSpec(scale=scale))
    other = run_workload(workload, protocol, config, seed=1)
    return other.cycles / mesi.cycles


def _sweep():
    scale = bench_scale()
    rows = []
    for occupancy in (8, 16, 32):
        for link in (2, 4, 8):
            tuning = ProtocolTuning(ownership_occupancy=occupancy, chain_link_cost=link)
            config = config_16(tuning=tuning)
            rows.append(
                {
                    "ownership_occupancy": occupancy,
                    "chain_link_cost": link,
                    "tatas counter DS/M": _ratio(
                        "tatas", "counter", config, "DeNovoSync", scale
                    ),
                    "M-S queue DS0/M": _ratio(
                        "nonblocking", "M-S queue", config, "DeNovoSync0", scale
                    ),
                }
            )
    return rows


def _backoff_sweep():
    scale = bench_scale()
    rows = []
    for bits, increment in ((9, 1), (12, 64), (12, 16), (9, 8)):
        backoff = BackoffConfig(bits, increment, update_period=64)
        config = config_64(backoff=backoff)
        rows.append(
            {
                "bits": bits,
                "increment": increment,
                "tatas counter DS/M": _ratio(
                    "tatas", "counter", config, "DeNovoSync", scale
                ),
            }
        )
    return rows


def test_bench_sensitivity_tuning(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print("== Sensitivity: directory occupancy x chain link cost (16 cores) ==")
    for row in rows:
        print(
            f"  occupancy={row['ownership_occupancy']:2d} link={row['chain_link_cost']} "
            f"TATAS DS/M={row['tatas counter DS/M']:.2f} "
            f"MSQ DS0/M={row['M-S queue DS0/M']:.2f}"
        )
    # Orderings must hold across the whole swept range.
    for row in rows:
        assert row["tatas counter DS/M"] < 1.0  # DeNovo wins TATAS
        assert row["M-S queue DS0/M"] > 0.9  # queue penalty direction


def test_bench_sensitivity_backoff(benchmark):
    rows = benchmark.pedantic(_backoff_sweep, rounds=1, iterations=1)
    print()
    print("== Sensitivity: backoff parameters (64 cores, TATAS counter) ==")
    for row in rows:
        print(
            f"  bits={row['bits']:2d} inc={row['increment']:2d} "
            f"DS/M={row['tatas counter DS/M']:.2f}"
        )
    for row in rows:
        assert row["tatas counter DS/M"] < 1.0
