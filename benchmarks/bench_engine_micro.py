"""Engine micro-benchmarks: scheduler throughput and end-to-end op rate.

Standalone — no pytest needed::

    PYTHONPATH=src python benchmarks/bench_engine_micro.py
    PYTHONPATH=src python benchmarks/bench_engine_micro.py --json out.json
    PYTHONPATH=src python benchmarks/bench_engine_micro.py \\
        --compare results/bench_baseline.json

Each scenario reports two things:

* a **fired-event count** — fully deterministic, compared *exactly* in
  ``--compare`` mode.  A count drift means the scheduler changed
  *behavior* (events created, lost, or double-fired), which is a
  correctness regression no matter how fast it got.
* a **throughput** (events or cycles per second) — compared against the
  baseline with a generous tolerance (CI machines vary widely; the gate
  is for order-of-magnitude regressions like an accidental O(n) scan in
  the hot loop, not for noise).

The scenarios stress the hybrid scheduler's distinct regimes: a serial
hand-off chain (wheel fast path), a fan-out mixing near deltas with
beyond-window deltas (wheel + heap interplay and migration), a cancel
storm (tombstone compaction on both sides), one real kernel run (the
end-to-end number the engine work was for), plus the epoch-execution
regimes: independent per-core chains (batched drain), a 64-core Neat
spin-heavy kernel (spin fast-forward), and its epoch-off control —
whose deterministic count must match the epoch-on twin exactly, checked
on every run.  ``--compare --strict-counts`` additionally fails when any
scenario lacks a baseline entry, so count gating covers new and existing
scenarios alike.
"""

from __future__ import annotations

import argparse
import json
import sys
from time import perf_counter

from repro.sim.engine import Simulator

#: Mix of in-window (< Simulator.WHEEL_SIZE) and far deltas, shaped like
#: the real workloads: mostly short steps, occasional long backoffs.
_DELTAS = (1, 2, 3, 5, 8, 100, 421, 500, 1023, 1024, 2048, 4095)


def _pingpong(n: int = 200_000):
    """Serial chain: each event schedules the next one cycle out."""
    sim = Simulator()
    left = [n]

    def hop(_arg):
        if left[0] > 0:
            left[0] -= 1
            sim.call_after(1, hop, None)

    sim.call_after(0, hop, None)
    start = perf_counter()
    fired = sim.run()
    return fired, perf_counter() - start


def _fanout_mix(n: int = 120_000):
    """Fan-out over mixed deltas: wheel and heap both stay populated."""
    sim = Simulator()
    budget = [n]

    def fire(_arg):
        b = budget[0]
        if b <= 0:
            return
        budget[0] = b - 1
        sim.call_after(_DELTAS[b % len(_DELTAS)], fire, None)
        if b & 1:
            sim.call_after(_DELTAS[(b * 7) % len(_DELTAS)], fire, None)

    sim.call_after(0, fire, None)
    start = perf_counter()
    fired = sim.run()
    return fired, perf_counter() - start


def _cancel_churn(rounds: int = 50, batch: int = 2_000):
    """Schedule storms, cancel half, drain: exercises compaction."""
    sim = Simulator()

    def noop():
        return None

    fired = 0
    start = perf_counter()
    for _ in range(rounds):
        handles = [
            sim.schedule_after((i * 13) % 3_000 + 1, noop) for i in range(batch)
        ]
        for handle in handles[::2]:
            handle.cancel()
        fired += sim.run()
    return fired, perf_counter() - start


def _kernel_ops():
    """One real kernel run: the end-to-end rate the engine work targets."""
    from repro.config import config_for_cores
    from repro.harness.runner import run_workload
    from repro.workloads.base import KernelSpec
    from repro.workloads.registry import make_kernel

    workload = make_kernel("tatas", "counter", spec=KernelSpec(scale=0.05))
    start = perf_counter()
    result = run_workload(workload, "DeNovoSync", config_for_cores(16), seed=1)
    return result.cycles, perf_counter() - start


def _uncontended_stretch(cores: int = 32, steps: int = 4_000):
    """Independent per-core local chains, all one cycle apart: the pure
    batched-drain regime of the epoch loop (every cycle's bucket holds
    one event per core, no heap traffic)."""
    sim = Simulator()
    remaining = [steps] * cores

    def step(core):
        left = remaining[core]
        if left > 0:
            remaining[core] = left - 1
            sim.call_after(1, step, core)

    for core in range(cores):
        sim.call_after(core % 7, step, core)
    start = perf_counter()
    fired = sim.run()
    return fired, perf_counter() - start


def _spin_heavy(epoch_mode: bool):
    """Neat's 64-core unbounded central barrier: 90%+ of its events are
    failed spin polls of LLC-resident flags, the spin fast-forward's
    target regime.  The epoch-off twin is the control: its cycle count
    must match exactly (main() enforces this every run)."""
    from repro.config import config_for_cores
    from repro.harness.runner import run_workload
    from repro.workloads.base import KernelSpec
    from repro.workloads.registry import make_kernel

    workload = make_kernel("barrier", "central (UB)", spec=KernelSpec(scale=0.02))
    start = perf_counter()
    result = run_workload(
        workload, "Neat", config_for_cores(64, epoch_mode=epoch_mode), seed=1
    )
    return result.cycles, perf_counter() - start


SCENARIOS = {
    "pingpong": (_pingpong, "events"),
    "fanout_mix": (_fanout_mix, "events"),
    "cancel_churn": (_cancel_churn, "events"),
    "kernel_tatas_16c": (_kernel_ops, "cycles"),
    "uncontended_stretch": (_uncontended_stretch, "events"),
    "spin_heavy_64c": (lambda: _spin_heavy(True), "cycles"),
    "spin_heavy_64c_noepoch": (lambda: _spin_heavy(False), "cycles"),
}

#: Scenario pairs that simulate the same cell in both engine modes:
#: their deterministic counts must agree exactly, every run.
MODE_TWINS = [("spin_heavy_64c", "spin_heavy_64c_noepoch")]


def run_all() -> dict:
    out = {}
    for name, (fn, unit) in SCENARIOS.items():
        count, seconds = fn()
        out[name] = {
            "count": count,
            "unit": unit,
            "seconds": round(seconds, 4),
            "rate": round(count / seconds) if seconds > 0 else 0,
        }
    return out


def _baseline_scenarios(path: str) -> dict:
    with open(path) as fh:
        data = json.load(fh)
    if "scenarios" in data:
        return data["scenarios"]
    return data["micro"]["scenarios"]


def compare(
    results: dict,
    baseline_path: str,
    tolerance: float,
    strict_counts: bool = False,
) -> int:
    baseline = _baseline_scenarios(baseline_path)
    failures = []
    for name, got in results.items():
        ref = baseline.get(name)
        if ref is None:
            if strict_counts:
                failures.append(
                    f"{name}: no baseline entry — record its count in the "
                    f"baseline (--strict-counts gates every scenario)"
                )
                print(f"{name:22s} (no baseline entry)  MISSING")
            else:
                print(f"{name:22s} (no baseline entry; recorded only)")
            continue
        if got["count"] != ref["count"]:
            failures.append(
                f"{name}: fired-count drift {ref['count']} -> {got['count']} "
                f"(scheduler behavior changed)"
            )
            status = "COUNT DRIFT"
        elif got["rate"] < ref["rate"] * tolerance:
            failures.append(
                f"{name}: rate {got['rate']}/s fell below "
                f"{tolerance:.0%} of baseline {ref['rate']}/s"
            )
            status = "TOO SLOW"
        else:
            status = "ok"
        print(
            f"{name:22s} {got['count']:>10d} {got['unit']:6s} "
            f"{got['rate']:>10d}/s (baseline {ref['rate']:>10d}/s)  {status}"
        )
    if failures:
        print("\nperf regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nperf regression gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, help="write results JSON here")
    parser.add_argument(
        "--compare", default=None,
        help="baseline JSON (bench_baseline.json or a prior --json output); "
        "exit non-zero on exact fired-count drift or a large slowdown",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.2,
        help="minimum acceptable fraction of the baseline rate (default 0.2)",
    )
    parser.add_argument(
        "--strict-counts", action="store_true",
        help="with --compare: also fail when a scenario has no baseline "
        "entry — every deterministic count field is gated, new and "
        "existing scenarios alike",
    )
    args = parser.parse_args(argv)

    results = run_all()
    for name, row in results.items():
        print(
            f"{name:22s} {row['count']:>10d} {row['unit']:6s} "
            f"in {row['seconds']:8.3f}s = {row['rate']:>10d}/s"
        )
    twin_failures = [
        f"{a} vs {b}: {results[a]['count']} != {results[b]['count']} — "
        "epoch and reference modes diverged on the same cell"
        for a, b in MODE_TWINS
        if results[a]["count"] != results[b]["count"]
    ]
    if twin_failures:
        print("\nepoch/reference mode twin check FAILED:")
        for failure in twin_failures:
            print(f"  - {failure}")
        return 1
    if args.json:
        with open(args.json, "w") as fh:
            json.dump({"scenarios": results}, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"results -> {args.json}")
    if args.compare:
        return compare(
            results, args.compare, args.tolerance,
            strict_counts=args.strict_counts,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
