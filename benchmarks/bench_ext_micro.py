"""Extension: coherence microbenchmarks across all protocols.

Single-pattern workloads whose counters read like protocol documentation:
false sharing hurts only line-granularity MESI; read-only sharing is free
everywhere; ping-pong isolates ownership-transfer latency; the
producer/consumer chain and all-to-all transpose bound the data-handoff
costs that the application models aggregate.
"""

from __future__ import annotations

from repro.config import config_for_cores
from repro.harness.runner import run_workload
from repro.workloads.micro import MICROBENCHES

PROTOCOLS = ("MESI", "DeNovoSync", "DeNovoSyncSig")
CORES = 16


def _run():
    results = {}
    for name, cls in MICROBENCHES.items():
        results[name] = {
            protocol: run_workload(
                cls(rounds=10), protocol, config_for_cores(CORES), seed=1
            )
            for protocol in PROTOCOLS
        }
    return results


def test_bench_ext_micro(benchmark):
    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(f"== Microbenchmarks ({CORES} cores, normalized to MESI) ==")
    print(f"{'bench':22s} " + " ".join(f"{p:>16s}" for p in PROTOCOLS))
    for name, by_protocol in results.items():
        base = by_protocol["MESI"]
        cells = " ".join(
            f"T={r.cycles / base.cycles:4.2f} N={r.total_traffic / base.total_traffic:4.2f}"
            for r in by_protocol.values()
        )
        print(f"{name:22s} {cells}")
    # False sharing is MESI's pathology alone.
    fs = results["micro.falsesharing"]
    assert fs["DeNovoSync"].cycles < fs["MESI"].cycles
    assert fs["MESI"].counters.get("invalidations_sent") > 0
    # Read-only sharing costs nobody anything after warm-up.
    ro = results["micro.readonly"]
    for result in ro.values():
        hits = result.counters.get("l1_hits")
        misses = result.counters.get("l1_misses")
        assert hits / (hits + misses) > 0.9
