"""Figure 5: non-blocking algorithms at 16 and 64 cores.

Paper result: mixed — the read-heavy multi-variable CAS loops (M-S queue,
PLJ queue) are where DeNovo's pre-linearization cost bites (DeNovoSync0
up to 60% worse than MESI at 64 cores), while Treiber/Herlihy/FAI are
comparable or better; DeNovo traffic is far lower throughout.
"""

from __future__ import annotations

from _bench_utils import bench_scale

from repro.harness.experiments import run_kernel_figure


def test_bench_fig5_16_cores(benchmark, figure_reporter):
    result = benchmark.pedantic(
        run_kernel_figure,
        args=("nonblocking",),
        kwargs={"core_counts": (16,), "scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    figure_reporter("fig5_nonblocking", result)


def test_bench_fig5_64_cores(benchmark, figure_reporter):
    result = benchmark.pedantic(
        run_kernel_figure,
        args=("nonblocking",),
        kwargs={"core_counts": (64,), "scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    figure_reporter("fig5_nonblocking", result)
