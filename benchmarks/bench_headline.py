"""The abstract's headline numbers, recomputed over all 48 kernel cases.

Paper abstract: "For a wide variety of synchronization constructs and
applications, compared to MESI, DeNovoSync shows comparable or up to 22%
lower execution time and up to 58% lower network traffic."  (The 22%/58%
are the kernel averages from section 1: 22% lower time and 58% lower
traffic on average over the 24 kernels at 16 and 64 cores, all but four
cases comparable or better.)

This bench runs all four kernel families at both core counts and prints
the same aggregate: average/best/worst relative time and traffic for
DeNovoSync0 and DeNovoSync over the 48 cases.
"""

from __future__ import annotations

from _bench_utils import bench_scale

from repro.harness.experiments import headline_summary, run_kernel_figure

FAMILIES = ("tatas", "array", "nonblocking", "barrier")


def _run_all():
    return [
        run_kernel_figure(family, core_counts=(16, 64), scale=bench_scale())
        for family in FAMILIES
    ]


def test_bench_headline(benchmark):
    figures = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    summary = headline_summary(figures)
    print()
    print("== Headline aggregate over the 48 kernel cases ==")
    print("paper (DeNovoSync vs MESI): avg time -22%, avg traffic -58%,")
    print("all but four cases comparable or better")
    for protocol, stats in summary.items():
        print(
            f"  {protocol:12s} ({stats['cases']} cases): "
            f"time avg {1 - stats['avg_rel_time']:+.0%} "
            f"(best {1 - stats['best_rel_time']:+.0%}, "
            f"worst {1 - stats['worst_rel_time']:+.0%}); "
            f"traffic avg {1 - stats['avg_rel_traffic']:+.0%} "
            f"(best {1 - stats['best_rel_traffic']:+.0%}, "
            f"worst {1 - stats['worst_rel_traffic']:+.0%})"
        )
    ds = summary["DeNovoSync"]
    assert ds["cases"] == 48
    # The headline shape: clearly lower average time and traffic.
    assert ds["avg_rel_time"] < 0.95
    assert ds["avg_rel_traffic"] < 0.70
    # "All but four cases comparable or better": allow the same slack.
    worse = sum(
        1
        for figure in figures
        for row in figure.rows
        if row.rel_time("DeNovoSync") > 1.10
    )
    assert worse <= 6
