"""Helpers shared by the figure-reproduction benchmarks."""

from __future__ import annotations

import os


def bench_scale() -> float:
    """Fraction of the paper's kernel iteration counts (REPRO_BENCH_SCALE)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))


def app_scale() -> float:
    """Input scale for the Figure 7 app models (REPRO_BENCH_APP_SCALE)."""
    return float(os.environ.get("REPRO_BENCH_APP_SCALE", "0.5"))
