"""Extension: scaling curves from 4 to 64 cores.

The paper reports 16- and 64-core points; this bench fills in the curve
for the two synchronization patterns with opposite scaling stories: the
TATAS counter (one hot word — MESI's invalidation cost grows with every
added spinner) and the binary tree barrier (single-producer/single-
consumer flags — all protocols stay parallel).
"""

from __future__ import annotations

from _bench_utils import bench_scale

from repro.config import config_for_cores
from repro.harness.runner import run_workload
from repro.workloads.base import KernelSpec
from repro.workloads.registry import make_kernel

CORE_COUNTS = (4, 16, 64)
PROTOCOLS = ("MESI", "DeNovoSync0", "DeNovoSync")


def _sweep():
    rows = []
    for kernel_family, name in (("tatas", "counter"), ("barrier", "tree")):
        for cores in CORE_COUNTS:
            config = config_for_cores(cores)
            entry = {"kernel": name, "cores": cores}
            for protocol in PROTOCOLS:
                workload = make_kernel(
                    kernel_family, name, spec=KernelSpec(scale=bench_scale())
                )
                result = run_workload(workload, protocol, config, seed=1)
                entry[protocol] = result.cycles
            rows.append(entry)
    return rows


def test_bench_ext_scaling(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print("== Scaling: cycles (and DeNovoSync/MESI ratio) vs core count ==")
    for row in rows:
        ratio = row["DeNovoSync"] / row["MESI"]
        print(
            f"  {row['kernel']:8s} {row['cores']:3d} cores  "
            f"M={row['MESI']:9d}  DS0={row['DeNovoSync0']:9d}  "
            f"DS={row['DeNovoSync']:9d}  DS/M={ratio:.2f}"
        )
    # The TATAS advantage must widen with core count...
    tatas = [r for r in rows if r["kernel"] == "counter"]
    ratios = [r["DeNovoSync"] / r["MESI"] for r in tatas]
    assert ratios[-1] < ratios[0]
    # ... while tree barriers stay comparable at every size.
    for row in rows:
        if row["kernel"] == "tree":
            assert 0.8 < row["DeNovoSync"] / row["MESI"] < 1.25
