"""Extension: signature-based data consistency (the paper's future work).

Compares DeNovoSync's static region self-invalidation against the
DeNovoND-style write-signature variant (``DeNovoSyncSig``) on the two
workloads the paper names as victims of conservative static regions:
the array-lock heap kernel and fluidanimate.  Signatures deliver
per-acquire *deltas* (exactly what was written since this core's last
acquire), so they can only help where the static region over-invalidates
reusable data.
"""

from __future__ import annotations

from _bench_utils import bench_scale

from repro.config import config_64
from repro.harness.experiments import run_kernel_figure
from repro.harness.runner import run_workload
from repro.workloads.apps import make_app


def _run():
    heap = run_kernel_figure(
        "array",
        core_counts=(64,),
        scale=bench_scale(),
        names=["heap", "counter"],
        protocols=("MESI", "DeNovoSync", "DeNovoSyncSig"),
    )
    fluid = {}
    for protocol in ("MESI", "DeNovoSync", "DeNovoSyncSig"):
        fluid[protocol] = run_workload(
            make_app("fluidanimate", scale=0.35), protocol, config_64(), seed=2
        )
    return heap, fluid


def test_bench_ext_signatures(benchmark, figure_reporter):
    heap, fluid = benchmark.pedantic(_run, rounds=1, iterations=1)
    figure_reporter("ext_signatures_kernels", heap)
    mesi = fluid["MESI"]
    print()
    print("== fluidanimate: static regions vs write signatures ==")
    for protocol, result in fluid.items():
        print(
            f"  {protocol:14s} time={result.cycles / mesi.cycles:.2f} "
            f"traffic={result.total_traffic / mesi.total_traffic:.2f} "
            f"invalidated={result.counters.get('self_invalidated_words')}"
        )
    static = fluid["DeNovoSync"]
    sig = fluid["DeNovoSyncSig"]
    # Signatures must not invalidate more than the conservative regions.
    assert sig.counters.get("self_invalidated_words") <= static.counters.get(
        "self_invalidated_words"
    )
    # ... and must stay correct/competitive on time.
    assert sig.cycles <= static.cycles * 1.1
