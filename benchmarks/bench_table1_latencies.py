"""Table 1: simulated system parameters.

Verifies and reports that the latency model reproduces the paper's
latency ranges exactly at both system sizes.
"""

from __future__ import annotations

from repro.config import config_16, config_64
from repro.noc.mesh import Mesh


def _ranges(config):
    mesh = Mesh(config)
    l2 = [
        mesh.l2_access_latency(core, bank)
        for core in range(config.num_cores)
        for bank in range(config.l2_banks)
    ]
    remote = [
        mesh.remote_l1_latency(0, bank, owner)
        for bank in range(config.l2_banks)
        for owner in range(config.num_cores)
    ]
    memory = [
        mesh.memory_latency(core, bank)
        for core in range(config.num_cores)
        for bank in range(config.l2_banks)
    ]
    return l2, remote, memory


def _all_ranges():
    return {
        label: _ranges(config)
        for config, label in ((config_16(), "16 cores"), (config_64(), "64 cores"))
    }


def test_bench_table1(benchmark):
    results = benchmark.pedantic(_all_ranges, rounds=1, iterations=1)
    print()
    print("== Table 1: simulated system parameters ==")
    for config, label in ((config_16(), "16 cores"), (config_64(), "64 cores")):
        l2, remote, memory = results[label]
        print(
            f"{label}: L2 hit {min(l2)}..{max(l2)} "
            f"(paper {config.l2_hit_latency.min}..{config.l2_hit_latency.max}), "
            f"remote L1 {min(remote)}..{max(remote)} "
            f"(paper {config.remote_l1_latency.min}..{config.remote_l1_latency.max}), "
            f"memory {min(memory)}..{max(memory)} "
            f"(paper {config.memory_latency.min}..{config.memory_latency.max})"
        )
        assert min(l2) == config.l2_hit_latency.min
        assert max(l2) == config.l2_hit_latency.max
        assert max(remote) == config.remote_l1_latency.max
        assert max(memory) == config.memory_latency.max
