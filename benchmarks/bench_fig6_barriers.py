"""Figure 6: barrier kernels (tree / n-ary / central, balanced and
unbalanced) at 16 and 64 cores.

Paper result: tree barriers are single-producer/single-consumer per flag,
so all protocols match on time while DeNovo saves most of the traffic;
the centralized barrier's many-readers-one-word departure is DeNovo's bad
case (higher traffic; worse time when unbalanced at 64 cores).
"""

from __future__ import annotations

from _bench_utils import bench_scale

from repro.harness.experiments import run_kernel_figure


def test_bench_fig6_16_cores(benchmark, figure_reporter):
    result = benchmark.pedantic(
        run_kernel_figure,
        args=("barrier",),
        kwargs={"core_counts": (16,), "scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    figure_reporter("fig6_barriers", result)


def test_bench_fig6_64_cores(benchmark, figure_reporter):
    result = benchmark.pedantic(
        run_kernel_figure,
        args=("barrier",),
        kwargs={"core_counts": (64,), "scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    figure_reporter("fig6_barriers", result)
