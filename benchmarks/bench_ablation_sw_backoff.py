"""Section 7.1.1 ablation: software backoff on TATAS kernels.

Paper result: adding exponential software backoff ([128, 2048) cycles)
widens DeNovo's gap over MESI (up to 70% at 64 cores): the backoff spaces
failed synchronization reads, cutting DeNovo's false-race misses, while
MESI's dominant cost — invalidation latency on the lock handoff — is
unaffected.
"""

from __future__ import annotations

from _bench_utils import bench_scale

from repro.harness.experiments import run_sw_backoff_ablation


def test_bench_ablation_sw_backoff(benchmark, figure_reporter):
    results = benchmark.pedantic(
        run_sw_backoff_ablation,
        kwargs={"cores": 64, "scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    for label, result in results.items():
        figure_reporter(f"ablation_swbackoff_{label.replace(' ', '_')}", result)
