"""Extension: parallel sweep executor vs the serial reference path.

Runs the Figure 3 TATAS sweep serially and with ``jobs=4`` and reports
the wall-clock speedup.  Determinism is always asserted — the parallel
figure must be byte-identical to the serial one — while the speedup
itself is only *reported*: it depends on host core count (a 4-core host
should see >=2x; a 1-core CI box sees ~1x plus process overhead), so
failing on it would make the bench flaky on small machines.

A second bench measures the warm-cache path: with every cell cached the
sweep does no simulation at all.
"""

from __future__ import annotations

import io
import time

from _bench_utils import bench_scale

from repro.harness.experiments import run_kernel_figure
from repro.harness.parallel import ResultCache
from repro.harness.report import print_figure


def _figure_text(figure) -> str:
    buffer = io.StringIO()
    print_figure(figure, buffer)
    return buffer.getvalue()


def _timed(**kwargs):
    start = time.perf_counter()
    figure = run_kernel_figure(
        "tatas", core_counts=(16,), scale=bench_scale(), **kwargs
    )
    return figure, time.perf_counter() - start


def test_bench_parallel_speedup(benchmark, figure_reporter):
    serial, serial_s = _timed(jobs=1)

    def parallel_sweep():
        figure, elapsed = _timed(jobs=4)
        assert _figure_text(figure) == _figure_text(serial)
        return figure, elapsed

    parallel, parallel_s = benchmark.pedantic(
        parallel_sweep, rounds=1, iterations=1
    )
    print()
    print(
        f"serial {serial_s:.2f}s, jobs=4 {parallel_s:.2f}s "
        f"-> speedup {serial_s / max(parallel_s, 1e-9):.2f}x "
        f"(output byte-identical)"
    )
    figure_reporter("ext_parallel", parallel)


def test_bench_cache_warm_path(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "runcache")
    cold, cold_s = _timed(jobs=1, cache=cache)
    assert cache.hits == 0 and cache.stores > 0

    def warm_sweep():
        warm_cache = ResultCache(tmp_path / "runcache")
        figure, elapsed = _timed(jobs=1, cache=warm_cache)
        assert warm_cache.misses == 0 and warm_cache.stores == 0
        assert _figure_text(figure) == _figure_text(cold)
        return elapsed

    warm_s = benchmark.pedantic(warm_sweep, rounds=1, iterations=1)
    print()
    print(
        f"cold {cold_s:.2f}s, warm-cache {warm_s:.2f}s "
        f"-> speedup {cold_s / max(warm_s, 1e-9):.2f}x"
    )
