"""Section 7.1.3 ablation: Herlihy equality-check modification.

Paper result: removing redundant equality checks (pointer re-reads that
only filter doomed attempts early) shortens execution for both protocols
but helps DeNovo far more (41%/79% lower time at 16/64 cores), because
each re-read is a cached hit under MESI but a registration miss under
DeNovo.
"""

from __future__ import annotations

from _bench_utils import bench_scale

from repro.harness.experiments import run_eqcheck_ablation


def test_bench_ablation_eqchecks(benchmark, figure_reporter):
    results = benchmark.pedantic(
        run_eqcheck_ablation,
        kwargs={"cores": 64, "scale": bench_scale()},
        rounds=1,
        iterations=1,
    )
    for label, result in results.items():
        figure_reporter(f"ablation_eqchecks_{label.replace(' ', '_')}", result)
