"""Measure the headline kernel-figure sweep (4 families x {16,64} cores).

Standalone timing harness for the committed headline block in
results/bench_baseline.json::

    PYTHONPATH=src python benchmarks/measure_headline.py            # epoch on
    PYTHONPATH=src python benchmarks/measure_headline.py --no-epoch # control

Runs the exact sweep the baseline records — every kernel of the tatas,
array, nonblocking and barrier families at 16 and 64 cores, scale 0.05,
all registry comparison protocols, serial, no cache — and prints the
wall-clock total.  Run it back-to-back with and without --no-epoch on
one quiet host to produce the pre/post numbers.
"""

from __future__ import annotations

import argparse
import sys
from time import perf_counter

from repro.harness.experiments import run_kernel_figure

FAMILIES = ("tatas", "array", "nonblocking", "barrier")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--no-epoch", action="store_true")
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--cores", type=int, nargs="+", default=[16, 64])
    args = parser.parse_args(argv)

    total = 0.0
    for family in FAMILIES:
        start = perf_counter()
        run_kernel_figure(
            family,
            core_counts=tuple(args.cores),
            scale=args.scale,
            epoch_mode=not args.no_epoch,
        )
        elapsed = perf_counter() - start
        total += elapsed
        print(f"{family:12s} {elapsed:8.3f}s", flush=True)
    mode = "off" if args.no_epoch else "on"
    print(f"TOTAL (epoch {mode}) {total:8.3f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
