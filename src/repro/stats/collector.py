"""Protocol event counters and the per-run result record."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace

from repro.noc.traffic import TrafficLedger
from repro.stats.timeparts import TimeBreakdown, TimeComponent


class ProtocolCounters:
    """Free-form named event counters (misses, invalidations, steals...).

    Keys used by the protocols:

    * ``l1_hits`` / ``l1_misses`` — all accesses
    * ``sync_read_misses`` / ``sync_read_hits`` — DeNovo sync reads
    * ``invalidations_sent`` — MESI writer-initiated invalidations
    * ``registration_transfers`` — DeNovo ownership moves
    * ``read_registration_steals`` — DeNovo sync reads revoking a remote
      registration (the paper's false R-R/W-R races)
    * ``hw_backoff_events`` — DeNovoSync stalls taken
    * ``cold_misses`` — first-touch memory fetches
    """

    def __init__(self) -> None:
        self._counts: Counter[str] = Counter()

    def bump(self, key: str, by: int = 1) -> None:
        self._counts[key] += by

    def get(self, key: str) -> int:
        return self._counts[key]

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)


@dataclass
class RunResult:
    """Everything measured in one (workload, protocol, system) run."""

    workload: str
    protocol: str
    num_cores: int
    cycles: int
    per_core_time: list[TimeBreakdown]
    traffic: TrafficLedger
    counters: ProtocolCounters
    meta: dict = field(default_factory=dict)

    @property
    def avg_time_breakdown(self) -> dict[str, float]:
        return TimeBreakdown.average(self.per_core_time)

    @property
    def total_traffic(self) -> int:
        return self.traffic.flit_crossings()

    def traffic_breakdown(self) -> dict[str, int]:
        return self.traffic.breakdown()

    def component_cycles(self, component: TimeComponent) -> float:
        """Mean cycles spent in ``component`` across cores."""
        if not self.per_core_time:
            return 0.0
        return sum(b.get(component) for b in self.per_core_time) / len(
            self.per_core_time
        )

    #: meta keys that hold live simulation objects (attached by the
    #: ``keep_protocol`` / ``trace`` runner options) and must not cross a
    #: process boundary or enter the on-disk result cache.
    NON_PORTABLE_META = ("protocol", "trace")

    def portable_copy(self) -> "RunResult":
        """A copy safe to pickle: all measurements, no live objects.

        Everything except the :data:`NON_PORTABLE_META` entries round-trips
        through pickle unchanged, which is what the parallel sweep executor
        and the result cache rely on.
        """
        meta = {k: v for k, v in self.meta.items() if k not in self.NON_PORTABLE_META}
        return replace(self, meta=meta)

    def summary(self) -> dict:
        return {
            "workload": self.workload,
            "protocol": self.protocol,
            "num_cores": self.num_cores,
            "cycles": self.cycles,
            "time_breakdown": self.avg_time_breakdown,
            "traffic": self.traffic_breakdown(),
            "total_traffic": self.total_traffic,
        }


def normalize_to(results: list[RunResult], baseline: RunResult) -> list[dict]:
    """Normalize cycles and traffic to ``baseline`` (the figures' 100% bar)."""
    out = []
    base_cycles = max(1, baseline.cycles)
    base_traffic = max(1, baseline.total_traffic)
    for result in results:
        out.append(
            {
                "workload": result.workload,
                "protocol": result.protocol,
                "rel_time": result.cycles / base_cycles,
                "rel_traffic": result.total_traffic / base_traffic,
            }
        )
    return out
