"""Statistics: execution-time decomposition and run results."""

from repro.stats.timeparts import TimeComponent, TimeBreakdown
from repro.stats.collector import ProtocolCounters, RunResult

__all__ = ["TimeComponent", "TimeBreakdown", "ProtocolCounters", "RunResult"]
