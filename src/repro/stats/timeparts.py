"""Execution-time decomposition.

The paper's figures stack per-run execution time into: non-synchronization
compute (the dummy work between kernel iterations), kernel compute (1 cycle
per instruction, including spinning hits), memory stall (for both data and
synchronization accesses inside the kernel), software backoff, hardware
backoff (DeNovoSync only), and barrier stall (time in the end-of-kernel
barrier, indicating load imbalance).
"""

from __future__ import annotations

from collections import Counter
from enum import Enum


class TimeComponent(Enum):
    NON_SYNCH = "non-synch"
    COMPUTE = "compute"
    MEMORY_STALL = "memory stall"
    SW_BACKOFF = "sw backoff"
    HW_BACKOFF = "hw backoff"
    BARRIER_STALL = "barrier"


class TimeBreakdown:
    """Per-core cycle accounting by :class:`TimeComponent`."""

    def __init__(self) -> None:
        self._cycles: Counter[TimeComponent] = Counter()

    def add(self, component: TimeComponent, cycles: int) -> None:
        if cycles < 0:
            raise ValueError(f"negative cycles for {component}: {cycles}")
        self._cycles[component] += cycles

    def get(self, component: TimeComponent) -> int:
        return self._cycles[component]

    def total(self) -> int:
        return sum(self._cycles.values())

    def as_dict(self) -> dict[str, int]:
        return {c.value: self._cycles[c] for c in TimeComponent}

    def merged_with(self, other: "TimeBreakdown") -> "TimeBreakdown":
        # Counter.__add__ silently drops zero-count keys; update() keeps a
        # component that was explicitly tracked at zero cycles.
        merged = TimeBreakdown()
        merged._cycles.update(self._cycles)
        merged._cycles.update(other._cycles)
        return merged

    @staticmethod
    def average(breakdowns: list["TimeBreakdown"]) -> dict[str, float]:
        """Mean cycles per component across cores (the figures' bar height)."""
        if not breakdowns:
            return {c.value: 0.0 for c in TimeComponent}
        n = len(breakdowns)
        return {
            c.value: sum(b.get(c) for b in breakdowns) / n for c in TimeComponent
        }
