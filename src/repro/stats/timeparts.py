"""Execution-time decomposition.

The paper's figures stack per-run execution time into: non-synchronization
compute (the dummy work between kernel iterations), kernel compute (1 cycle
per instruction, including spinning hits), memory stall (for both data and
synchronization accesses inside the kernel), software backoff, hardware
backoff (DeNovoSync only), and barrier stall (time in the end-of-kernel
barrier, indicating load imbalance).

Accounting is hot (several adds per simulated memory operation), so the
breakdown is a fixed-size int list indexed by the component's ordinal
(``TimeComponent.<member>.idx``) rather than a ``Counter`` keyed by enum —
``Enum.__hash__`` is a Python-level hash of the member name and dominated
profiles.  The public dict-shaped views are unchanged.
"""

from __future__ import annotations

from enum import Enum


class TimeComponent(Enum):
    NON_SYNCH = "non-synch"
    COMPUTE = "compute"
    MEMORY_STALL = "memory stall"
    SW_BACKOFF = "sw backoff"
    HW_BACKOFF = "hw backoff"
    BARRIER_STALL = "barrier"


#: Dense ordinal used to index the per-component arrays.
for _i, _component in enumerate(TimeComponent):
    _component.idx = _i
_NUM_COMPONENTS = len(TimeComponent)


class TimeBreakdown:
    """Per-core cycle accounting by :class:`TimeComponent`."""

    __slots__ = ("_cycles",)

    def __init__(self) -> None:
        self._cycles: list[int] = [0] * _NUM_COMPONENTS

    def add(self, component: TimeComponent, cycles: int) -> None:
        if cycles < 0:
            raise ValueError(f"negative cycles for {component}: {cycles}")
        self._cycles[component.idx] += cycles

    def get(self, component: TimeComponent) -> int:
        return self._cycles[component.idx]

    def total(self) -> int:
        return sum(self._cycles)

    def as_dict(self) -> dict[str, int]:
        cycles = self._cycles
        return {c.value: cycles[c.idx] for c in TimeComponent}

    def merged_with(self, other: "TimeBreakdown") -> "TimeBreakdown":
        # Fixed-size arrays make the merge trivially total: every
        # component survives, including ones tracked at zero cycles.
        merged = TimeBreakdown()
        merged._cycles = [a + b for a, b in zip(self._cycles, other._cycles)]
        return merged

    @staticmethod
    def average(breakdowns: list["TimeBreakdown"]) -> dict[str, float]:
        """Mean cycles per component across cores (the figures' bar height)."""
        if not breakdowns:
            return {c.value: 0.0 for c in TimeComponent}
        n = len(breakdowns)
        return {
            c.value: sum(b.get(c) for b in breakdowns) / n for c in TimeComponent
        }
