"""A first-order dynamic-energy model.

The paper argues DeNovo's traffic savings "can be translated into energy
savings"; this module makes that translation explicit with a simple
activity-based model: every network flit-hop, L1/LLC access, and DRAM
access is charged a fixed energy.  The default coefficients are
representative 32nm-class numbers (the evaluation's era) in picojoules;
they are knobs, not measurements — the interesting quantity is again the
MESI-vs-DeNovo *ratio*, which is dominated by the traffic and miss-count
ratios the simulator produces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats.collector import RunResult


@dataclass(frozen=True)
class EnergyModel:
    """Per-event dynamic energy coefficients, in picojoules."""

    pj_per_flit_hop: float = 2.5
    pj_per_l1_access: float = 10.0
    pj_per_llc_access: float = 50.0
    pj_per_dram_access: float = 2000.0

    def network_pj(self, result: RunResult) -> float:
        return self.pj_per_flit_hop * result.total_traffic

    def l1_pj(self, result: RunResult) -> float:
        accesses = result.counters.get("l1_hits") + result.counters.get("l1_misses")
        return self.pj_per_l1_access * accesses

    def llc_pj(self, result: RunResult) -> float:
        # Every miss visits the LLC/registry once (retries re-arbitrate
        # without a data-array access).
        return self.pj_per_llc_access * result.counters.get("l1_misses")

    def dram_pj(self, result: RunResult) -> float:
        return self.pj_per_dram_access * result.counters.get("cold_misses")

    def total_pj(self, result: RunResult) -> float:
        return (
            self.network_pj(result)
            + self.l1_pj(result)
            + self.llc_pj(result)
            + self.dram_pj(result)
        )

    def breakdown(self, result: RunResult) -> dict[str, float]:
        return {
            "network": self.network_pj(result),
            "l1": self.l1_pj(result),
            "llc": self.llc_pj(result),
            "dram": self.dram_pj(result),
        }


def energy_ratio(
    result: RunResult, baseline: RunResult, model: EnergyModel | None = None
) -> float:
    """Dynamic memory-system energy of ``result`` relative to ``baseline``."""
    model = model or EnergyModel()
    base = model.total_pj(baseline)
    return model.total_pj(result) / base if base else float("nan")
