"""The synchronization sanitizer: DeNovo's DRF contract, checked.

Two modes share one finding vocabulary (:mod:`repro.sanitize.findings`):

* **dynamic** (:mod:`repro.sanitize.dynamic`) — vector-clock
  happens-before race detection plus self-invalidation completeness
  over :class:`~repro.trace.events.AccessRecord` traces;
* **static** (:mod:`repro.sanitize.lint`) — an AST lint pass over the
  synclib/workloads sources enforcing simulator idioms.

The ``sanitize`` CLI target (``repro.harness.cli``) fans the dynamic
sweep over the kernel corpus via :mod:`repro.sanitize.cells`.
"""

from repro.sanitize.dynamic import TraceAnalysis, analyze_trace, region_lookup
from repro.sanitize.findings import Finding, Report
from repro.sanitize.lint import default_lint_targets, lint_paths, lint_source

__all__ = [
    "TraceAnalysis",
    "analyze_trace",
    "region_lookup",
    "Finding",
    "Report",
    "default_lint_targets",
    "lint_paths",
    "lint_source",
]
