"""Picklable (kernel × protocol) cells for the parallel sanitize sweep.

Mirrors :mod:`repro.mc.cells`: the ``sanitize`` CLI target fans these
out through :func:`repro.harness.parallel.run_tasks`.  Each cell runs
one kernel under one protocol with tracing on, feeds the trace to the
dynamic analyzer, and sends back a plain-data outcome (the trace itself
never crosses the process boundary).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.sanitize.findings import Finding


@dataclass(frozen=True)
class SanitizeCell:
    """One dynamic-analysis work item."""

    family: str
    kernel: str
    protocol: str
    cores: int = 16
    scale: float = 0.05
    seed: int = 1


@dataclass
class SanitizeOutcome:
    """Picklable summary of one analyzed cell."""

    family: str
    kernel: str
    protocol: str
    cores: int
    records: int = 0
    racy_unannotated_pairs: int = 0
    stale_read_hazards: int = 0
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.racy_unannotated_pairs == 0 and self.stale_read_hazards == 0

    @property
    def cell_id(self) -> str:
        return f"{self.family}/{self.kernel} x {self.protocol}"

    def describe(self) -> str:
        line = (
            f"{self.family + '/' + self.kernel:24s} {self.protocol:12s} "
            f"({self.cores} cores): {self.records:6d} records"
        )
        if self.ok:
            return line + " — ok"
        return line + (
            f" — {self.racy_unannotated_pairs} unannotated race pair(s), "
            f"{self.stale_read_hazards} stale-read hazard(s)"
        )


def run_cell(cell: SanitizeCell) -> SanitizeOutcome:
    """Trace + analyze one cell (worker-process entry point)."""
    from repro.config import config_for_cores
    from repro.harness.runner import run_workload
    from repro.sanitize.dynamic import analyze_trace, region_lookup
    from repro.workloads.base import KernelSpec
    from repro.workloads.registry import make_kernel

    workload = make_kernel(cell.family, cell.kernel, spec=KernelSpec(scale=cell.scale))
    config = config_for_cores(cell.cores)
    result = run_workload(
        workload,
        cell.protocol,
        config,
        seed=cell.seed,
        trace=True,
        keep_protocol=True,
    )
    protocol = result.meta["protocol"]
    analysis = analyze_trace(
        result.meta["trace"], region_of=region_lookup(protocol.allocator)
    )
    outcome = SanitizeOutcome(
        family=cell.family,
        kernel=cell.kernel,
        protocol=cell.protocol,
        cores=cell.cores,
        records=analysis.records_analyzed,
        racy_unannotated_pairs=analysis.racy_unannotated_pairs,
        stale_read_hazards=analysis.stale_read_hazards,
    )
    for finding in analysis.findings:
        details = dict(finding.details)
        details["cell"] = outcome.cell_id
        outcome.findings.append(
            replace(finding, site=f"{outcome.cell_id}: {finding.site}",
                    details=details)
        )
    return outcome
