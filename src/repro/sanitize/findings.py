"""Finding and report value objects shared by both sanitizer modes.

A :class:`Finding` is one violation of the DRF contract or of a
simulator idiom; the dynamic analyzer and the AST lint pass both emit
them, and :class:`Report` aggregates findings across analysis cells into
the one JSON document the ``sanitize`` CLI target writes.

Severities: ``error`` findings fail the sanitize run (contract
violations, definite idiom bugs); ``warning`` findings are reported but
do not gate (style-level advice such as a discarded ``WaitLoad`` result
whose predicate does not pin the value).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: Dynamic-mode finding kinds.
KIND_UNANNOTATED_RACE = "unannotated-race"
KIND_STALE_READ_HAZARD = "stale-read-hazard"

#: Static-mode (lint) finding kinds.
KIND_DISCARDED_RESULT = "discarded-result"
KIND_CAS_UNCHECKED = "cas-success-unchecked"
KIND_WAITLOAD_NOT_SYNC = "waitload-not-sync"
KIND_UNBALANCED_BUCKETS = "unbalanced-buckets"
KIND_RELEASE_ON_DATA_STORE = "release-on-data-store"
KIND_RAW_ADDRESS = "raw-address"
KIND_UNORDERED_ITERATION = "unordered-iteration"
KIND_UNDECLARED_WAKE_MUTATION = "undeclared-wake-mutation"

#: Formal-mode finding kinds (repro.formal.* checkers; same report shape).
KIND_MISSING_HANDLER = "missing-handler"
KIND_UNHANDLED_TRANSITION = "unhandled-transition"
KIND_FORBIDDEN_TRANSITION = "forbidden-transition"
KIND_DEAD_STATE = "dead-state"
KIND_MODEL_INVARIANT = "model-invariant-violation"
KIND_MODEL_DIVERGENCE = "model-divergence"


@dataclass(frozen=True)
class Finding:
    """One sanitizer finding.

    ``kind`` is one of the ``KIND_*`` constants; ``site`` locates the
    finding — ``file:line`` for lint findings, a human-readable access
    pair for dynamic ones — and ``details`` carries the kind-specific
    structured fields (cores, cycles, addresses, region ids, ...).
    """

    kind: str
    severity: str
    message: str
    site: str = ""
    details: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    @staticmethod
    def from_dict(data: dict) -> "Finding":
        return Finding(
            kind=data["kind"],
            severity=data["severity"],
            message=data["message"],
            site=data.get("site", ""),
            details=dict(data.get("details", {})),
        )


@dataclass
class Report:
    """All findings of one sanitize run, JSON-serializable.

    ``cells`` names the dynamic sweep cells that were analyzed (with
    per-cell finding counts) so a clean report still shows coverage.
    """

    findings: list[Finding] = field(default_factory=list)
    cells: list[dict] = field(default_factory=list)
    lint_files: list[str] = field(default_factory=list)

    def extend(self, findings) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    @property
    def clean(self) -> bool:
        """True when no error-severity finding was recorded."""
        return not self.errors

    def counts_by_kind(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.kind] = counts.get(finding.kind, 0) + 1
        return dict(sorted(counts.items()))

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(
            {
                "format": 1,
                "clean": self.clean,
                "counts": self.counts_by_kind(),
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "cells": self.cells,
                "lint_files": self.lint_files,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=indent,
        )

    @staticmethod
    def from_json(text: str) -> "Report":
        data = json.loads(text)
        report = Report(
            findings=[Finding.from_dict(f) for f in data.get("findings", [])],
            cells=list(data.get("cells", [])),
            lint_files=list(data.get("lint_files", [])),
        )
        return report
