"""Dynamic-mode sanitizer: happens-before race detection and
self-invalidation completeness over access traces.

Both checks run in one pass over a time-ordered list of
:class:`~repro.trace.events.AccessRecord`:

**Race detection** maintains DJIT+-style vector clocks.  The only
happens-before edges besides program order are the ones DeNovo's DRF
contract recognises:

* a ``release`` store to a sync variable publishes the writer's clock
  on that variable;
* a sync RMW passes the variable's release clock through unchanged (the
  RMW-chain rule — an acquire that reads a chain of CASes synchronizes
  with the release that started the chain), and a ``release`` RMW joins
  its own clock into the chain;
* an ``acquire`` load/RMW of the variable joins the published clock
  into the reader's;
* a non-release store (plain or sync) breaks the variable's chain.

Two accesses to the same word from different cores, at least one a
write, at least one unannotated (``sync=False``), with neither
HB-ordered before the other, are an ``unannotated-race`` finding: the
DRF contract demands every racy access be marked synchronization.

**Self-invalidation completeness** keeps a word-granularity shadow
cache per core: every access caches the word's current version; a
``selfinv`` record drops the cached words of the named regions
(``flush_all`` drops everything).  A *data* read that observes a word
last written by another core, where the write is HB-ordered before the
read (so the program did synchronize) but the reader still holds a
stale cached version, is a ``stale-read-hazard``: the acquire's
``SelfInvalidate`` regions did not cover the word, so DeNovo would
return the stale copy — a bug MESI's writer-initiated invalidations
mask.  The shadow model ignores capacity evictions (an eviction can
hide a hazard for one run, not fix the annotation) and is word-granular
like DeNovo's valid-state tracking.  Registered words surviving a real
self-invalidation refetch cleanly afterwards, so dropping them here
cannot create false hazards.

The model is deliberately conservative towards false positives: an
unordered pair is only reported when unannotated, and a stale read only
when the write is provably HB-ordered (an unordered stale read is the
race finding instead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable

from repro.sanitize.findings import (
    KIND_STALE_READ_HAZARD,
    KIND_UNANNOTATED_RACE,
    SEVERITY_ERROR,
    Finding,
)
from repro.trace.events import AccessRecord

#: Cap on findings *emitted* per kind; counting continues past the cap.
MAX_FINDINGS_PER_KIND = 25


@dataclass(frozen=True)
class _Epoch:
    """One access's position: (core, that core's clock at issue)."""

    core: int
    tick: int
    cycle: int
    kind: str
    sync: bool


@dataclass
class TraceAnalysis:
    """Everything the dynamic pass learned from one trace."""

    findings: list[Finding] = field(default_factory=list)
    #: Distinct (addr, core-pair, kind-pair) races, uncapped.
    racy_unannotated_pairs: int = 0
    #: Distinct (core, addr) stale-read hazards, uncapped.
    stale_read_hazards: int = 0
    records_analyzed: int = 0


def region_lookup(allocator) -> Callable[[int], int | None]:
    """Build an addr -> region-id mapping from a RegionAllocator."""

    def lookup(addr: int) -> int | None:
        region = allocator.region_of(addr)
        return None if region is None else region.region_id

    return lookup


def _ordered(epoch: _Epoch, clock: dict[int, int]) -> bool:
    """True when ``epoch`` happens-before the holder of ``clock``."""
    return epoch.tick <= clock.get(epoch.core, -1)


def analyze_trace(
    records: Iterable[AccessRecord],
    *,
    region_of: Callable[[int], int | None] | None = None,
    max_findings_per_kind: int = MAX_FINDINGS_PER_KIND,
) -> TraceAnalysis:
    """Run both dynamic checks over ``records``.

    ``region_of`` maps a word address to its region id (see
    :func:`region_lookup`); without it the self-invalidation
    completeness check is skipped (race detection needs no region
    information).
    """
    analysis = TraceAnalysis()

    # Vector clocks: clocks[c][d] = latest tick of core d ordered before
    # core c's next access.  clocks[c][c] is c's own tick counter.
    clocks: dict[int, dict[int, int]] = {}
    # Release clocks per sync variable (the publication the next acquire
    # joins); absent key = broken/never-started chain.
    released: dict[int, dict[int, int]] = {}

    # Conflict frontiers per word: concurrent (not yet HB-dominated)
    # writes and reads.
    write_frontier: dict[int, list[_Epoch]] = {}
    read_frontier: dict[int, list[_Epoch]] = {}
    seen_races: set = set()

    # Shadow caches: version[addr] counts writes; writer[addr] is the
    # last write's epoch; cached[c][addr] is the version core c holds.
    version: dict[int, int] = {}
    writer: dict[int, _Epoch] = {}
    cached: dict[int, dict[int, int]] = {}
    seen_hazards: set = set()

    def clock_of(core: int) -> dict[int, int]:
        clock = clocks.get(core)
        if clock is None:
            clock = clocks[core] = {core: 0}
        return clock

    def emit(kind: str, count: int, finding: Finding) -> None:
        if count <= max_findings_per_kind:
            analysis.findings.append(finding)

    for record in records:
        analysis.records_analyzed += 1
        core = record.core
        clock = clock_of(core)

        if record.kind == "selfinv":
            if region_of is not None:
                slots = cached.get(core)
                if slots:
                    if record.flush_all:
                        slots.clear()
                    else:
                        covered = set(record.regions)
                        if not covered and record.addr >= 0:
                            covered = {record.addr}  # v2 trace: first id only
                        for addr in [
                            a for a in slots if region_of(a) in covered
                        ]:
                            del slots[addr]
            continue

        # -- acquire edge ----------------------------------------------------
        if record.acquire:
            publication = released.get(record.addr)
            if publication:
                for other, tick in publication.items():
                    if clock.get(other, -1) < tick:
                        clock[other] = tick

        tick = clock.setdefault(core, 0)
        epoch = _Epoch(
            core=core, tick=tick, cycle=record.cycle,
            kind=record.kind, sync=record.sync,
        )
        is_write = record.kind in ("store", "rmw")

        # -- race check --------------------------------------------------------
        against = list(write_frontier.get(record.addr, ()))
        if is_write:
            against += read_frontier.get(record.addr, ())
        for other in against:
            if other.core == core or _ordered(other, clock):
                continue
            if other.sync and record.sync:
                continue  # both annotated: a legal (intentional) race
            first, second = sorted(
                (other, epoch), key=lambda e: (e.cycle, e.core)
            )
            key = (record.addr, first.core, second.core, first.kind, second.kind)
            if key in seen_races:
                continue
            seen_races.add(key)
            analysis.racy_unannotated_pairs += 1
            emit(
                KIND_UNANNOTATED_RACE,
                analysis.racy_unannotated_pairs,
                Finding(
                    kind=KIND_UNANNOTATED_RACE,
                    severity=SEVERITY_ERROR,
                    message=(
                        f"unordered conflicting accesses to word {record.addr}: "
                        f"core {first.core} {first.kind}"
                        f"{' (sync)' if first.sync else ''} @cycle {first.cycle} "
                        f"vs core {second.core} {second.kind}"
                        f"{' (sync)' if second.sync else ''} @cycle {second.cycle}; "
                        "at least one side is unannotated (sync=False)"
                    ),
                    site=f"word {record.addr}",
                    details={
                        "addr": record.addr,
                        "first": {
                            "core": first.core, "cycle": first.cycle,
                            "kind": first.kind, "sync": first.sync,
                        },
                        "second": {
                            "core": second.core, "cycle": second.cycle,
                            "kind": second.kind, "sync": second.sync,
                        },
                    },
                ),
            )

        # -- staleness check ---------------------------------------------------
        if region_of is not None:
            slots = cached.setdefault(core, {})
            if is_write:
                version[record.addr] = version.get(record.addr, 0) + 1
                writer[record.addr] = epoch
                slots[record.addr] = version[record.addr]
            else:
                current = version.get(record.addr, 0)
                last = writer.get(record.addr)
                held = slots.get(record.addr)
                if (
                    not record.sync
                    and last is not None
                    and last.core != core
                    and held is not None
                    and held < current
                    and _ordered(last, clock)
                ):
                    key = (core, record.addr)
                    if key not in seen_hazards:
                        seen_hazards.add(key)
                        analysis.stale_read_hazards += 1
                        region = region_of(record.addr)
                        emit(
                            KIND_STALE_READ_HAZARD,
                            analysis.stale_read_hazards,
                            Finding(
                                kind=KIND_STALE_READ_HAZARD,
                                severity=SEVERITY_ERROR,
                                message=(
                                    f"core {core} reads word {record.addr} "
                                    f"(region {region}) @cycle {record.cycle} "
                                    f"holding a stale copy: core {last.core} "
                                    f"wrote it @cycle {last.cycle} and the "
                                    "write is HB-ordered before the read, but "
                                    "no intervening SelfInvalidate covered "
                                    "the word's region — DeNovo would return "
                                    "the stale value"
                                ),
                                site=f"word {record.addr}",
                                details={
                                    "addr": record.addr,
                                    "region": region,
                                    "reader_core": core,
                                    "read_cycle": record.cycle,
                                    "writer_core": last.core,
                                    "write_cycle": last.cycle,
                                },
                            ),
                        )
                # Reads cache (or refresh to) the current version: sync
                # reads register and are always fresh; a flagged stale
                # data read is refreshed to avoid duplicate findings.
                slots[record.addr] = current

        # -- frontier update ---------------------------------------------------
        frontier = write_frontier if is_write else read_frontier
        entries = frontier.setdefault(record.addr, [])
        entries[:] = [e for e in entries if not _ordered(e, clock)]
        entries.append(epoch)

        # -- release / chain edges --------------------------------------------
        if record.kind == "store":
            if record.sync and record.release:
                released[record.addr] = dict(clock)
            else:
                # Any non-release store breaks the variable's chain.
                released.pop(record.addr, None)
        elif record.kind == "rmw":
            if record.release:
                publication = released.setdefault(record.addr, {})
                for other, t in clock.items():
                    if publication.get(other, -1) < t:
                        publication[other] = t
            # Non-release RMWs pass the chain through untouched.

        clock[core] = tick + 1

    return analysis
