"""Static-mode sanitizer: an AST lint pass enforcing simulator idioms.

Thread programs are Python generators yielding ISA ops, which makes a
class of bugs invisible to the runtime: a yielded op whose result the
kernel needed but discarded still *runs*, it just computes garbage (or
only works by luck).  This pass walks every function of the target
sources and enforces:

``discarded-result`` (error)
    A bare ``yield Cas(...)`` / ``yield Fai(...)`` / ``yield Swap(...)``
    statement discards the op's result.  Helping CASes and broadcast
    bumps legitimately ignore it — write ``_ = yield Cas(...)`` to make
    the discard explicit; the lint sanctions the ``_`` binding.
``cas-success-unchecked`` (error)
    The result of a ``yield Cas(...)`` is bound to a name that is never
    read again, so the CAS's success is never checked (bind to ``_``
    for an intentional fire-and-forget CAS).
``waitload-not-sync`` (error)
    ``WaitLoad(..., sync=False)``: a spin-wait is a racy read by
    definition and must be annotated as synchronization.
``unbalanced-buckets`` (error)
    A function yields a different number of ``PushBucket`` and
    ``PopBucket`` ops, corrupting the cycle-accounting stack.
``release-on-data-store`` (error)
    ``Store(..., release=True)`` without ``sync=True``: release
    semantics only exist on synchronization stores.
``raw-address`` (error)
    A literal integer address passed to a memory op instead of an
    address derived from a :class:`~repro.mem.regions.RegionAllocator`
    allocation (literal addresses bypass region tracking, so DeNovo
    self-invalidation cannot cover them).
``waitload-result-discarded`` (warning)
    A bare ``yield WaitLoad(...)`` whose predicate does not pin the
    value with an equality test discards information (the observed
    value is not implied by the predicate passing).  Non-gating.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Optional

from repro.sanitize.findings import (
    KIND_CAS_UNCHECKED,
    KIND_DISCARDED_RESULT,
    KIND_RAW_ADDRESS,
    KIND_RELEASE_ON_DATA_STORE,
    KIND_UNBALANCED_BUCKETS,
    KIND_WAITLOAD_NOT_SYNC,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
)

KIND_WAITLOAD_DISCARDED = "waitload-result-discarded"

#: Ops whose result carries information the program normally needs.
RESULT_OPS = {"Cas", "Fai", "Swap"}
#: Ops taking an address as their first positional argument.
ADDRESS_OPS = {"Load", "Store", "Cas", "Fai", "Swap", "WaitLoad"}


def _call_op(node: ast.AST) -> Optional[tuple[str, ast.Call]]:
    """(op name, call) when ``node`` is a call of a known ISA op."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    else:
        return None
    if name in ADDRESS_OPS or name in ("PushBucket", "PopBucket"):
        return name, node
    return None


def _yielded_call(node: ast.AST) -> Optional[tuple[str, ast.Call]]:
    """(op name, call) when ``node`` is a ``yield <ISA op>(...)``."""
    if isinstance(node, ast.Yield) and node.value is not None:
        return _call_op(node.value)
    return None


def _keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _is_literal(node: Optional[ast.expr], value) -> bool:
    return isinstance(node, ast.Constant) and node.value is value


def _predicate_pins_value(call: ast.Call) -> bool:
    """True when the WaitLoad predicate is ``lambda v, ...: v == <expr>``
    (the passing value is implied, so discarding the result loses
    nothing)."""
    pred = call.args[1] if len(call.args) > 1 else _keyword(call, "pred")
    if not isinstance(pred, ast.Lambda):
        return False
    body = pred.body
    if not isinstance(body, ast.Compare) or len(body.ops) != 1:
        return False
    if not isinstance(body.ops[0], ast.Eq):
        return False
    args = pred.args.args
    if not args:
        return False
    value_arg = args[0].arg
    return isinstance(body.left, ast.Name) and body.left.id == value_arg


class _FunctionLinter:
    """Lints one function body (nested defs are linted separately)."""

    def __init__(self, path: str, func: ast.AST, findings: list[Finding]):
        self.path = path
        self.func = func
        self.findings = findings

    def _emit(self, kind: str, severity: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        self.findings.append(
            Finding(
                kind=kind,
                severity=severity,
                message=message,
                site=f"{self.path}:{line}",
                details={"file": self.path, "line": line,
                         "function": getattr(self.func, "name", "<module>")},
            )
        )

    def run(self) -> None:
        pushes = 0
        pops = 0
        cas_bindings: dict[str, ast.AST] = {}
        read_names: set[str] = set()

        for node in self._own_nodes():
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                read_names.add(node.id)

            yielded = None
            if isinstance(node, ast.Expr):
                yielded = _yielded_call(node.value)
                if yielded is not None:
                    name, call = yielded
                    if name in RESULT_OPS:
                        self._emit(
                            KIND_DISCARDED_RESULT, SEVERITY_ERROR, node,
                            f"result of yielded {name} is discarded; bind it "
                            "(or use '_ = yield ...' for an intentional "
                            "discard)",
                        )
                    elif name == "WaitLoad" and not _predicate_pins_value(call):
                        self._emit(
                            KIND_WAITLOAD_DISCARDED, SEVERITY_WARNING, node,
                            "WaitLoad result discarded and its predicate does "
                            "not pin the value with an equality test",
                        )
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                yielded = _yielded_call(node.value)
                if (
                    yielded is not None
                    and yielded[0] == "Cas"
                    and isinstance(target, ast.Name)
                    and target.id != "_"
                ):
                    cas_bindings[target.id] = node

            call_info = _call_op(node)
            if call_info is None:
                continue
            name, call = call_info
            if name == "PushBucket":
                pushes += 1
            elif name == "PopBucket":
                pops += 1
            if name == "WaitLoad" and _is_literal(_keyword(call, "sync"), False):
                self._emit(
                    KIND_WAITLOAD_NOT_SYNC, SEVERITY_ERROR, node,
                    "WaitLoad(sync=False): a spin-wait is racy by definition "
                    "and must be a synchronization access",
                )
            if (
                name == "Store"
                and _is_literal(_keyword(call, "release"), True)
                and not _is_literal(_keyword(call, "sync"), True)
            ):
                self._emit(
                    KIND_RELEASE_ON_DATA_STORE, SEVERITY_ERROR, node,
                    "Store(release=True) without sync=True: release "
                    "semantics only exist on synchronization stores",
                )
            if name in ADDRESS_OPS:
                addr = call.args[0] if call.args else _keyword(call, "addr")
                if isinstance(addr, ast.Constant) and isinstance(addr.value, int):
                    self._emit(
                        KIND_RAW_ADDRESS, SEVERITY_ERROR, node,
                        f"{name} of literal address {addr.value}: addresses "
                        "must come from a RegionAllocator allocation so "
                        "region-based self-invalidation can cover them",
                    )

        for bound, node in cas_bindings.items():
            # One read suffices: the binding itself is a Store-ctx Name.
            if bound not in read_names:
                self._emit(
                    KIND_CAS_UNCHECKED, SEVERITY_ERROR, node,
                    f"Cas result bound to {bound!r} but never read: the "
                    "CAS's success is never checked",
                )

        if pushes != pops and (pushes or pops):
            self._emit(
                KIND_UNBALANCED_BUCKETS, SEVERITY_ERROR, self.func,
                f"{pushes} PushBucket vs {pops} PopBucket yields in "
                f"{getattr(self.func, 'name', '<module>')!r}: the "
                "cycle-accounting stack would be corrupted",
            )

    def _own_nodes(self):
        """Walk the function's body without descending into nested defs
        (lambdas are kept: predicates live there)."""
        stack = list(ast.iter_child_nodes(self.func))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint one module's source text; returns its findings."""
    findings: list[Finding] = []
    tree = ast.parse(source, filename=path)
    functions = [
        node for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for func in functions:
        _FunctionLinter(path, func, findings).run()
    # Module-level code participates too (rare, but cheap to cover).
    module_linter = _FunctionLinter(path, tree, findings)
    module_linter.run()
    return findings


def _display_path(path: Path) -> str:
    """Path as reported in findings and the JSON report: relative to the
    working directory when possible, so committed reports don't embed the
    absolute checkout location."""
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def lint_paths(paths: Iterable) -> tuple[list[Finding], list[str]]:
    """Lint every file; returns (findings, files linted)."""
    findings: list[Finding] = []
    linted: list[str] = []
    for path in paths:
        path = Path(path)
        display = _display_path(path)
        findings.extend(lint_source(path.read_text(), display))
        linted.append(display)
    return findings, linted


def default_lint_targets() -> list[Path]:
    """The shipped lint corpus: every module under ``repro.synclib`` and
    ``repro.workloads``."""
    import repro

    root = Path(repro.__file__).resolve().parent
    targets: list[Path] = []
    for package in ("synclib", "workloads"):
        targets.extend(sorted((root / package).glob("*.py")))
    return targets
