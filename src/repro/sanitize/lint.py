"""Static-mode sanitizer: an AST lint pass enforcing simulator idioms.

Thread programs are Python generators yielding ISA ops, which makes a
class of bugs invisible to the runtime: a yielded op whose result the
kernel needed but discarded still *runs*, it just computes garbage (or
only works by luck).  This pass walks every function of the target
sources and enforces:

``discarded-result`` (error)
    A bare ``yield Cas(...)`` / ``yield Fai(...)`` / ``yield Swap(...)``
    statement discards the op's result.  Helping CASes and broadcast
    bumps legitimately ignore it — write ``_ = yield Cas(...)`` to make
    the discard explicit; the lint sanctions the ``_`` binding.
``cas-success-unchecked`` (error)
    The result of a ``yield Cas(...)`` is bound to a name that is never
    read again, so the CAS's success is never checked (bind to ``_``
    for an intentional fire-and-forget CAS).
``waitload-not-sync`` (error)
    ``WaitLoad(..., sync=False)``: a spin-wait is a racy read by
    definition and must be annotated as synchronization.
``unbalanced-buckets`` (error)
    A function yields a different number of ``PushBucket`` and
    ``PopBucket`` ops, corrupting the cycle-accounting stack.
``release-on-data-store`` (error)
    ``Store(..., release=True)`` without ``sync=True``: release
    semantics only exist on synchronization stores.
``raw-address`` (error)
    A literal integer address passed to a memory op instead of an
    address derived from a :class:`~repro.mem.regions.RegionAllocator`
    allocation (literal addresses bypass region tracking, so DeNovo
    self-invalidation cannot cover them).
``waitload-result-discarded`` (warning)
    A bare ``yield WaitLoad(...)`` whose predicate does not pin the
    value with an equality test discards information (the observed
    value is not implied by the predicate passing).  Non-gating.
``undeclared-wake-mutation`` (error, simulator sources only)
    A protocol class mutates the cross-core-visible polled value store
    (``_mem_values`` / ``memory._values``) outside a declared wake hook.
    Epoch execution's spin fast-forward assumes the polled value can
    only change inside the access methods a spinning core is woken
    through (``load``/``store``/``rmw``/``sync_load``/``sync_store``, or
    names listed in a class-level ``wake_hooks`` tuple) — a mutation
    anywhere else could flip a value under an active lease without
    settling it, silently diverging from the reference engine.  See
    :meth:`repro.protocols.base.CoherenceProtocol.spin_poll_lease`.
``unordered-iteration`` (error, simulator sources only)
    A ``for`` loop or order-sensitive comprehension iterates a provably
    set-typed expression without ``sorted(...)``.  Set iteration order
    is a function of element hashes and insertion history, so any
    simulator event sequence derived from it (invalidation fan-out,
    eviction victims, drain order) silently depends on it; the fix —
    ``sorted(...)`` — pins the order.  Order-insensitive consumers
    (``sum``/``min``/``max``/``any``/``all``/``set``/``frozenset``/
    ``sorted`` over a comprehension, or building another set) are not
    flagged.  This rule runs over the simulator sources
    (:func:`simulator_lint_targets`), not the kernel corpus.
"""

from __future__ import annotations

import ast
from pathlib import Path
from collections.abc import Iterable

from repro.sanitize.findings import (
    KIND_CAS_UNCHECKED,
    KIND_DISCARDED_RESULT,
    KIND_RAW_ADDRESS,
    KIND_RELEASE_ON_DATA_STORE,
    KIND_UNBALANCED_BUCKETS,
    KIND_UNDECLARED_WAKE_MUTATION,
    KIND_UNORDERED_ITERATION,
    KIND_WAITLOAD_NOT_SYNC,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
)

KIND_WAITLOAD_DISCARDED = "waitload-result-discarded"

#: The kernel-corpus rules (generator-program idioms).
KERNEL_RULES = frozenset(
    {
        KIND_DISCARDED_RESULT,
        KIND_CAS_UNCHECKED,
        KIND_WAITLOAD_NOT_SYNC,
        KIND_UNBALANCED_BUCKETS,
        KIND_RELEASE_ON_DATA_STORE,
        KIND_RAW_ADDRESS,
        KIND_WAITLOAD_DISCARDED,
    }
)
#: The simulator-source rules (determinism idioms).
SIMULATOR_RULES = frozenset(
    {KIND_UNORDERED_ITERATION, KIND_UNDECLARED_WAKE_MUTATION}
)

#: Ops whose result carries information the program normally needs.
RESULT_OPS = {"Cas", "Fai", "Swap"}
#: Ops taking an address as their first positional argument.
ADDRESS_OPS = {"Load", "Store", "Cas", "Fai", "Swap", "WaitLoad"}


def _call_op(node: ast.AST) -> tuple[str, ast.Call] | None:
    """(op name, call) when ``node`` is a call of a known ISA op."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    else:
        return None
    if name in ADDRESS_OPS or name in ("PushBucket", "PopBucket"):
        return name, node
    return None


def _yielded_call(node: ast.AST) -> tuple[str, ast.Call] | None:
    """(op name, call) when ``node`` is a ``yield <ISA op>(...)``."""
    if isinstance(node, ast.Yield) and node.value is not None:
        return _call_op(node.value)
    return None


def _keyword(call: ast.Call, name: str) -> ast.expr | None:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _is_literal(node: ast.expr | None, value) -> bool:
    return isinstance(node, ast.Constant) and node.value is value


def _predicate_pins_value(call: ast.Call) -> bool:
    """True when the WaitLoad predicate is ``lambda v, ...: v == <expr>``
    (the passing value is implied, so discarding the result loses
    nothing)."""
    pred = call.args[1] if len(call.args) > 1 else _keyword(call, "pred")
    if not isinstance(pred, ast.Lambda):
        return False
    body = pred.body
    if not isinstance(body, ast.Compare) or len(body.ops) != 1:
        return False
    if not isinstance(body.ops[0], ast.Eq):
        return False
    args = pred.args.args
    if not args:
        return False
    value_arg = args[0].arg
    return isinstance(body.left, ast.Name) and body.left.id == value_arg


class _FunctionLinter:
    """Lints one function body (nested defs are linted separately)."""

    def __init__(self, path: str, func: ast.AST, findings: list[Finding]):
        self.path = path
        self.func = func
        self.findings = findings

    def _emit(self, kind: str, severity: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        self.findings.append(
            Finding(
                kind=kind,
                severity=severity,
                message=message,
                site=f"{self.path}:{line}",
                details={"file": self.path, "line": line,
                         "function": getattr(self.func, "name", "<module>")},
            )
        )

    def run(self) -> None:
        pushes = 0
        pops = 0
        cas_bindings: dict[str, ast.AST] = {}
        read_names: set[str] = set()

        for node in self._own_nodes():
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                read_names.add(node.id)

            yielded = None
            if isinstance(node, ast.Expr):
                yielded = _yielded_call(node.value)
                if yielded is not None:
                    name, call = yielded
                    if name in RESULT_OPS:
                        self._emit(
                            KIND_DISCARDED_RESULT, SEVERITY_ERROR, node,
                            f"result of yielded {name} is discarded; bind it "
                            "(or use '_ = yield ...' for an intentional "
                            "discard)",
                        )
                    elif name == "WaitLoad" and not _predicate_pins_value(call):
                        self._emit(
                            KIND_WAITLOAD_DISCARDED, SEVERITY_WARNING, node,
                            "WaitLoad result discarded and its predicate does "
                            "not pin the value with an equality test",
                        )
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                yielded = _yielded_call(node.value)
                if (
                    yielded is not None
                    and yielded[0] == "Cas"
                    and isinstance(target, ast.Name)
                    and target.id != "_"
                ):
                    cas_bindings[target.id] = node

            call_info = _call_op(node)
            if call_info is None:
                continue
            name, call = call_info
            if name == "PushBucket":
                pushes += 1
            elif name == "PopBucket":
                pops += 1
            if name == "WaitLoad" and _is_literal(_keyword(call, "sync"), False):
                self._emit(
                    KIND_WAITLOAD_NOT_SYNC, SEVERITY_ERROR, node,
                    "WaitLoad(sync=False): a spin-wait is racy by definition "
                    "and must be a synchronization access",
                )
            if (
                name == "Store"
                and _is_literal(_keyword(call, "release"), True)
                and not _is_literal(_keyword(call, "sync"), True)
            ):
                self._emit(
                    KIND_RELEASE_ON_DATA_STORE, SEVERITY_ERROR, node,
                    "Store(release=True) without sync=True: release "
                    "semantics only exist on synchronization stores",
                )
            if name in ADDRESS_OPS:
                addr = call.args[0] if call.args else _keyword(call, "addr")
                if isinstance(addr, ast.Constant) and isinstance(addr.value, int):
                    self._emit(
                        KIND_RAW_ADDRESS, SEVERITY_ERROR, node,
                        f"{name} of literal address {addr.value}: addresses "
                        "must come from a RegionAllocator allocation so "
                        "region-based self-invalidation can cover them",
                    )

        for bound, node in cas_bindings.items():
            # One read suffices: the binding itself is a Store-ctx Name.
            if bound not in read_names:
                self._emit(
                    KIND_CAS_UNCHECKED, SEVERITY_ERROR, node,
                    f"Cas result bound to {bound!r} but never read: the "
                    "CAS's success is never checked",
                )

        if pushes != pops and (pushes or pops):
            self._emit(
                KIND_UNBALANCED_BUCKETS, SEVERITY_ERROR, self.func,
                f"{pushes} PushBucket vs {pops} PopBucket yields in "
                f"{getattr(self.func, 'name', '<module>')!r}: the "
                "cycle-accounting stack would be corrupted",
            )

    def _own_nodes(self):
        return _own_nodes(self.func)


#: Functions whose set-typed result keeps the unordered nature explicit.
_SET_MAKERS = {"set", "frozenset"}
#: Set methods returning another set.
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference"}
#: Callables whose result does not depend on argument iteration order.
_ORDER_INSENSITIVE = {
    "sum", "min", "max", "any", "all", "len", "set", "frozenset", "sorted",
}


class _OrderLinter:
    """Flags iteration over provably set-typed expressions in one function.

    Set-typedness is decided purely locally: set displays/comprehensions,
    ``set()``/``frozenset()`` calls, set operators with a provably-set
    operand (``sharers - {core}`` is a set whatever ``sharers`` is — the
    operator would raise otherwise), set-returning methods on a provable
    receiver, and names assigned from any of those in the same function.
    """

    def __init__(self, path: str, func: ast.AST, findings: list[Finding]):
        self.path = path
        self.func = func
        self.findings = findings
        self.set_names: set[str] = set()

    def run(self) -> None:
        nodes = list(_own_nodes(self.func))
        # Pass 1 (twice, for chained aliases): names assigned set-typed
        # expressions anywhere in the function.
        for _ in range(2):
            for node in nodes:
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(target, ast.Name) and self._is_set(node.value):
                        self.set_names.add(target.id)
        parents = {
            id(child): node
            for node in nodes
            for child in ast.iter_child_nodes(node)
        }
        for node in nodes:
            if isinstance(node, (ast.For, ast.AsyncFor)):
                self._check_iter(node.iter, node)
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                if self._order_insensitive_context(node, parents):
                    continue
                for comp in node.generators:
                    self._check_iter(comp.iter, node)

    def _order_insensitive_context(self, node: ast.AST, parents: dict) -> bool:
        parent = parents.get(id(node))
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_INSENSITIVE
            and parent.args
            and parent.args[0] is node
        )

    def _check_iter(self, iter_expr: ast.expr, node: ast.AST) -> None:
        if not self._is_set(iter_expr):
            return
        line = getattr(node, "lineno", 0)
        self.findings.append(
            Finding(
                kind=KIND_UNORDERED_ITERATION,
                severity=SEVERITY_ERROR,
                message=(
                    "iteration over a set: the visit order depends on "
                    "element hashes and insertion history, so any event "
                    "sequence derived from it is nondeterministic — wrap "
                    "the iterable in sorted(...)"
                ),
                site=f"{self.path}:{line}",
                details={"file": self.path, "line": line,
                         "function": getattr(self.func, "name", "<module>")},
            )
        )

    def _is_set(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Sub, ast.BitOr, ast.BitAnd, ast.BitXor)
        ):
            return self._is_set(node.left) or self._is_set(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_MAKERS:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self._is_set(func.value)
            ):
                return True
        return False


#: Access methods through which a spinning core can be woken; protocol
#: classes extend the set with a class-level ``wake_hooks`` tuple of
#: method names.  ``__init__``/``reset`` run before any lease can exist.
DEFAULT_WAKE_HOOKS = frozenset(
    {"load", "store", "rmw", "sync_load", "sync_store",
     "__init__", "reset"}
)
#: Mutating dict methods (beyond subscript stores) on the value store.
_DICT_MUTATORS = {"pop", "popitem", "update", "setdefault", "clear",
                  "__setitem__", "__delitem__"}


def _is_value_store(node: ast.expr) -> bool:
    """True for ``<expr>._mem_values`` and ``<expr>.memory._values``,
    the cross-core-visible polled value store in either spelling."""
    if not isinstance(node, ast.Attribute):
        return False
    if node.attr == "_mem_values":
        return True
    return (
        node.attr == "_values"
        and isinstance(node.value, ast.Attribute)
        and node.value.attr == "memory"
    )


class _WakeMutationLinter:
    """Flags polled-value-store mutations outside declared wake hooks.

    Runs over a whole module: for every class that is recognizably a
    protocol (its own name, or a base class name, ends in ``Protocol``),
    each method may mutate ``_mem_values`` / ``memory._values`` only if
    it is a default wake hook or named in the class's ``wake_hooks``
    tuple.  This is the one invariant the epoch engine's spin
    fast-forward depends on: a lease tick re-checks the polled value at
    every would-be poll, which is sound only if the value cannot change
    between a wake hook's execution and the next tick.
    """

    def __init__(self, path: str, tree: ast.Module, findings: list[Finding]):
        self.path = path
        self.tree = tree
        self.findings = findings

    def run(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef) and self._is_protocol(node):
                self._check_class(node)

    @staticmethod
    def _is_protocol(cls: ast.ClassDef) -> bool:
        if cls.name.endswith("Protocol"):
            return True
        for base in cls.bases:
            name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else ""
            )
            if name.endswith("Protocol"):
                return True
        return False

    @staticmethod
    def _declared_hooks(cls: ast.ClassDef) -> frozenset:
        """Default hooks plus the class's literal ``wake_hooks`` names."""
        extra: set[str] = set()
        for stmt in cls.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "wake_hooks"
                and isinstance(stmt.value, (ast.Tuple, ast.List, ast.Set))
            ):
                for element in stmt.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        extra.add(element.value)
        return DEFAULT_WAKE_HOOKS | extra

    def _check_class(self, cls: ast.ClassDef) -> None:
        hooks = self._declared_hooks(cls)
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in hooks:
                continue
            for site in self._mutations(method):
                line = getattr(site, "lineno", 0)
                self.findings.append(
                    Finding(
                        kind=KIND_UNDECLARED_WAKE_MUTATION,
                        severity=SEVERITY_ERROR,
                        message=(
                            f"{cls.name}.{method.name} mutates the polled "
                            "value store outside a declared wake hook: the "
                            "epoch engine's spin fast-forward only observes "
                            "value changes made inside "
                            "load/store/rmw/sync_load/sync_store (or a "
                            "method named in the class's wake_hooks tuple) "
                            "— move the mutation, or declare the hook"
                        ),
                        site=f"{self.path}:{line}",
                        details={"file": self.path, "line": line,
                                 "function": f"{cls.name}.{method.name}"},
                    )
                )

    @staticmethod
    def _mutations(method: ast.AST):
        """Yield mutation sites of the value store in one method body
        (nested defs included: a closure mutating it is just as unsound)."""
        for node in ast.walk(method):
            if isinstance(node, ast.Subscript) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                if _is_value_store(node.value):
                    yield node
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _DICT_MUTATORS
                    and _is_value_store(func.value)
                ):
                    yield node


def _own_nodes(func: ast.AST):
    """Walk a function's body without descending into nested defs
    (lambdas are kept: predicates live there)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def lint_source(
    source: str,
    path: str = "<string>",
    rules: frozenset | None = None,
) -> list[Finding]:
    """Lint one module's source text; returns its findings.

    ``rules`` restricts which finding kinds run (default: the kernel
    rules, preserving the historical behavior of this entry point).
    """
    rules = KERNEL_RULES if rules is None else rules
    findings: list[Finding] = []
    tree = ast.parse(source, filename=path)
    functions = [
        node for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    scopes = functions + [tree]  # module-level code participates too
    for scope in scopes:
        if rules & KERNEL_RULES:
            _FunctionLinter(path, scope, findings).run()
        if KIND_UNORDERED_ITERATION in rules:
            _OrderLinter(path, scope, findings).run()
    if KIND_UNDECLARED_WAKE_MUTATION in rules:
        _WakeMutationLinter(path, tree, findings).run()
    return [f for f in findings if f.kind in rules]


def _display_path(path: Path) -> str:
    """Path as reported in findings and the JSON report: relative to the
    working directory when possible, so committed reports don't embed the
    absolute checkout location."""
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def lint_paths(
    paths: Iterable, rules: frozenset | None = None
) -> tuple[list[Finding], list[str]]:
    """Lint every file; returns (findings, files linted)."""
    findings: list[Finding] = []
    linted: list[str] = []
    for path in paths:
        path = Path(path)
        display = _display_path(path)
        findings.extend(lint_source(path.read_text(), display, rules=rules))
        linted.append(display)
    return findings, linted


def default_lint_targets() -> list[Path]:
    """The shipped lint corpus: every module under ``repro.synclib`` and
    ``repro.workloads``."""
    import repro

    root = Path(repro.__file__).resolve().parent
    targets: list[Path] = []
    for package in ("synclib", "workloads"):
        targets.extend(sorted((root / package).glob("*.py")))
    return targets


def simulator_lint_targets() -> list[Path]:
    """The determinism-rule corpus: every module of the simulator core —
    the packages whose iteration order can reach the event sequence."""
    import repro

    root = Path(repro.__file__).resolve().parent
    targets: list[Path] = []
    for package in ("sim", "protocols", "mem", "noc", "mc"):
        targets.extend(sorted((root / package).glob("*.py")))
    return targets
