"""Per-thread execution context handed to workload program factories."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.config import SystemConfig
from repro.mem.regions import RegionAllocator


@dataclass
class ThreadCtx:
    """Everything a thread program needs to know about its environment.

    ``rng`` is seeded per (run seed, core id) so whole runs are
    deterministic and cores are mutually decorrelated.
    """

    core_id: int
    num_cores: int
    config: SystemConfig
    allocator: RegionAllocator
    rng: random.Random

    def uniform_cycles(self, lo: int, hi: int) -> int:
        """A uniformly random cycle count in [lo, hi), as the paper's
        dummy-computation windows are specified."""
        if hi <= lo:
            return lo
        return self.rng.randrange(lo, hi)
