"""Simulated cores and their operation ISA."""

from repro.cpu.isa import (
    Cas,
    Compute,
    Fai,
    Load,
    PopBucket,
    PushBucket,
    SelfInvalidate,
    Store,
    Swap,
    WaitLoad,
)
from repro.cpu.core import Core
from repro.cpu.thread import ThreadCtx

__all__ = [
    "Cas",
    "Compute",
    "Core",
    "Fai",
    "Load",
    "PopBucket",
    "PushBucket",
    "SelfInvalidate",
    "Store",
    "Swap",
    "ThreadCtx",
    "WaitLoad",
]
