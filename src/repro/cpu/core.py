"""The simulated core: a simple in-order, 1-CPI engine with blocking loads.

A core drives one thread program (a generator yielding ISA operations).
Every operation is applied to the coherence protocol atomically at issue
time; the core then sleeps on the event queue for the returned latency and
resumes the generator with the result value.

Cycle accounting follows the paper's figure components: each instruction
costs one compute cycle (spinning read *hits* therefore show up as compute
time); miss latency beyond the first cycle is memory stall; hardware
backoff stalls are tracked separately; and a bucket-override stack lets
the workload driver route whole stretches (the end-of-kernel barrier, the
non-synchronization dummy work) to their own components.

Spin-wait execution (:class:`~repro.cpu.isa.WaitLoad`):

* under MESI the core probes once, then *subscribes* to the invalidation
  of its cached copy and sleeps — modelling the zero-traffic local spin —
  waking to re-probe when the writer's invalidation arrives;
* under DeNovo the core re-probes in a loop; every probe is a registering
  sync-read miss, preceded by whatever hardware backoff the protocol asks
  for.  This is where DeNovoSync0's ping-ponging and DeNovoSync's adaptive
  delays emerge.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.cpu import isa
from repro.protocols.base import Access, CoherenceProtocol
from repro.sim.engine import Simulator
from repro.stats.timeparts import TimeBreakdown, TimeComponent

#: Cycles of loop overhead between consecutive spin probes (branch + test).
SPIN_LOOP_OVERHEAD = 1

#: Operations that are *visible* to a schedule controller: each issue is
#: a decision point when ``sim.controller`` is set.  ``WaitLoad`` is
#: gated per probe in :meth:`Core._spin_probe` instead, so every probe of
#: a spin loop is its own decision point.
GATED_OPS = (isa.Load, isa.Store, isa.Cas, isa.Fai, isa.Swap, isa.SelfInvalidate)


class Core:
    """One in-order core executing one thread program."""

    def __init__(self, core_id: int, sim: Simulator, protocol: CoherenceProtocol):
        self.core_id = core_id
        self.sim = sim
        self.protocol = protocol
        self.time = TimeBreakdown()
        self.finish_time: Optional[int] = None
        self._gen: Optional[Generator] = None
        self._bucket_stack: list[TimeComponent] = []
        # Watchdog-visible blocked state: the ISA op currently in flight,
        # why the core is waiting (a constant string — no per-op
        # formatting on the hot path), and when it started waiting.
        self.pending_op = None
        self.wait_reason: Optional[str] = None
        self.blocked_since = 0
        # One-shot token set by ScheduleController.release: lets the
        # parked continuation pass the gate exactly once.
        self._release_granted = False

    # -- lifecycle ----------------------------------------------------------

    def start(self, program: Generator) -> None:
        """Begin executing ``program`` at cycle 0."""
        self._gen = program
        self.sim.schedule_at(0, lambda: self._step(None))

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    # -- accounting -----------------------------------------------------------

    def _bucket(self) -> Optional[TimeComponent]:
        return self._bucket_stack[-1] if self._bucket_stack else None

    def _account(self, component: TimeComponent, cycles: int) -> None:
        if cycles <= 0:
            return
        override = self._bucket()
        self.time.add(override if override is not None else component, cycles)

    def _account_access(self, access: Access) -> None:
        """One compute cycle to issue, the rest of the latency as stall."""
        if access.retry:
            # Waiting out a busy directory is pure memory stall.
            self._account(TimeComponent.MEMORY_STALL, access.latency)
            return
        self._account(TimeComponent.COMPUTE, min(access.latency, 1))
        if access.latency > 1:
            self._account(TimeComponent.MEMORY_STALL, access.latency - 1)

    # -- the dispatch loop --------------------------------------------------------

    def _step(self, send_value) -> None:
        """Resume the program with ``send_value`` and run its next operation."""
        assert self._gen is not None
        # Resuming the generator is the retirement point of the previous
        # operation: stamp global progress for the liveness watchdog.
        self.sim.progress_cycle = self.sim.now
        try:
            op = self._gen.send(send_value)
        except StopIteration:
            self.finish_time = self.sim.now
            self.pending_op = None
            self.wait_reason = None
            return
        self.pending_op = op
        self.blocked_since = self.sim.now
        self._dispatch(op)

    def _resume_after(self, delay: int, value=None) -> None:
        self.sim.schedule_after(delay, lambda: self._step(value))

    def _gate(self, op, cont) -> bool:
        """Park at a scheduling decision point; True if parked.

        With ``sim.controller`` set, a visible operation does not issue on
        its own: the core hands the controller a continuation and goes
        quiet.  :meth:`ScheduleController.release` grants a one-shot token
        and reschedules ``cont``, which then passes this gate and issues.
        Without a controller this is one attribute test.
        """
        controller = self.sim.controller
        if controller is None:
            return False
        if self._release_granted:
            self._release_granted = False
            return False
        self.wait_reason = "schedule-gate"
        self.blocked_since = self.sim.now
        controller.arrive(self, op, cont)
        return True

    def _dispatch(self, op) -> None:
        if isinstance(op, GATED_OPS) and self._gate(op, lambda: self._dispatch(op)):
            return
        self.protocol.set_time(self.sim.now)
        if isinstance(op, isa.Compute):
            self.wait_reason = "compute"
            self._account(op.component, op.cycles)
            self._resume_after(op.cycles)
        elif isinstance(op, isa.Load):
            self._issue_load(op)
        elif isinstance(op, isa.Store):
            self._issue_store(op)
        elif isinstance(op, isa.Cas):
            self._issue_rmw(
                op.addr,
                lambda old: op.new if old == op.expected else None,
                op.release,
                acquire=op.acquire,
            )
        elif isinstance(op, isa.Fai):
            self._issue_rmw(
                op.addr, lambda old: old + op.delta, op.release, acquire=op.acquire
            )
        elif isinstance(op, isa.Swap):
            self._issue_rmw(
                op.addr, lambda old: op.value, op.release, acquire=op.acquire
            )
        elif isinstance(op, isa.WaitLoad):
            self._spin_probe(op)
        elif isinstance(op, isa.SelfInvalidate):
            self.wait_reason = "self-invalidate"
            latency = self.protocol.self_invalidate(
                self.core_id, list(op.regions), flush_all=op.flush_all
            )
            self._account(TimeComponent.COMPUTE, latency)
            self._resume_after(latency)
        elif isinstance(op, isa.PushBucket):
            self._bucket_stack.append(op.component)
            self._step(None)
        elif isinstance(op, isa.PopBucket):
            if not self._bucket_stack:
                raise RuntimeError(f"core {self.core_id}: PopBucket with empty stack")
            self._bucket_stack.pop()
            self._step(None)
        else:
            raise TypeError(f"core {self.core_id}: unknown operation {op!r}")

    # -- loads (with hardware backoff) ------------------------------------------

    def _issue_load(self, op: isa.Load) -> None:
        if op.sync:
            backoff = self.protocol.sync_read_backoff(self.core_id, op.addr)
            if backoff > 0:
                self.wait_reason = "hw-backoff"
                self._account(TimeComponent.HW_BACKOFF, backoff)
                self.sim.schedule_after(backoff, lambda: self._finish_load(op))
                return
        self._finish_load(op)

    def _finish_load(self, op: isa.Load, ticketed: bool = False) -> None:
        self.protocol.set_time(self.sim.now)
        access = self.protocol.load(
            self.core_id, op.addr, sync=op.sync, ticketed=ticketed,
            acquire=op.acquire,
        )
        self._account_access(access)
        if access.retry:
            self.wait_reason = "directory-retry"
            self.sim.schedule_after(
                access.latency, lambda: self._finish_load(op, ticketed=True)
            )
            return
        self.wait_reason = "memory-access"
        self._resume_after(access.latency, access.value)

    def _issue_store(self, op: isa.Store, ticketed: bool = False) -> None:
        self.protocol.set_time(self.sim.now)
        access = self.protocol.store(
            self.core_id,
            op.addr,
            op.value,
            sync=op.sync,
            release=op.release,
            ticketed=ticketed,
        )
        self._account_access(access)
        if access.retry:
            self.wait_reason = "directory-retry"
            self.sim.schedule_after(
                access.latency, lambda: self._issue_store(op, ticketed=True)
            )
            return
        self.wait_reason = "memory-access"
        self._resume_after(access.latency, access.value)

    def _issue_rmw(
        self, addr: int, fn, release: bool, ticketed: bool = False,
        acquire: bool = False,
    ) -> None:
        self.protocol.set_time(self.sim.now)
        access = self.protocol.rmw(
            self.core_id, addr, fn, release=release, ticketed=ticketed,
            acquire=acquire,
        )
        self._account_access(access)
        if access.retry:
            self.wait_reason = "directory-retry"
            self.sim.schedule_after(
                access.latency,
                lambda: self._issue_rmw(
                    addr, fn, release, ticketed=True, acquire=acquire
                ),
            )
            return
        self.wait_reason = "memory-access"
        self._resume_after(access.latency, access.value)

    # -- spin-wait ------------------------------------------------------------------

    def _spin_probe(self, op: isa.WaitLoad) -> None:
        """One probe of a spin-wait; reschedules itself until ``pred`` holds."""
        if self._gate(op, lambda: self._spin_probe(op)):
            return
        self.protocol.set_time(self.sim.now)
        if op.sync:
            backoff = self.protocol.sync_read_backoff(
                self.core_id, op.addr, spinning=True
            )
            if backoff > 0:
                self.wait_reason = "hw-backoff"
                self._account(TimeComponent.HW_BACKOFF, backoff)
                self.sim.schedule_after(backoff, lambda: self._spin_probe_issue(op))
                return
        self._spin_probe_issue(op)

    def _spin_probe_issue(self, op: isa.WaitLoad, ticketed: bool = False) -> None:
        self.protocol.set_time(self.sim.now)
        access = self.protocol.load(
            self.core_id, op.addr, sync=op.sync, ticketed=ticketed
        )
        self._account_access(access)
        if access.retry:
            self.wait_reason = "directory-retry"
            self.sim.schedule_after(
                access.latency, lambda: self._spin_probe_issue(op, ticketed=True)
            )
            return
        if op.pred(access.value):
            if op.acquire:
                # The successful probe is the acquire point.
                self.protocol.on_acquire(self.core_id, op.addr)
            self.wait_reason = "memory-access"
            self._resume_after(access.latency, access.value)
            return
        # Failed probe: wait for our copy to change if the protocol can tell
        # us (MESI), otherwise poll again after the probe completes.
        retry_at = self.sim.now + access.latency

        def on_invalidated(wake_time: int) -> None:
            wake = max(wake_time, retry_at)
            # The wait itself is local spinning on a cached copy: compute.
            self._account(TimeComponent.COMPUTE, max(0, wake - retry_at))
            self.sim.schedule_at(wake, lambda: self._spin_probe(op))

        subscribed = self.protocol.subscribe_line_change(
            self.core_id, op.addr, on_invalidated
        )
        if subscribed:
            # Sleeping with no scheduled event of our own: only the
            # protocol's wake callback can resume us.  This is the state
            # the PR-1 eviction bug stranded cores in.
            self.wait_reason = "spin-sleep (subscribed)"
        else:
            self.wait_reason = "spin-poll"
            self._account(TimeComponent.COMPUTE, SPIN_LOOP_OVERHEAD)
            self.sim.schedule_at(
                retry_at + SPIN_LOOP_OVERHEAD, lambda: self._spin_probe(op)
            )
