"""The simulated core: a simple in-order, 1-CPI engine with blocking loads.

A core drives one thread program (a generator yielding ISA operations).
Every operation is applied to the coherence protocol atomically at issue
time; the core then sleeps on the event queue for the returned latency and
resumes the generator with the result value.

Cycle accounting follows the paper's figure components: each instruction
costs one compute cycle (spinning read *hits* therefore show up as compute
time); miss latency beyond the first cycle is memory stall; hardware
backoff stalls are tracked separately; and a bucket-override stack lets
the workload driver route whole stretches (the end-of-kernel barrier, the
non-synchronization dummy work) to their own components.

Spin-wait execution (:class:`~repro.cpu.isa.WaitLoad`):

* under MESI the core probes once, then *subscribes* to the invalidation
  of its cached copy and sleeps — modelling the zero-traffic local spin —
  waking to re-probe when the writer's invalidation arrives;
* under DeNovo the core re-probes in a loop; every probe is a registering
  sync-read miss, preceded by whatever hardware backoff the protocol asks
  for.  This is where DeNovoSync0's ping-ponging and DeNovoSync's adaptive
  delays emerge.

Hot-path structure: operations dispatch through a per-class handler table
instead of an ``isinstance`` chain, and every event the core schedules
goes through :meth:`~repro.sim.engine.Simulator.call_after` /
``call_at`` with a method prebound in ``__init__`` — no closure and no
``Event`` allocation per operation.  The state a retry needs (the op, the
RMW operands, the spin re-probe cycle) lives in per-core fields, which is
sound because an in-order blocking core has exactly one operation in
flight.
"""

from __future__ import annotations

from collections.abc import Generator

from repro.cpu import isa
from repro.protocols.base import Access, CoherenceProtocol
from repro.sim.engine import Simulator
from repro.stats.timeparts import TimeBreakdown, TimeComponent

#: Cycles of loop overhead between consecutive spin probes (branch + test).
SPIN_LOOP_OVERHEAD = 1

#: Array ordinals of the components touched on every memory access
#: (accounting indexes ``TimeBreakdown._cycles`` directly, see below).
_IDX_COMPUTE = TimeComponent.COMPUTE.idx
_IDX_MEMORY_STALL = TimeComponent.MEMORY_STALL.idx

#: Operations that are *visible* to a schedule controller: each issue is
#: a decision point when ``sim.controller`` is set.  ``WaitLoad`` is
#: gated per probe in :meth:`Core._spin_probe` instead, so every probe of
#: a spin loop is its own decision point.
GATED_OPS = (isa.Load, isa.Store, isa.Cas, isa.Fai, isa.Swap, isa.SelfInvalidate)


class Core:
    """One in-order core executing one thread program."""

    def __init__(self, core_id: int, sim: Simulator, protocol: CoherenceProtocol):
        self.core_id = core_id
        self.sim = sim
        self.protocol = protocol
        self.time = TimeBreakdown()
        self._tc = self.time._cycles
        # With invariant checking off, set_time degenerates to a clock
        # store; cores then write ``protocol.now`` directly and skip the
        # method call (several per memory operation).  Guarded on the
        # protocol using the *base* set_time: the trace recorder and
        # fault-injection wrappers override it and must keep being called.
        self._fast_time = (
            getattr(type(protocol), "set_time", None)
            is CoherenceProtocol.set_time
            and getattr(protocol, "_invariant_period", 1) == 0
        )
        # Protocols that never ask for hardware backoff (everything except
        # DeNovoSync; wrappers count as "may ask") skip the query entirely
        # on sync loads and spin probes.
        self._has_backoff = (
            getattr(type(protocol), "sync_read_backoff", None)
            is not CoherenceProtocol.sync_read_backoff
        )
        self.finish_time: int | None = None
        self._gen: Generator | None = None
        self._bucket_stack: list[TimeComponent] = []
        # Watchdog-visible blocked state: the ISA op currently in flight,
        # why the core is waiting (a constant string — no per-op
        # formatting on the hot path), and when it started waiting.
        self.pending_op = None
        self.wait_reason: str | None = None
        self.blocked_since = 0
        # One-shot token set by ScheduleController.release: lets the
        # parked continuation pass the gate exactly once.
        self._release_granted = False
        # In-flight retry state (one op in flight on an in-order core).
        self._rmw_state: tuple | None = None
        self._spin_op: isa.WaitLoad | None = None
        self._spin_retry_at = 0
        # Spin fast-forward (epoch mode): a granted lease, flattened for
        # the tick hot path as (expected value, re-poll period, counter
        # keys, traffic row, flits/poll, messages/poll, ((time-component
        # idx, cycles), ...)).  Armed in _spin_probe_issue, consumed by
        # _lease_tick.  Eligibility is static per run: the reference
        # engine path, any protocol wrapper (tracing, fault injection,
        # which override set_time and so clear _fast_time), runtime
        # invariant sampling, and backoff-capable protocols all disable
        # leasing; a schedule controller is re-checked at arm time.
        self._lease: tuple | None = None
        self._lease_ok = (
            sim.epoch_mode
            and self._fast_time
            and not self._has_backoff
            and getattr(type(protocol), "spin_poll_lease", None)
            is not CoherenceProtocol.spin_poll_lease
        )
        # Callbacks prebound once so the hot path schedules (method, arg)
        # pairs instead of allocating a closure per operation.
        self._cb_step = self._step
        self._cb_finish_load = self._finish_load
        self._cb_retry_load = self._retry_load
        self._cb_retry_store = self._retry_store
        self._cb_retry_rmw = self._retry_rmw
        self._cb_spin_probe = self._spin_probe
        self._cb_spin_probe_issue = self._spin_probe_issue
        self._cb_spin_retry = self._retry_spin_probe
        self._cb_on_invalidated = self._on_invalidated
        self._cb_lease_tick = self._lease_tick

    # -- lifecycle ----------------------------------------------------------

    def start(self, program: Generator) -> None:
        """Begin executing ``program`` at cycle 0."""
        self._gen = program
        self.sim.call_at(0, self._cb_step, None)

    @property
    def done(self) -> bool:
        return self.finish_time is not None

    # -- accounting -----------------------------------------------------------

    def _bucket(self) -> TimeComponent | None:
        return self._bucket_stack[-1] if self._bucket_stack else None

    def _account(self, component: TimeComponent, cycles: int) -> None:
        # Accounting runs several times per memory operation, so both
        # methods write the breakdown array directly instead of going
        # through TimeBreakdown.add.
        if cycles <= 0:
            return
        stack = self._bucket_stack
        self._tc[(stack[-1] if stack else component).idx] += cycles

    def _account_access(self, access: Access) -> None:
        """One compute cycle to issue, the rest of the latency as stall."""
        lat = access.latency
        if lat <= 0:
            return
        tc = self._tc
        stack = self._bucket_stack
        if access.retry:
            # Waiting out a busy directory is pure memory stall.
            tc[stack[-1].idx if stack else _IDX_MEMORY_STALL] += lat
            return
        if stack:
            # Both the compute and the stall share go to the override
            # bucket, so they collapse into one add.
            tc[stack[-1].idx] += lat
        else:
            tc[_IDX_COMPUTE] += 1
            if lat > 1:
                tc[_IDX_MEMORY_STALL] += lat - 1

    # -- the dispatch loop --------------------------------------------------------

    def _step(self, send_value) -> None:
        """Resume the program with ``send_value`` and run its next operation."""
        # Resuming the generator is the retirement point of the previous
        # operation: stamp global progress for the liveness watchdog.
        sim = self.sim
        sim.progress_cycle = sim.now
        try:
            op = self._gen.send(send_value)
        except StopIteration:
            self.finish_time = sim.now
            self.pending_op = None
            self.wait_reason = None
            return
        self.pending_op = op
        self.blocked_since = sim.now
        self._dispatch(op)

    def _resume_after(self, delay: int, value=None) -> None:
        self.sim.call_after(delay, self._cb_step, value)

    def _gate(self, op, cont) -> bool:
        """Park at a scheduling decision point; True if parked.

        With ``sim.controller`` set, a visible operation does not issue on
        its own: the core hands the controller a continuation and goes
        quiet.  :meth:`ScheduleController.release` grants a one-shot token
        and reschedules ``cont``, which then passes this gate and issues.
        Without a controller this is one attribute test.
        """
        controller = self.sim.controller
        if controller is None:
            return False
        if self._release_granted:
            self._release_granted = False
            return False
        self.wait_reason = "schedule-gate"
        self.blocked_since = self.sim.now
        controller.arrive(self, op, cont)
        return True

    def _dispatch(self, op) -> None:
        sim = self.sim
        if (
            sim.controller is not None
            and isinstance(op, GATED_OPS)
            and self._gate(op, lambda: self._dispatch(op))
        ):
            return
        if self._fast_time:
            self.protocol.now = sim.now
        else:
            self.protocol.set_time(sim.now)
        handler = _HANDLERS.get(op.__class__)
        if handler is None:
            raise TypeError(f"core {self.core_id}: unknown operation {op!r}")
        handler(self, op)

    # -- per-class handlers (wired into _HANDLERS below) ----------------------

    def _h_compute(self, op: isa.Compute) -> None:
        self.wait_reason = "compute"
        self._account(op.component, op.cycles)
        self._resume_after(op.cycles)

    def _h_cas(self, op: isa.Cas) -> None:
        self._issue_rmw(
            op.addr,
            lambda old: op.new if old == op.expected else None,
            op.release,
            acquire=op.acquire,
        )

    def _h_fai(self, op: isa.Fai) -> None:
        self._issue_rmw(
            op.addr, lambda old: old + op.delta, op.release, acquire=op.acquire
        )

    def _h_swap(self, op: isa.Swap) -> None:
        self._issue_rmw(op.addr, lambda old: op.value, op.release, acquire=op.acquire)

    def _h_self_invalidate(self, op: isa.SelfInvalidate) -> None:
        self.wait_reason = "self-invalidate"
        latency = self.protocol.self_invalidate(
            self.core_id, list(op.regions), flush_all=op.flush_all
        )
        self._account(TimeComponent.COMPUTE, latency)
        self._resume_after(latency)

    def _h_push_bucket(self, op: isa.PushBucket) -> None:
        self._bucket_stack.append(op.component)
        self._step(None)

    def _h_pop_bucket(self, op: isa.PopBucket) -> None:
        if not self._bucket_stack:
            raise RuntimeError(f"core {self.core_id}: PopBucket with empty stack")
        self._bucket_stack.pop()
        self._step(None)

    # -- loads (with hardware backoff) ------------------------------------------

    def _issue_load(self, op: isa.Load) -> None:
        if op.sync and self._has_backoff:
            backoff = self.protocol.sync_read_backoff(self.core_id, op.addr)
            if backoff > 0:
                self.wait_reason = "hw-backoff"
                self._account(TimeComponent.HW_BACKOFF, backoff)
                self.sim.call_after(backoff, self._cb_finish_load, op)
                return
        self._finish_load(op)

    def _finish_load(self, op: isa.Load, ticketed: bool = False) -> None:
        if self._fast_time:
            self.protocol.now = self.sim.now
        else:
            self.protocol.set_time(self.sim.now)
        access = self.protocol.load(
            self.core_id, op.addr, sync=op.sync, ticketed=ticketed,
            acquire=op.acquire,
        )
        self._account_access(access)
        if access.retry:
            self.wait_reason = "directory-retry"
            self.sim.call_after(access.latency, self._cb_retry_load, op)
            return
        self.wait_reason = "memory-access"
        self._resume_after(access.latency, access.value)

    def _retry_load(self, op: isa.Load) -> None:
        self._finish_load(op, ticketed=True)

    def _issue_store(self, op: isa.Store, ticketed: bool = False) -> None:
        if self._fast_time:
            self.protocol.now = self.sim.now
        else:
            self.protocol.set_time(self.sim.now)
        access = self.protocol.store(
            self.core_id,
            op.addr,
            op.value,
            sync=op.sync,
            release=op.release,
            ticketed=ticketed,
        )
        self._account_access(access)
        if access.retry:
            self.wait_reason = "directory-retry"
            self.sim.call_after(access.latency, self._cb_retry_store, op)
            return
        self.wait_reason = "memory-access"
        self._resume_after(access.latency, access.value)

    def _retry_store(self, op: isa.Store) -> None:
        self._issue_store(op, ticketed=True)

    def _issue_rmw(
        self, addr: int, fn, release: bool, ticketed: bool = False,
        acquire: bool = False,
    ) -> None:
        if self._fast_time:
            self.protocol.now = self.sim.now
        else:
            self.protocol.set_time(self.sim.now)
        access = self.protocol.rmw(
            self.core_id, addr, fn, release=release, ticketed=ticketed,
            acquire=acquire,
        )
        self._account_access(access)
        if access.retry:
            self.wait_reason = "directory-retry"
            self._rmw_state = (addr, fn, release, acquire)
            self.sim.call_after(access.latency, self._cb_retry_rmw, None)
            return
        self.wait_reason = "memory-access"
        self._resume_after(access.latency, access.value)

    def _retry_rmw(self, _unused) -> None:
        addr, fn, release, acquire = self._rmw_state
        self._issue_rmw(addr, fn, release, ticketed=True, acquire=acquire)

    # -- spin-wait ------------------------------------------------------------------

    def _spin_probe(self, op: isa.WaitLoad) -> None:
        """One probe of a spin-wait; reschedules itself until ``pred`` holds."""
        if self.sim.controller is not None and self._gate(
            op, lambda: self._spin_probe(op)
        ):
            return
        if self._fast_time:
            self.protocol.now = self.sim.now
        else:
            self.protocol.set_time(self.sim.now)
        if op.sync and self._has_backoff:
            backoff = self.protocol.sync_read_backoff(
                self.core_id, op.addr, spinning=True
            )
            if backoff > 0:
                self.wait_reason = "hw-backoff"
                self._account(TimeComponent.HW_BACKOFF, backoff)
                self.sim.call_after(backoff, self._cb_spin_probe_issue, op)
                return
        self._spin_probe_issue(op)

    def _spin_probe_issue(self, op: isa.WaitLoad, ticketed: bool = False) -> None:
        if self._fast_time:
            self.protocol.now = self.sim.now
        else:
            self.protocol.set_time(self.sim.now)
        access = self.protocol.load(
            self.core_id, op.addr, sync=op.sync, ticketed=ticketed
        )
        self._account_access(access)
        if access.retry:
            self.wait_reason = "directory-retry"
            self.sim.call_after(access.latency, self._cb_spin_retry, op)
            return
        if op.pred(access.value):
            if op.acquire:
                # The successful probe is the acquire point.
                self.protocol.on_acquire(self.core_id, op.addr)
            self.wait_reason = "memory-access"
            self._resume_after(access.latency, access.value)
            return
        # Failed probe: wait for our copy to change if the protocol can tell
        # us (MESI), otherwise poll again after the probe completes.
        retry_at = self.sim.now + access.latency
        self._spin_op = op
        self._spin_retry_at = retry_at
        subscribed = self.protocol.subscribe_line_change(
            self.core_id, op.addr, self._cb_on_invalidated
        )
        if subscribed:
            # Sleeping with no scheduled event of our own: only the
            # protocol's wake callback can resume us.  This is the state
            # the PR-1 eviction bug stranded cores in.
            self.wait_reason = "spin-sleep (subscribed)"
            return
        self.wait_reason = "spin-poll"
        self._account(TimeComponent.COMPUTE, SPIN_LOOP_OVERHEAD)
        sim = self.sim
        if self._lease_ok and op.sync and sim.controller is None:
            lease = self.protocol.spin_poll_lease(self.core_id, op.addr)
            if lease is not None:
                lat = lease.latency
                stack = self._bucket_stack
                # Freeze the per-poll time accounting now: the stack
                # cannot change while this core is blocked spinning.
                # Mirrors _account_access(lat) + the loop-overhead
                # compute cycle above.
                if stack:
                    acct = (
                        (stack[-1].idx, max(lat, 0) + SPIN_LOOP_OVERHEAD),
                    )
                elif lat > 1:
                    acct = (
                        (_IDX_COMPUTE, 1 + SPIN_LOOP_OVERHEAD),
                        (_IDX_MEMORY_STALL, lat - 1),
                    )
                else:
                    acct = (
                        (_IDX_COMPUTE, max(lat, 0) + SPIN_LOOP_OVERHEAD),
                    )
                self._lease = (
                    access.value,
                    lat + SPIN_LOOP_OVERHEAD,
                    lease.counts,
                    lease.traffic_idx,
                    lease.flits,
                    lease.messages,
                    acct,
                )
                self.wait_reason = "spin-poll (leased)"
                sim.call_at(
                    retry_at + SPIN_LOOP_OVERHEAD, self._cb_lease_tick, op
                )
                return
        sim.call_at(retry_at + SPIN_LOOP_OVERHEAD, self._cb_spin_probe, op)

    def _lease_tick(self, op: isa.WaitLoad) -> None:
        """One fast-forwarded spin poll under a granted lease.

        Fires at exactly the cycle (and, because the successor is
        scheduled from inside the same event, the sequence number) the
        full probe would have occupied.  While the polled value is
        unchanged the probe's outcome is a stateless repeat (the
        :meth:`~repro.protocols.base.CoherenceProtocol.spin_poll_lease`
        contract) — re-reading the value each tick keeps even an
        A→B→A flip exact — so only the constant deltas are applied.  On
        any change the full probe runs *inside this same event*,
        which re-evaluates the predicate, resumes or re-arms, and keeps
        the schedule byte-identical to the reference engine's.
        """
        lease = self._lease
        protocol = self.protocol
        if protocol._mem_get(op.addr, 0) != lease[0]:
            self._lease = None
            self._spin_probe(op)
            return
        counts = protocol._counts
        for key in lease[2]:
            counts[key] += 1
        idx = lease[3]
        protocol._tflits[idx] += lease[4]
        protocol._tmsgs[idx] += lease[5]
        tc = self._tc
        for cidx, cycles in lease[6]:
            tc[cidx] += cycles
        sim = self.sim
        sim._epoch_spin_elided += 1
        sim.call_after(lease[1], self._cb_lease_tick, op)

    def _retry_spin_probe(self, op: isa.WaitLoad) -> None:
        self._spin_probe_issue(op, ticketed=True)

    def _on_invalidated(self, wake_time: int) -> None:
        retry_at = self._spin_retry_at
        wake = wake_time if wake_time > retry_at else retry_at
        # The wait itself is local spinning on a cached copy: compute.
        self._account(TimeComponent.COMPUTE, wake - retry_at)
        self.sim.call_at(wake, self._cb_spin_probe, self._spin_op)


#: Operation dispatch: one dict lookup on the op's exact class instead of
#: a nine-way isinstance chain per operation.
_HANDLERS = {
    isa.Compute: Core._h_compute,
    isa.Load: Core._issue_load,
    isa.Store: Core._issue_store,
    isa.Cas: Core._h_cas,
    isa.Fai: Core._h_fai,
    isa.Swap: Core._h_swap,
    isa.WaitLoad: Core._spin_probe,
    isa.SelfInvalidate: Core._h_self_invalidate,
    isa.PushBucket: Core._h_push_bucket,
    isa.PopBucket: Core._h_pop_bucket,
}
