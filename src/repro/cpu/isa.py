"""Operations a simulated thread can yield to its core.

Thread programs are Python generators.  Each ``yield op`` hands the core
one operation; the core applies it to the coherence protocol, stalls for
the computed latency, and resumes the generator with the operation's
result (the loaded value, or the old value for read-modify-writes).

The RMW flavours (:class:`Cas`, :class:`Fai`, :class:`Swap`) are always
synchronization accesses.  :class:`WaitLoad` is the spin-wait primitive:
semantically a loop of (sync) loads until a predicate holds, which the
core executes protocol-appropriately — sleeping on the cached copy until
invalidated under MESI, re-registering (with hardware backoff) under the
DeNovo protocols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.mem.regions import Region
from repro.stats.timeparts import TimeComponent


@dataclass(frozen=True, slots=True)
class Compute:
    """Spend ``cycles`` cycles of local work, charged to ``component``."""

    cycles: int
    component: TimeComponent = TimeComponent.COMPUTE


@dataclass(frozen=True, slots=True)
class Load:
    """Read a word; returns its value.

    ``acquire`` marks acquire semantics: under signature-based data
    consistency (see :mod:`repro.protocols.signatures`) the acquiring
    core receives the write signature attached to this synchronization
    variable and self-invalidates exactly those words."""

    addr: int
    sync: bool = False
    acquire: bool = False


@dataclass(frozen=True, slots=True)
class Store:
    """Write a word.  Data stores are non-blocking; sync stores block.

    ``release`` marks release semantics (resets the DeNovoSync increment
    counter)."""

    addr: int
    value: int
    sync: bool = False
    release: bool = False


@dataclass(frozen=True, slots=True)
class Cas:
    """Compare-and-swap; returns the old value (success iff old == expected)."""

    addr: int
    expected: int
    new: int
    release: bool = False
    acquire: bool = False


@dataclass(frozen=True, slots=True)
class Fai:
    """Fetch-and-increment by ``delta``; returns the old value."""

    addr: int
    delta: int = 1
    release: bool = False
    acquire: bool = False


@dataclass(frozen=True, slots=True)
class Swap:
    """Atomic exchange (test-and-set is ``Swap(addr, 1)``); returns old."""

    addr: int
    value: int
    release: bool = False
    acquire: bool = False


@dataclass(frozen=True, slots=True)
class WaitLoad:
    """Spin on (sync) loads of ``addr`` until ``pred(value)``; returns it.

    ``acquire`` applies to the successful (predicate-passing) probe.

    ``pred`` must be a *pure function of the loaded value* (capture loop
    state through default arguments, as the synclib kernels do) — the
    epoch engine's spin fast-forward re-evaluates it only when the polled
    value changes, so a predicate reading ambient mutable state would
    diverge from the reference per-event loop."""

    addr: int
    pred: Callable[[int], bool]
    sync: bool = True
    acquire: bool = False


@dataclass(frozen=True, slots=True)
class SelfInvalidate:
    """Self-invalidate the Valid words of ``regions`` (DeNovo acquires).

    ``flush_all`` selects the paper's no-information fallback (section 3):
    invalidate *every* non-registered word in the cache, which is always
    correct but costs all cached reuse.
    """

    regions: Sequence[Region] = field(default_factory=tuple)
    flush_all: bool = False


@dataclass(frozen=True, slots=True)
class PushBucket:
    """Route all subsequent cycle accounting to ``component`` (stacked)."""

    component: TimeComponent


@dataclass(frozen=True, slots=True)
class PopBucket:
    """Undo the innermost :class:`PushBucket`."""
