"""SynCron-style dedicated synchronization engines at the LLC banks.

Models the SynCron design point (Giannoula et al., arXiv:2101.07557,
re-targeted from near-memory processing to this work's tiled CMP): the
*data* path rides the DeNovo data protocol unchanged (word-granularity
registry, self-invalidation at acquires), but every synchronization
operation — WaitLoad, sync Store, Cas, Fai, Swap — bypasses the L1
entirely and executes at a per-bank **sync unit** (SU), the hardware
unit SynCron places next to each memory controller:

* sync variables are never cached: their single architectural copy
  lives at the home bank, so there is nothing to invalidate, steal, or
  back off from;
* each SU serializes its operations (``tuning.sync_unit_occupancy``
  busy cycles per op) — contended sync ops queue at the bank rather
  than ping-ponging registrations between L1s;
* each SU indexes its variables through a bounded buffer
  (``tuning.sync_unit_entries``); inserting into a full buffer evicts
  the least-recently-used entry to memory — SynCron's overflow
  fallback — charging a memory round trip and controller traffic;
* spinners do not poll: the SU parks them (SynCron holds waiting
  requests at the engine) and wakes every parked core when the word's
  value changes.

One interaction needs care: the inherited DeNovo data path may have
*data-registered* a word that is later used for synchronization (or a
fault plan may perturb one).  The SU then first **recalls** the
registration — the owner is downgraded to Invalid and the word's value
returns to the LLC — so the bank again holds the unique up-to-date
copy before operating on it.  This keeps the registry invariant (the
registry always points at the up-to-date copy) intact.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Callable

from repro.mem.l1 import DeNovoState
from repro.noc.messages import MessageClass
from repro.protocols.base import Access
from repro.protocols.denovo_base import DeNovoBaseProtocol
from repro.protocols.registry import register_protocol


@register_protocol(
    name="SynCron",
    label="SynC",
    paper="SynCron (arXiv:2101.07557)",
    summary=(
        "DeNovo data path plus per-bank synchronization units: sync "
        "ops bypass the L1, serialize at the home bank's SU (bounded "
        "buffer, memory-overflow fallback), and parked spinners are "
        "woken on value change."
    ),
    tracking="registry",
    invalidation="self",
    requires_annotations=True,
    default_comparison=True,
    app_comparison=True,
)
class SynCronProtocol(DeNovoBaseProtocol):
    name = "SynCron"

    def __init__(self, config, allocator=None):
        super().__init__(config, allocator)
        n = config.num_cores
        #: Per-bank cycle until which the sync unit is busy.
        self._su_busy = [0] * n
        #: Per-bank LRU over the sync variables the SU currently indexes.
        self._su_buffer: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(n)
        ]
        self._su_occupancy = config.tuning.sync_unit_occupancy
        self._su_entries = config.tuning.sync_unit_entries
        #: word address -> [(core_id, callback)] spinners parked at the
        #: word's SU, all woken when its value changes.
        self._su_waiters: dict[int, list[tuple[int, Callable[[int], None]]]] = {}

    # -- the sync unit -------------------------------------------------------

    def _su_op(self, core_id: int, addr: int, carry_data: bool) -> int:
        """Execute one sync op at ``addr``'s home-bank sync unit; returns
        its latency.  The architectural value itself is read/written by
        the caller through ``_mem_values``."""
        if self._pow2:
            line = addr >> self._line_shift
            bank = line & self._bank_mask
        else:
            line = self.amap.line_of(addr)
            bank = self.amap.home_bank(line)
        counts = self._counts
        counts["l1_misses"] += 1
        counts["sync_unit_ops"] += 1
        extra = self._recall_registration(core_id, addr, bank)

        # Serialization: the SU services one op per occupancy window, so
        # a contended word queues at the bank instead of bouncing between
        # L1s.
        busy = self._su_busy[bank]
        wait = busy - self.now if busy > self.now else 0
        if wait:
            counts["sync_unit_queue_waits"] += 1

        buf = self._su_buffer[bank]
        if addr in buf:
            buf.move_to_end(addr)
            transfer = self._l2_flat[core_id * self._ntiles + bank]
        else:
            transfer, cold = self.llc_fetch_latency(core_id, line)
            if cold:
                self.record_memory_fill(MessageClass.SYNCH, line)
            if len(buf) >= self._su_entries:
                # Bounded buffer full: spill the LRU entry to memory
                # (SynCron's overflow fallback) before indexing this one.
                buf.popitem(last=False)
                counts["sync_unit_overflows"] += 1
                transfer += self._memlat_flat[bank * self._ntiles + bank]
                controller = self.mesh.nearest_controller(bank)
                self.record_control(MessageClass.WRITEBACK, bank, controller)
            buf[addr] = True

        self._su_busy[bank] = self.now + wait + self._su_occupancy
        self.record_control(MessageClass.SYNCH, core_id, bank)
        if carry_data:
            self.record_data(
                MessageClass.SYNCH, bank, core_id, self._word_bytes
            )
        else:
            self.record_control(MessageClass.SYNCH, bank, core_id)
        return wait + transfer + extra

    def _recall_registration(self, core_id: int, addr: int, bank: int) -> int:
        """If the data path registered ``addr`` at some L1, pull the
        registration (and value) back to the LLC so the bank holds the
        unique up-to-date copy; returns the added latency."""
        owner = self.registry.pop(addr, None)
        if owner is None:
            return 0
        self.record_control(MessageClass.SYNCH, bank, owner)
        self.record_data(
            MessageClass.WRITEBACK, owner, bank, self._word_bytes
        )
        self.l1s[owner].downgrade(addr, DeNovoState.INVALID)
        # A spinner asleep on its (now gone) Registered copy re-probes.
        self._notify_word_waiters(addr, owner, self.now)
        self._counts["sync_unit_recalls"] += 1
        # The recall adds the bank->owner->bank detour beyond the plain
        # core<->bank trip the caller already pays.
        round_trip = self.mesh.remote_l1_latency(core_id, bank, owner)
        direct = self._l2_flat[core_id * self._ntiles + bank]
        return round_trip - direct if round_trip > direct else 0

    def _notify_su_waiters(self, addr: int, wake_time: int) -> None:
        waiters = self._su_waiters.pop(addr, None)
        if not waiters:
            return
        for _waiter_core, callback in waiters:
            callback(wake_time)

    # -- synchronization accesses --------------------------------------------

    def sync_load(self, core_id: int, addr: int) -> Access:
        self._counts["sync_read_misses"] += 1
        latency = self._su_op(core_id, addr, carry_data=True)
        return Access(self._mem_get(addr, 0), latency, hit=False)

    def sync_store(
        self, core_id: int, addr: int, value: int, release: bool = False
    ) -> Access:
        old = self._mem_get(addr, 0)
        latency = self._su_op(core_id, addr, carry_data=False)
        self._mem_values[addr] = value
        if value != old:
            self._notify_su_waiters(addr, self.now + latency)
        return Access(old, latency, hit=False)

    def rmw(
        self,
        core_id: int,
        addr: int,
        fn: Callable[[int], int | None],
        release: bool = False,
        ticketed: bool = False,
        acquire: bool = False,
    ) -> Access:
        latency = self._su_op(core_id, addr, carry_data=True)
        old = self._mem_get(addr, 0)
        new = fn(old)
        if new is not None:
            self._mem_values[addr] = new
            if new != old:
                self._notify_su_waiters(addr, self.now + latency)
        self._counts["rmws"] += 1
        if acquire:
            self.on_acquire(core_id, addr)
        return Access(old, latency, hit=False)

    # -- data stores also wake parked spinners -------------------------------

    def store(
        self,
        core_id: int,
        addr: int,
        value: int,
        sync: bool = False,
        release: bool = False,
        ticketed: bool = False,
    ) -> Access:
        if sync:
            return self.sync_store(core_id, addr, value, release=release)
        old = self._mem_get(addr, 0)
        access = super().store(core_id, addr, value, ticketed=ticketed)
        # A spinner may be parked at the SU on a word the program then
        # publishes with a plain data write (chaos perturbations can
        # reorder things this way); the SU observes the home bank, so the
        # value change wakes it.
        if value != old and addr in self._su_waiters:
            self._notify_su_waiters(addr, self.now + access.latency)
        return access

    # -- spin-wait subscriptions ---------------------------------------------

    def subscribe_line_change(
        self, core_id: int, addr: int, callback: Callable[[int], None]
    ) -> bool:
        # A data-Registered copy still wakes on steal (inherited); any
        # other spinner parks at the word's sync unit and is woken when
        # the value changes — SynCron holds waiting requests at the
        # engine instead of letting cores poll.  That is also its epoch
        # quiescence declaration: with no poll stream there is nothing
        # to lease (spin_poll_lease stays the base None), and parked
        # cores are woken only by the _notify_su_waiters wake hook.
        if super().subscribe_line_change(core_id, addr, callback):
            return True
        self._su_waiters.setdefault(addr, []).append((core_id, callback))
        self._counts["sync_unit_parked"] += 1
        return True

    # -- diagnostics ---------------------------------------------------------

    def debug_addr_state(self, addr: int) -> str:
        base = super().debug_addr_state(addr)
        bank = self.amap.home_bank_of_addr(addr)
        parked = sorted(core for core, _ in self._su_waiters.get(addr, []))
        return (
            f"{base} SU[{bank}] indexed={addr in self._su_buffer[bank]} "
            f"parked={parked}"
        )

    def debug_transients(self) -> list[str]:
        out = super().debug_transients()
        for bank, busy in enumerate(self._su_busy):
            if busy > self.now:
                out.append(f"sync unit {bank}: busy until cycle {busy}")
        for addr, waiters in sorted(self._su_waiters.items()):
            cores = sorted(core for core, _ in waiters)
            out.append(f"word {addr}: cores {cores} parked at the sync unit")
        return out
