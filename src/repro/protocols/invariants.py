"""Runtime coherence invariant checker.

:mod:`repro.verify.checker` audits protocol state at quiescent points
(exhaustive small-scope exploration, final-state tests).  This module is
the *in-flight* version: protocols call :func:`verify` from
:meth:`~repro.protocols.base.CoherenceProtocol.set_time` — i.e. just
before every operation commits, when all state is architecturally settled
— at a rate chosen by ``SystemConfig.invariant_level``:

* ``off``      — never (the default; zero hot-path cost beyond one branch),
* ``sampled``  — every ``invariant_sample_period``-th operation,
* ``full``     — before every operation.

A failed check raises :class:`InvariantViolation` (an ``AssertionError``:
the simulator itself is wrong, not the workload), whose message names
every violated invariant with the line/word address and the cores
involved.

Checked invariants — MESI (line granularity):

* **single owner**: a directory entry's exclusive owner holds the line in
  E or M, and no other core caches it;
* **M excludes sharers**: an owned entry records no sharers besides the
  owner;
* **directory completeness**: every cached copy is known to the directory
  (sharer list ⊇ actual caching cores), and every E/M copy in an L1 is
  the directory's recorded owner.

DeNovo (word granularity):

* **registry accuracy**: the registry owner of a word holds it Registered
  with the up-to-date (backing-store) value — the registry points at the
  unique up-to-date copy;
* **single registered copy**: no core other than the registry owner holds
  the word Registered (and no Registered word is unknown to the
  registry);
* **touched-set consistency**: every Valid word is present in its L1's
  region-indexed valid-word tracking, so a self-invalidation of the
  word's region cannot miss it.

Neat (word granularity, no global tracking):

* **dirty-set accuracy**: a core's dirty set and the Registered ("dirty")
  words in its L1 are the same set — the release flush walks the dirty
  set, so a dirty word missing from it would never self-downgrade;
* **dirty freshness**: a dirty copy's value matches the backing store
  (the simulator commits writes architecturally at issue; a divergence
  means the protocol lost a write);
* **touched-set consistency**: as for DeNovo.
"""

from __future__ import annotations

from repro.mem.l1 import DeNovoState, MesiState


class InvariantViolation(AssertionError):
    """Protocol state violates a coherence invariant (a simulator bug).

    ``violations`` is the full list of messages; the exception text
    carries all of them so a single failure reports every broken
    invariant at once.
    """

    def __init__(self, protocol_name: str, now: int, violations: list[str]):
        self.protocol_name = protocol_name
        self.now = now
        self.violations = list(violations)
        detail = "\n".join(f"  - {v}" for v in self.violations)
        super().__init__(
            f"[{protocol_name}] {len(self.violations)} coherence invariant "
            f"violation(s) at cycle {now}:\n{detail}"
        )


def verify(protocol) -> None:
    """Raise :class:`InvariantViolation` if ``protocol`` is inconsistent."""
    violations = protocol.invariant_violations()
    if violations:
        raise InvariantViolation(protocol.name, protocol.now, violations)


# -- MESI ---------------------------------------------------------------------


def mesi_violations(protocol) -> list[str]:
    """All violated MESI invariants of ``protocol`` (a MesiProtocol)."""
    failures: list[str] = []
    for line, entry in protocol._directory.items():
        holders = {
            core_id
            for core_id, l1 in enumerate(protocol.l1s)
            if l1.state_of(line, touch=False) is not None
        }
        owner = entry.exclusive_owner
        if owner is not None:
            owner_state = protocol.l1s[owner].state_of(line, touch=False)
            if owner_state not in (MesiState.EXCLUSIVE, MesiState.MODIFIED):
                failures.append(
                    f"line {line}: directory owner core {owner} holds "
                    f"{owner_state} (expected E or M)"
                )
            extra = holders - {owner}
            if extra:
                failures.append(
                    f"line {line}: exclusive owner core {owner} coexists "
                    f"with copies at cores {sorted(extra)}"
                )
            if entry.sharers - {owner}:
                failures.append(
                    f"line {line}: owner core {owner} recorded alongside "
                    f"sharers {sorted(entry.sharers)}"
                )
        else:
            unknown = holders - entry.sharers
            if unknown:
                failures.append(
                    f"line {line}: cores {sorted(unknown)} cache copies the "
                    f"directory does not know about (sharers "
                    f"{sorted(entry.sharers)})"
                )
    # The cache-side view of single-owner: an E/M copy anywhere must be
    # the directory's recorded owner for that line.
    for core_id, l1 in enumerate(protocol.l1s):
        for line, state in l1.lines_and_states():
            if state in (MesiState.EXCLUSIVE, MesiState.MODIFIED):
                entry = protocol._directory.get(line)
                owner = entry.exclusive_owner if entry is not None else None
                if owner != core_id:
                    failures.append(
                        f"line {line}: core {core_id} holds {state} but the "
                        f"directory records owner {owner}"
                    )
    return failures


# -- DeNovo -------------------------------------------------------------------


def denovo_violations(protocol) -> list[str]:
    """All violated DeNovo invariants of ``protocol`` (a DeNovoBaseProtocol)."""
    failures: list[str] = []
    memory = protocol.memory
    for addr, owner in protocol.registry.items():
        l1 = protocol.l1s[owner]
        state = l1.state_of(addr, touch=False)
        if state is not DeNovoState.REGISTERED:
            failures.append(
                f"word {addr}: registry points at core {owner} but its L1 "
                f"holds {state}"
            )
        else:
            cached = l1.value_of(addr)
            latest = memory.read(addr)
            if cached != latest:
                failures.append(
                    f"word {addr}: registered copy at core {owner} is stale "
                    f"({cached} vs backing store {latest})"
                )
    for core_id, l1 in enumerate(protocol.l1s):
        tracked = l1.tracked_valid_words()
        for addr, state in l1.words_and_states():
            if state is DeNovoState.REGISTERED:
                recorded = protocol.registry.get(addr)
                if recorded != core_id:
                    failures.append(
                        f"word {addr}: core {core_id} holds a Registered "
                        f"copy but the registry points at {recorded}"
                    )
            elif state is DeNovoState.VALID and addr not in tracked:
                failures.append(
                    f"word {addr}: Valid at core {core_id} but missing from "
                    f"its self-invalidation region tracking"
                )
    return failures


# -- Neat ---------------------------------------------------------------------


def neat_violations(protocol) -> list[str]:
    """All violated Neat invariants of ``protocol`` (a NeatProtocol)."""
    failures: list[str] = []
    memory = protocol.memory
    for core_id, l1 in enumerate(protocol.l1s):
        dirty = protocol._dirty[core_id]
        tracked = l1.tracked_valid_words()
        for addr, state in l1.words_and_states():
            if state is DeNovoState.REGISTERED:
                if addr not in dirty:
                    failures.append(
                        f"word {addr}: dirty at core {core_id} but missing "
                        f"from its dirty set (would never self-downgrade)"
                    )
                elif l1.value_of(addr) != memory.read(addr):
                    failures.append(
                        f"word {addr}: dirty copy at core {core_id} is stale "
                        f"({l1.value_of(addr)} vs backing store "
                        f"{memory.read(addr)})"
                    )
            elif state is DeNovoState.VALID and addr not in tracked:
                failures.append(
                    f"word {addr}: Valid at core {core_id} but missing from "
                    f"its self-invalidation region tracking"
                )
        for addr in sorted(dirty):
            if l1.state_of(addr, touch=False) is not DeNovoState.REGISTERED:
                failures.append(
                    f"word {addr}: in core {core_id}'s dirty set but not "
                    f"held dirty in its L1"
                )
    return failures
