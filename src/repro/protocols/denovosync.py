"""DeNovoSync: DeNovoSync0 plus adaptive hardware backoff (paper §4.2).

Identical protocol states and transitions to DeNovoSync0; the only change
is on the requester side: a synchronization *read* to a word in Valid
state consults the core's backoff counter and stalls that many cycles
before issuing its registration miss.  Valid state is reached exactly when
a remote sync read stole this core's registration, so the stall kicks in
precisely under read-sharing contention — the ping-pong scenario where
DeNovoSync0 wastes misses.  Synchronization writes are never delayed.

The counter update rules live in :mod:`repro.protocols.backoff`.
"""

from __future__ import annotations

from repro.mem.l1 import DeNovoState
from repro.protocols.backoff import BackoffState
from repro.protocols.denovosync0 import DeNovoSync0Protocol
from repro.protocols.registry import register_protocol


@register_protocol(
    name="DeNovoSync",
    label="DS",
    paper="DeNovoSync (ASPLOS'15 §5)",
    summary=(
        "DeNovoSync0 plus adaptive per-(core, word) hardware backoff "
        "on failed sync reads; the paper's headline design."
    ),
    tracking="registry",
    invalidation="self",
    backoff="adaptive",
    requires_annotations=True,
    default_comparison=True,
    app_comparison=True,
)
class DeNovoSyncProtocol(DeNovoSync0Protocol):
    name = "DeNovoSync"

    def __init__(self, config, allocator=None):
        super().__init__(config, allocator)
        self.backoff_states = [
            BackoffState(config.backoff) for _ in range(config.num_cores)
        ]

    def sync_read_backoff(
        self, core_id: int, addr: int, spinning: bool = False
    ) -> int:
        """Stall to insert before a sync read (cores query this first).

        Only reads to Valid state back off: Valid marks a word whose
        registration was stolen by a remote sync read, i.e. observed
        contention.  Initial reads (Invalid) and hits (Registered) issue
        immediately.

        Quiescence declaration (epoch mode): this per-poll backoff state
        advance is itself a mutation, so on top of DeNovoSync0's
        registration steals it makes DeNovoSync polls doubly
        un-leasable; cores also disable leasing outright for any
        backoff-capable protocol.
        """
        if self.l1s[core_id].state_of(addr, touch=False) is not DeNovoState.VALID:
            return 0
        stall = self.backoff_states[core_id].stall_cycles(spinning=spinning)
        if stall > 0:
            self.counters.bump("hw_backoff_events")
        return stall

    # -- hook overrides wiring the counters in ------------------------------

    def on_registration_stolen(self, victim: int, addr: int, by_sync_read: bool) -> None:
        if by_sync_read:
            self.backoff_states[victim].on_incoming_sync_read_steal()

    def on_sync_hit(self, core_id: int, addr: int) -> None:
        self.backoff_states[core_id].on_registered_hit()

    def on_release(self, core_id: int, addr: int) -> None:
        self.backoff_states[core_id].on_release()
