"""Per-core hardware backoff state for DeNovoSync (paper §4.2).

Two coupled counters per core:

* the **backoff counter** holds the number of cycles a synchronization
  read to a word in Valid state must stall before issuing its miss.  It
  is bumped whenever a remote sync read steals this core's registration
  (incoming steals signal contention), wraps to zero on overflow of its
  configured bit width, and resets on a sync read/RMW hit to Registered
  state (a hit means nobody intervened — low contention).
* the **increment counter** sets the bump size.  It grows by the default
  increment on every Nth incoming steal (N = the configured update period,
  which the paper ties to the core count) and resets to the default on a
  release, preparing the core for the next synchronization episode.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import BackoffConfig


@dataclass
class BackoffState:
    """Hardware backoff registers of one core."""

    config: BackoffConfig
    backoff: int = 0
    increment: int = field(init=False)
    incoming_steals: int = 0
    stalled_this_episode: bool = False

    def __post_init__(self) -> None:
        self.increment = self.config.default_increment

    def on_incoming_sync_read_steal(self) -> None:
        """A remote sync read just took this core's registration."""
        self.incoming_steals += 1
        if self.incoming_steals % self.config.update_period == 0:
            self.increment += self.config.default_increment
        # Wrap-on-overflow semantics of the fixed-width hardware counter.
        self.backoff = (self.backoff + self.increment) & self.config.counter_max

    def on_registered_hit(self) -> None:
        """Sync read/RMW hit in Registered state: contention is low."""
        self.backoff = 0

    def on_release(self) -> None:
        """A release completed; re-arm for the next synchronization episode."""
        self.increment = self.config.default_increment
        self.stalled_this_episode = False

    def stall_cycles(self, spinning: bool = False) -> int:
        """Backoff delay to apply to a sync read to Valid state.

        Taking the delay consumes the counter: it re-arms from subsequent
        incoming steals, so the next stall reflects contention observed
        *since* this one.  Without consumption the counter only ever
        shrinks on Registered-state hits — rare in contended CAS loops —
        and grows monotonically to the hardware maximum.

        For non-spinning reads (the equality checks inside a CAS-loop
        attempt) at most one stall is taken per synchronization episode
        (episodes end at a release, the same boundary the paper uses to
        reset the increment counter): re-armed stalls firing mid-attempt
        stretch the read-to-CAS window and *cause* the failures backoff is
        meant to avoid.  Spin-wait re-probes are always eligible — delaying
        them is exactly the Figure 2c scenario that thins the registration
        ping-pong.
        """
        if not spinning and self.stalled_this_episode:
            return 0
        stall = self.backoff
        self.backoff = 0
        if stall > 0 and not spinning:
            self.stalled_this_episode = True
        return stall
