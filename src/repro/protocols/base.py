"""Protocol interface shared by MESI and the DeNovo family.

A protocol is the single authority over caches, directory/registry state,
the backing store, latency computation and traffic accounting.  Each memory
operation is applied *atomically at issue time*: all state transitions and
the value read/written commit at the current simulation cycle, and the
returned latency tells the issuing core how long to stall.  Because every
operation goes through the deterministic global event queue, simulated
CAS/FAI operations are linearizable and the synchronization algorithms
built on top behave exactly as they would on coherent hardware.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from collections.abc import Callable

from repro.config import SystemConfig
from repro.mem.address import AddressMap
from repro.mem.memory import BackingStore
from repro.mem.regions import Region, RegionAllocator
from repro.noc.mesh import Mesh
from repro.noc.messages import MessageClass, control_flits, data_flits
from repro.noc.traffic import TrafficLedger
from repro.stats.collector import ProtocolCounters

#: Backwards-compatible aliases for the default tuning constants; the
#: live values come from ``SystemConfig.tuning`` (see repro.config).
BANK_OCCUPANCY = 4
OWNERSHIP_OCCUPANCY = 16

#: Flit sizing is static, so the per-message helpers are hoisted out of
#: the traffic-recording hot path: one module constant for control
#: messages and a payload-size memo for data messages (real payloads are
#: almost always one word or one line).
_CONTROL_FLITS = control_flits()
_DATA_FLITS: dict[int, int] = {}


def _data_flits(payload_bytes: int) -> int:
    flits = _DATA_FLITS.get(payload_bytes)
    if flits is None:
        flits = _DATA_FLITS[payload_bytes] = data_flits(payload_bytes)
    return flits


@dataclass(frozen=True, slots=True)
class SpinLease:
    """Closed form of one *failed* sync spin poll, for spin fast-forward.

    Granted by :meth:`CoherenceProtocol.spin_poll_lease` when repeated
    failed polls of one spinner are *stateless repeats*: each poll
    leaves every piece of protocol state exactly as it found it and
    contributes only the constant deltas below.  While the polled
    word's architectural value is unchanged the core then replaces each
    full probe with a cheap *lease tick* at the same cycle (and, since
    the tick schedules its successor exactly where the real probe
    would, the same event sequence number): the tick re-reads the
    value, applies the deltas, and re-arms — or, on a change, settles
    by running the full probe in the very same event.  Results are
    byte-identical to probing; only the Python work per poll shrinks.
    """

    #: Per-poll stall latency (constant while the lease holds); the
    #: core derives the re-poll period from it.
    latency: int
    #: Protocol counter keys bumped by one per poll.
    counts: tuple[str, ...]
    #: Traffic ledger row (message-class index) the poll charges.
    traffic_idx: int
    #: Flit·hops added to that row per poll.
    flits: int
    #: Messages added to that row per poll.
    messages: int


@dataclass(slots=True)
class Access:
    """Outcome of one memory operation.

    ``latency`` is the stall the issuing core must take (1 for a hit or a
    non-blocking store).  ``value`` is the loaded/old value.  ``hit`` is
    True when the access was served entirely from the private L1.

    ``retry`` means the home directory was busy with another transaction
    on this line (MESI's blocking directory): no state changed, no value
    is valid, and the core must stall ``latency`` cycles and re-issue.
    Re-issuing (rather than folding the queue delay into one atomic
    transaction) makes values resolve at directory *service* time, which
    is what arbitrates racing requests realistically.
    """

    value: int
    latency: int
    hit: bool
    retry: bool = False


class CoherenceProtocol(ABC):
    """Common machinery: topology, store, traffic, counters."""

    name = "abstract"

    def __init__(self, config: SystemConfig, allocator: RegionAllocator | None = None):
        self.config = config
        self.amap = AddressMap(config)
        self.mesh = Mesh(config)
        self.memory = BackingStore()
        self.traffic = TrafficLedger()
        self.counters = ProtocolCounters()
        self.allocator = allocator
        # Hot-path aliases, bound once: the per-operation code bumps
        # counters and looks up hop distances millions of times per run,
        # so it goes straight at the flat structures instead of through
        # a method-call layer per event.
        self._counts = self.counters._counts
        self._hops_flat = self.mesh._hops
        self._ntiles = config.num_cores
        self._tflits = self.traffic._flits
        self._tmsgs = self.traffic._messages
        self._mem_values = self.memory._values
        self._mem_get = self._mem_values.get
        self._resident = self.memory._resident_lines
        self._l2_flat = self.mesh._l2_latency
        self._memlat_flat = self.mesh._memory_latency
        self._line_shift = self.amap.line_shift
        self._bank_mask = self.amap.bank_mask
        self._pow2 = self._line_shift is not None and self._bank_mask is not None
        self.now = 0  # kept current by the cores before each operation
        # Runtime invariant checking (repro.protocols.invariants): a period
        # of 0 disables it, 1 checks before every operation, N samples
        # every N-th.  Kept as a pre-computed int so the off path costs a
        # single falsy branch in set_time.
        level = config.invariant_level
        if level == "full":
            self._invariant_period = 1
        elif level == "sampled":
            self._invariant_period = config.invariant_sample_period
        else:
            self._invariant_period = 0
        self._invariant_tick = 0

    # -- time ---------------------------------------------------------------

    def set_time(self, now: int) -> None:
        """Cores call this with the simulator clock before each operation.

        Doubles as the runtime invariant hook: at this point all protocol
        state is architecturally settled (operations commit atomically at
        service time), so it is the one safe place to audit coherence
        invariants mid-run.
        """
        self.now = now
        if self._invariant_period:
            self._invariant_tick += 1
            if self._invariant_tick >= self._invariant_period:
                self._invariant_tick = 0
                self.check_invariants()

    # -- runtime invariants & diagnostics -----------------------------------

    def invariant_violations(self) -> list[str]:
        """Messages for every currently-violated coherence invariant."""
        return []

    def check_invariants(self) -> None:
        """Raise :class:`~repro.protocols.invariants.InvariantViolation`
        if any coherence invariant is currently violated."""
        violations = self.invariant_violations()
        if violations:
            from repro.protocols.invariants import InvariantViolation

            raise InvariantViolation(self.name, self.now, violations)

    def force_evict(self, core_id: int, line: int) -> bool:
        """Evict ``line`` from ``core_id``'s L1 with full protocol
        bookkeeping (writeback, directory/registry update, waiter
        wake-ups), as replacement pressure would.  Returns False when the
        line is not resident.  Used by the fault-injection harness
        (:mod:`repro.noc.faults`) to model eviction storms."""
        return False

    def debug_resident_lines(self, core_id: int) -> list[int]:
        """Line indices currently resident in ``core_id``'s L1."""
        return []

    def debug_addr_state(self, addr: int) -> str:
        """One-line description of every piece of protocol state covering
        ``addr`` (directory/registry entry, per-core cache states,
        waiters) for hang diagnostics."""
        return f"addr {addr}: (no protocol detail available)"

    def debug_transients(self) -> list[str]:
        """Human-readable lines describing in-flight transient state
        (busy directory windows, registration chains, subscriptions)."""
        return []

    # -- operations -----------------------------------------------------------

    @abstractmethod
    def load(
        self,
        core_id: int,
        addr: int,
        sync: bool = False,
        ticketed: bool = False,
        acquire: bool = False,
    ) -> Access:
        """A load; ``sync`` marks synchronization (volatile/atomic) reads.

        ``ticketed`` marks the re-issue of a request that was told to retry
        (it holds a directory reservation and must be serviced now);
        ``acquire`` marks acquire semantics (consumed by signature-based
        data consistency, a no-op otherwise)."""

    @abstractmethod
    def store(
        self,
        core_id: int,
        addr: int,
        value: int,
        sync: bool = False,
        release: bool = False,
        ticketed: bool = False,
    ) -> Access:
        """A store.  Data stores are non-blocking (latency 1); sync stores
        block until ownership/registration is obtained."""

    @abstractmethod
    def rmw(
        self,
        core_id: int,
        addr: int,
        fn: Callable[[int], int | None],
        release: bool = False,
        ticketed: bool = False,
        acquire: bool = False,
    ) -> Access:
        """An atomic read-modify-write.  ``fn(old)`` returns the new value,
        or None to leave memory unchanged (a failed CAS).  Returns the old
        value.  Always a synchronization access."""

    @abstractmethod
    def self_invalidate(
        self, core_id: int, regions: list[Region], flush_all: bool = False
    ) -> int:
        """Software self-invalidation of ``regions`` at an acquire; returns
        the local latency (a no-op for MESI).  ``flush_all`` invalidates
        every non-registered word (the no-region-information fallback)."""

    def on_acquire(self, core_id: int, addr: int) -> None:
        """Acquire-semantics hook (cores call it for acquire-marked ops,
        including the successful probe of a spin wait).  Only the
        signature-based DeNovo variant does anything with it."""

    # -- spin-wait support -----------------------------------------------------

    def sync_read_backoff(
        self, core_id: int, addr: int, spinning: bool = False
    ) -> int:
        """Cycles of hardware backoff to insert before a sync read.

        ``spinning`` marks spin-wait re-probes (see
        :meth:`repro.protocols.backoff.BackoffState.stall_cycles`).
        Zero for every protocol except DeNovoSync.
        """
        return 0

    def subscribe_line_change(
        self, core_id: int, addr: int, callback: Callable[[int], None]
    ) -> bool:
        """Ask to be notified when the cached copy of ``addr`` is invalidated.

        The callback receives the wake-up cycle.  MESI supports this for any
        cached copy (a spinner sits on its Shared copy and is woken by the
        writer's invalidation).  DeNovo supports it only for a word the core
        has *Registered* (the spinner hits locally until a remote request
        steals the registration, which is the wake-up event); in every other
        state the caller must poll, because each re-read is a real miss.
        Returns False when no subscription is possible — re-probe instead.
        """
        return False

    def spin_poll_lease(self, core_id: int, addr: int) -> SpinLease | None:
        """Declare ``core_id``'s failed spin polls of ``addr`` quiescent.

        Called right after a failed, unsubscribed sync spin probe.
        Return a :class:`SpinLease` only when *every* further failed
        poll of ``addr`` by this core is a stateless repeat of the one
        that just ran — the quiescent-until-signaled contract:

        * the poll mutates **no** protocol state (no cache fill or
          eviction, no directory/registry transition, no backoff
          counter) — its only effects are the lease's constant counter,
          traffic, and latency deltas;
        * its latency is constant (e.g. the word's home-bank round trip
          with the line already LLC-resident);
        * the polled value is ``memory._values[addr]``, and that entry
          changes only through the protocol's *wake hooks* — the
          declared mutation points (``load``/``store``/``rmw``/
          ``sync_load``/``sync_store`` or a ``wake_hooks`` override;
          the ``undeclared-wake-mutation`` sanitize rule enforces
          this) — so re-reading it each tick observes exactly what the
          full probe would.

        Return None (the default) when any of this fails to hold; the
        core then keeps issuing full probes.  Only polling protocols
        (Neat) grant leases: subscription-based spinners (MESI, the
        DeNovo registry, SynCron's sync units) park instead and their
        probes are stateful.
        """
        return None

    # -- traffic helpers --------------------------------------------------------

    def record_control(self, klass: MessageClass, src: int, dst: int) -> None:
        # Ledger accounting is inlined (traffic.record is one call per
        # protocol message); foreign keys fall back to the ledger, which
        # keeps its side table and breakdown() totality.
        try:
            idx = klass.idx
        except AttributeError:
            self.traffic.record(
                klass, _CONTROL_FLITS, self._hops_flat[src * self._ntiles + dst]
            )
            return
        self._tflits[idx] += (
            _CONTROL_FLITS * self._hops_flat[src * self._ntiles + dst]
        )
        self._tmsgs[idx] += 1

    def record_data(
        self, klass: MessageClass, src: int, dst: int, payload_bytes: int
    ) -> None:
        flits = _DATA_FLITS.get(payload_bytes)
        if flits is None:
            flits = _DATA_FLITS[payload_bytes] = data_flits(payload_bytes)
        try:
            idx = klass.idx
        except AttributeError:
            self.traffic.record(
                klass, flits, self._hops_flat[src * self._ntiles + dst]
            )
            return
        self._tflits[idx] += flits * self._hops_flat[src * self._ntiles + dst]
        self._tmsgs[idx] += 1

    # -- shared latency helpers ---------------------------------------------------

    def llc_fetch_latency(self, core_id: int, line: int) -> tuple[int, bool]:
        """Latency to fetch ``line`` at its home bank, touching it in.

        Returns (latency, cold): cold misses pay the memory latency and the
        extra controller traffic is charged by the caller.
        """
        bank = line & self._bank_mask if self._pow2 else self.amap.home_bank(line)
        resident = self._resident
        if line in resident:
            return self._l2_flat[core_id * self._ntiles + bank], False
        resident.add(line)
        self._counts["cold_misses"] += 1
        return self._memlat_flat[core_id * self._ntiles + bank], True

    def record_memory_fill(self, klass: MessageClass, line: int) -> None:
        """Traffic of a cold-miss line fill between controller and bank."""
        bank = self.amap.home_bank(line)
        controller = self.mesh.nearest_controller(bank)
        hops = self.mesh.hops(bank, controller)
        self.traffic.record(klass, _CONTROL_FLITS, hops)
        self.traffic.record(klass, _data_flits(self.config.line_bytes), hops)

    def region_id_of(self, addr: int) -> int | None:
        if self.allocator is None:
            return None
        region = self.allocator.region_of(addr)
        return region.region_id if region is not None else None
