"""MESI with read-for-ownership synchronization reads (extension).

The paper's related-work discussion (section 8) recalls that QOLB-era
work dismissed issuing synchronization reads as read-for-ownership (RFO)
on an invalidation protocol, expecting spurious read misses — and then
argues that DeNovoSync's read registration *is* a judicious RFO.  This
variant closes the loop: plain MESI, except synchronization reads fetch
the line exclusively (Modified), so the acquire's subsequent
test-and-set or flag-reset write hits locally — the write MESI otherwise
pays for after an array-lock acquire (section 6.1.2).

The cost is the mirror of DeNovoSync0's: concurrent synchronization
readers of one word now invalidate each other (R-R ping-pong through the
directory), and spin waits lose their free cached spinning — each
spinner's probe takes the line exclusively and evicts the previous
spinner, exactly the spurious-read-miss concern that made QOLB-era work
dismiss RFO.  Comparing this protocol against DeNovoSync isolates what
the registry (no blocking directory, no sharer lists, word granularity)
adds on top of the bare RFO idea.
"""

from __future__ import annotations

from repro.protocols.base import Access
from repro.protocols.mesi import MesiProtocol
from repro.protocols.registry import register_protocol


@register_protocol(
    name="MESI-RFO",
    label="M-RFO",
    paper="MESI + read-for-ownership sync reads (§8)",
    summary=(
        "MESI issuing sync reads as read-for-ownership, the related-"
        "work counterpoint to registering sync reads."
    ),
    tracking="directory",
    invalidation="writer",
)
class MesiRfoProtocol(MesiProtocol):
    name = "MESI-RFO"

    def load(
        self,
        core_id: int,
        addr: int,
        sync: bool = False,
        ticketed: bool = False,
        acquire: bool = False,
    ) -> Access:
        if not sync:
            return super().load(
                core_id, addr, sync=sync, ticketed=ticketed, acquire=acquire
            )
        # Synchronization read: bring the line in Modified so the write
        # that usually follows an acquire hits locally.
        outcome = self._obtain_modified(core_id, addr, ticketed)
        if outcome.retry:
            return outcome
        self.counters.bump("rfo_sync_reads")
        return Access(self.memory.read(addr), outcome.latency, hit=outcome.hit)
