"""DeNovoSync0: registration of all synchronization reads (paper §4.1).

The protocol treats a synchronization read like a read-modify-write: it
must register at the LLC, and only one reader can be registered at a time
(the single-reader constraint).  Together with DeNovo's single-writer
registration this gives write propagation, write atomicity and write
serialization — sequential consistency for racy synchronization accesses —
without writer-initiated invalidations, sharer lists, or new protocol
states.

Consequences modelled here, straight from the paper:

* a sync read hits only in Registered state; Valid is "not a usable valid
  copy" and misses again (write propagation via reader re-fetch);
* a sync read miss steals the registration from the previous registrant,
  which downgrades Registered -> Valid (a false R-R/W-R race when the value
  had not changed — the source of DeNovoSync0's pre-linearization cost);
* a sync write/RMW miss steals the registration and the previous
  registrant invalidates its copy;
* registrations transfer point-to-point via the non-blocking registry.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.mem.l1 import DeNovoState
from repro.noc.messages import MessageClass
from repro.protocols.base import Access
from repro.protocols.denovo_base import DeNovoBaseProtocol
from repro.protocols.registry import register_protocol


@register_protocol(
    name="DeNovoSync0",
    label="DS0",
    paper="DeNovoSync w/o backoff (ASPLOS'15 §4)",
    summary=(
        "Word-granularity LLC registry, reader self-invalidation at "
        "acquires, sync reads register with no retry backoff."
    ),
    tracking="registry",
    invalidation="self",
    requires_annotations=True,
    default_comparison=True,
    formal_model="denovosync0",
)
class DeNovoSync0Protocol(DeNovoBaseProtocol):
    name = "DeNovoSync0"

    # -- sync loads -----------------------------------------------------------

    def sync_load(self, core_id: int, addr: int) -> Access:
        # Quiescence declaration (epoch mode): DeNovoSync polls are
        # never leasable — a failed poll either hits a Registered copy
        # (touches L1 LRU) or re-registers the word at the directory,
        # stealing from the previous registrant (PAPER.md section 4).
        # Both mutate cross-core-visible state, so spin_poll_lease stays
        # the base None and every poll is simulated in full.
        l1 = self.l1s[core_id]
        counts = self._counts
        value = l1.registered_value(addr)
        if value is not None:
            counts["l1_hits"] += 1
            counts["sync_read_hits"] += 1
            hook = self._sync_hit_hook
            if hook is not None:
                hook(core_id, addr)
            return Access(value, self._l1_hit, hit=True)

        counts["l1_misses"] += 1
        counts["sync_read_misses"] += 1
        owner = self.registry.get(addr)
        if owner is not None and owner != core_id:
            counts["read_registration_steals"] += 1
        latency, _ = self._register(
            core_id,
            addr,
            MessageClass.SYNCH,
            invalidate_prev=False,  # sync reads downgrade the victim to Valid
            carry_data_back=True,
        )
        value = self._mem_get(addr, 0)
        l1.fill_word(addr, value, DeNovoState.REGISTERED)
        return Access(value, latency, hit=False)

    # -- sync stores -------------------------------------------------------------

    def sync_store(
        self, core_id: int, addr: int, value: int, release: bool = False
    ) -> Access:
        l1 = self.l1s[core_id]
        old = self._mem_get(addr, 0)
        if l1.try_write_registered(addr, value):
            self._counts["l1_hits"] += 1
            self._mem_values[addr] = value
            if release:
                hook = self._release_hook
                if hook is not None:
                    hook(core_id, addr)
            return Access(old, self._l1_hit, hit=True)

        self._counts["l1_misses"] += 1
        latency, _ = self._register(
            core_id, addr, MessageClass.SYNCH, invalidate_prev=True
        )
        l1.fill_word(addr, value, DeNovoState.REGISTERED)
        self._mem_values[addr] = value
        if release:
            hook = self._release_hook
            if hook is not None:
                hook(core_id, addr)
        return Access(old, latency, hit=False)

    # -- RMWs ---------------------------------------------------------------------

    def rmw(
        self,
        core_id: int,
        addr: int,
        fn: Callable[[int], int | None],
        release: bool = False,
        ticketed: bool = False,
        acquire: bool = False,
    ) -> Access:
        l1 = self.l1s[core_id]
        if l1.state_of(addr) is DeNovoState.REGISTERED:
            self._counts["l1_hits"] += 1
            latency = self._l1_hit
            hit = True
            hook = self._sync_hit_hook
            if hook is not None:
                hook(core_id, addr)
        else:
            self._counts["l1_misses"] += 1
            latency, _ = self._register(
                core_id,
                addr,
                MessageClass.SYNCH,
                invalidate_prev=True,
                carry_data_back=True,
            )
            hit = False
        old = self._mem_get(addr, 0)
        new = fn(old)
        written = old if new is None else new
        l1.fill_word(addr, written, DeNovoState.REGISTERED)
        if new is not None:
            self._mem_values[addr] = new
        if release:
            hook = self._release_hook
            if hook is not None:
                hook(core_id, addr)
        if acquire:
            self.on_acquire(core_id, addr)
        self._counts["rmws"] += 1
        return Access(old, latency, hit=hit)
