"""DeNovoSync0: registration of all synchronization reads (paper §4.1).

The protocol treats a synchronization read like a read-modify-write: it
must register at the LLC, and only one reader can be registered at a time
(the single-reader constraint).  Together with DeNovo's single-writer
registration this gives write propagation, write atomicity and write
serialization — sequential consistency for racy synchronization accesses —
without writer-initiated invalidations, sharer lists, or new protocol
states.

Consequences modelled here, straight from the paper:

* a sync read hits only in Registered state; Valid is "not a usable valid
  copy" and misses again (write propagation via reader re-fetch);
* a sync read miss steals the registration from the previous registrant,
  which downgrades Registered -> Valid (a false R-R/W-R race when the value
  had not changed — the source of DeNovoSync0's pre-linearization cost);
* a sync write/RMW miss steals the registration and the previous
  registrant invalidates its copy;
* registrations transfer point-to-point via the non-blocking registry.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.mem.l1 import DeNovoState
from repro.noc.messages import MessageClass
from repro.protocols.base import Access
from repro.protocols.denovo_base import DeNovoBaseProtocol


class DeNovoSync0Protocol(DeNovoBaseProtocol):
    name = "DeNovoSync0"

    # -- sync loads -----------------------------------------------------------

    def sync_load(self, core_id: int, addr: int) -> Access:
        l1 = self.l1s[core_id]
        if l1.state_of(addr) is DeNovoState.REGISTERED:
            self.counters.bump("l1_hits")
            self.counters.bump("sync_read_hits")
            self.on_sync_hit(core_id, addr)
            value = l1.value_of(addr)
            assert value is not None
            return Access(value, self.config.l1_hit_latency, hit=True)

        self.counters.bump("l1_misses")
        self.counters.bump("sync_read_misses")
        had_owner = self.registry.get(addr) not in (None, core_id)
        if had_owner:
            self.counters.bump("read_registration_steals")
        latency, _ = self._register(
            core_id,
            addr,
            MessageClass.SYNCH,
            invalidate_prev=False,  # sync reads downgrade the victim to Valid
            carry_data_back=True,
        )
        value = self.memory.read(addr)
        l1.fill_word(addr, value, DeNovoState.REGISTERED)
        return Access(value, latency, hit=False)

    # -- sync stores -------------------------------------------------------------

    def sync_store(
        self, core_id: int, addr: int, value: int, release: bool = False
    ) -> Access:
        l1 = self.l1s[core_id]
        old = self.memory.read(addr)
        if l1.state_of(addr) is DeNovoState.REGISTERED:
            self.counters.bump("l1_hits")
            l1.write_word(addr, value)
            self.memory.write(addr, value)
            if release:
                self.on_release(core_id, addr)
            return Access(old, self.config.l1_hit_latency, hit=True)

        self.counters.bump("l1_misses")
        latency, _ = self._register(
            core_id, addr, MessageClass.SYNCH, invalidate_prev=True
        )
        l1.fill_word(addr, value, DeNovoState.REGISTERED)
        self.memory.write(addr, value)
        if release:
            self.on_release(core_id, addr)
        return Access(old, latency, hit=False)

    # -- RMWs ---------------------------------------------------------------------

    def rmw(
        self,
        core_id: int,
        addr: int,
        fn: Callable[[int], Optional[int]],
        release: bool = False,
        ticketed: bool = False,
        acquire: bool = False,
    ) -> Access:
        l1 = self.l1s[core_id]
        if l1.state_of(addr) is DeNovoState.REGISTERED:
            self.counters.bump("l1_hits")
            latency = self.config.l1_hit_latency
            hit = True
            self.on_sync_hit(core_id, addr)
        else:
            self.counters.bump("l1_misses")
            latency, _ = self._register(
                core_id,
                addr,
                MessageClass.SYNCH,
                invalidate_prev=True,
                carry_data_back=True,
            )
            hit = False
        old = self.memory.read(addr)
        new = fn(old)
        written = old if new is None else new
        l1.fill_word(addr, written, DeNovoState.REGISTERED)
        if new is not None:
            self.memory.write(addr, new)
        if release:
            self.on_release(core_id, addr)
        if acquire:
            self.on_acquire(core_id, addr)
        self.counters.bump("rmws")
        return Access(old, latency, hit=hit)
