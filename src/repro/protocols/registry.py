"""Protocol plugin registry.

Every coherence backend registers itself at import time with a
:class:`ProtocolInfo` capability descriptor via the
:func:`register_protocol` class decorator.  Everything downstream — the
CLI's ``--protocols`` choices and help text, the figure-sweep defaults
in :mod:`repro.harness.experiments`, the chaos differential's protocol
set, the model checker and sanitizer defaults, figure labels in the
report/plot layers — derives its protocol lists from here, filtered by
capability, so landing a new backend is a one-file change: write the
protocol module, decorate the class, import it from
``repro/protocols/__init__.py``.

The capability schema (one :class:`ProtocolInfo` per backend):

``name``
    Canonical paper name, the key used everywhere (``"MESI"``,
    ``"DeNovoSync"``, ``"Neat"``, ...).
``label``
    Short figure/column label (``"M"``, ``"DS"``, ...).
``paper``
    Which paper/design the backend models, for docs and the
    ``protocols`` CLI target.
``summary``
    One-line description of the design point.
``tracking``
    How the backend tracks copies: ``"directory"`` (line-granularity
    sharer lists), ``"registry"`` (DeNovo's word-granularity registered
    owner at the LLC), or ``"dirty-set"`` (no global tracking at all —
    Neat's per-L1 dirty/touched sets).
``invalidation``
    ``"writer"`` for writer-initiated invalidations, ``"self"`` for
    reader self-invalidation at acquires.
``backoff``
    Sync-read retry policy: ``"none"`` or ``"adaptive"`` (DeNovoSync's
    per-(core, word) hardware backoff).
``requires_annotations``
    Whether the backend needs acquire/release/self-invalidate
    annotations to be correct (every self-invalidation design does).
``fault_hooks``
    Supports the fault-injection harness (``force_evict`` /
    ``debug_resident_lines``) — the chaos sweep only selects these.
``runtime_invariants``
    Implements ``invariant_violations`` so ``--invariant-level`` can
    audit it in-flight.
``default_comparison``
    Member of the headline comparison set (figure sweeps, mc, chaos).
``app_comparison``
    Member of the smaller app-figure set (fig6-style sweeps).
``formal_model``
    Key of the guarded-action model in :data:`repro.formal.model.MODELS`
    describing this backend's stable state machine, or None.  Protocols
    that declare one are checked by the ``formal`` CLI target: static
    conformance of the implementation AST, small-scope exploration of
    the model, TLA+ export and the litmus divergence oracle.

Import-order note: this module must not import any protocol module
(the decorators live *in* those modules); ``repro/protocols/__init__``
imports every backend so registration happens as a side effect of
importing the package.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from collections.abc import Callable, Iterator, Mapping


@dataclass(frozen=True)
class ProtocolInfo:
    """Capability descriptor one backend registers with."""

    name: str
    label: str
    paper: str
    summary: str
    tracking: str              # "directory" | "registry" | "dirty-set"
    invalidation: str          # "writer" | "self"
    backoff: str = "none"      # "none" | "adaptive"
    requires_annotations: bool = False
    fault_hooks: bool = True
    runtime_invariants: bool = True
    default_comparison: bool = False
    app_comparison: bool = False
    formal_model: str | None = None
    cls: type | None = field(default=None, compare=False)


_TRACKING = {"directory", "registry", "dirty-set"}
_INVALIDATION = {"writer", "self"}
_BACKOFF = {"none", "adaptive"}

#: Registration-ordered ``name -> ProtocolInfo``.  Order matters: the
#: first ``default_comparison`` entry (MESI) is the figure baseline.
_REGISTRY: dict[str, ProtocolInfo] = {}


def register_protocol(**capabilities) -> Callable[[type], type]:
    """Class decorator: register a protocol backend with its capabilities.

    Usage::

        @register_protocol(
            name="Neat", label="Neat", paper="...", summary="...",
            tracking="dirty-set", invalidation="self",
            requires_annotations=True, default_comparison=True,
        )
        class NeatProtocol(CoherenceProtocol): ...
    """

    def _register(cls: type) -> type:
        info = ProtocolInfo(cls=cls, **capabilities)
        if info.tracking not in _TRACKING:
            raise ValueError(
                f"{info.name}: tracking must be one of {sorted(_TRACKING)}"
            )
        if info.invalidation not in _INVALIDATION:
            raise ValueError(
                f"{info.name}: invalidation must be one of "
                f"{sorted(_INVALIDATION)}"
            )
        if info.backoff not in _BACKOFF:
            raise ValueError(
                f"{info.name}: backoff must be one of {sorted(_BACKOFF)}"
            )
        if info.name in _REGISTRY and _REGISTRY[info.name].cls is not cls:
            raise ValueError(f"protocol {info.name!r} registered twice")
        _REGISTRY[info.name] = info
        return cls

    return _register


def iter_protocols() -> Iterator[ProtocolInfo]:
    """All registered backends, in registration order."""
    return iter(_REGISTRY.values())


def protocol_names() -> tuple[str, ...]:
    """Every registered protocol name, in registration order."""
    return tuple(_REGISTRY)


def unknown_protocol_error(name: str) -> ValueError:
    """A ``ValueError`` for an unknown name, with near-miss suggestions."""
    known = list(_REGISTRY)
    message = f"unknown protocol {name!r}; expected one of {sorted(known)}"
    by_fold = {k.casefold(): k for k in known}
    suggestions = []
    folded = by_fold.get(str(name).casefold())
    if folded is not None:
        suggestions = [folded]
    else:
        suggestions = difflib.get_close_matches(
            str(name), known, n=2, cutoff=0.6
        )
    if suggestions:
        message += "; did you mean " + " or ".join(
            repr(s) for s in suggestions
        ) + "?"
    return ValueError(message)


def get_info(name: str) -> ProtocolInfo:
    """The :class:`ProtocolInfo` registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise unknown_protocol_error(name) from None


def protocols_with(**capabilities) -> tuple[str, ...]:
    """Names of backends whose descriptor matches every given field.

    ``protocols_with(invalidation="self", fault_hooks=True)`` returns
    the self-invalidation protocols that also support fault injection.
    Unknown field names raise (they would silently match nothing).
    """
    for key in capabilities:
        if key not in ProtocolInfo.__dataclass_fields__:
            raise TypeError(f"ProtocolInfo has no capability field {key!r}")
    return tuple(
        info.name
        for info in _REGISTRY.values()
        if all(
            getattr(info, key) == value
            for key, value in capabilities.items()
        )
    )


# -- capability-derived comparison sets ---------------------------------------


def default_comparison_set() -> tuple[str, ...]:
    """The headline comparison set (kernel figures, mc, submit)."""
    return protocols_with(default_comparison=True)


def app_comparison_set() -> tuple[str, ...]:
    """The app-figure comparison set (fig6-style sweeps)."""
    return protocols_with(app_comparison=True)


def chaos_comparison_set() -> tuple[str, ...]:
    """Chaos differential set: default-set members that advertise both
    fault-injection hooks and runtime invariant checking."""
    return protocols_with(
        default_comparison=True, fault_hooks=True, runtime_invariants=True
    )


def sanitize_comparison_set() -> tuple[str, ...]:
    """Sanitizer sweep set: the stale-read oracle only makes sense for
    protocols that rely on reader self-invalidation."""
    return protocols_with(invalidation="self")


def formal_model_set() -> tuple[str, ...]:
    """Backends with a formal model attached (the ``formal`` target set)."""
    return tuple(
        info.name for info in _REGISTRY.values() if info.formal_model
    )


# -- presentation -------------------------------------------------------------


def registry_table() -> str:
    """The registry as an aligned text table (the ``protocols`` target)."""
    headers = (
        "protocol", "label", "tracking", "invalidation", "backoff",
        "annotations", "faults", "invariants", "sets", "formal", "paper",
    )
    rows = []
    for info in _REGISTRY.values():
        sets = ",".join(
            tag
            for tag, member in (
                ("default", info.default_comparison),
                ("app", info.app_comparison),
            )
            if member
        ) or "-"
        rows.append((
            info.name, info.label, info.tracking, info.invalidation,
            info.backoff,
            "required" if info.requires_annotations else "optional",
            "yes" if info.fault_hooks else "no",
            "yes" if info.runtime_invariants else "no",
            sets, info.formal_model or "-", info.paper,
        ))
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(line.rstrip() for line in lines)


def registry_markdown_table() -> str:
    """The registry as a Markdown table.

    This exact block is embedded in ``README.md`` and
    ``docs/architecture.md``; CI regenerates it and asserts the docs
    still contain it (``protocols --check-doc``), so the table can never
    drift from the code.
    """
    lines = [
        "| protocol | label | tracking | invalidation | backoff "
        "| annotations | comparison sets | formal model | models |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    for info in _REGISTRY.values():
        sets = ", ".join(
            tag
            for tag, member in (
                ("default", info.default_comparison),
                ("app", info.app_comparison),
            )
            if member
        ) or "—"
        formal = f"`{info.formal_model}`" if info.formal_model else "—"
        lines.append(
            f"| `{info.name}` | {info.label} | {info.tracking} "
            f"| {info.invalidation} | {info.backoff} "
            f"| {'required' if info.requires_annotations else 'optional'} "
            f"| {sets} | {formal} | {info.paper} |"
        )
    return "\n".join(lines)


# -- backwards-compatible mapping views ---------------------------------------


class RegistryView(Mapping):
    """Read-only ``name -> attribute`` view over the registry.

    ``PROTOCOLS`` (name -> class) and ``PROTOCOL_LABELS`` (name ->
    figure label) are instances, so every pre-registry import site
    (``list(PROTOCOLS)``, ``PROTOCOLS[name]``, ``LABELS.get(p, p)``)
    keeps working while reflecting dynamically registered backends.
    """

    def __init__(self, attribute: str):
        self._attribute = attribute

    def __getitem__(self, name: str):
        try:
            info = _REGISTRY[name]
        except KeyError:
            # Plain KeyError keeps the Mapping contract (`in`, `.get`);
            # make_protocol/get_info raise the suggestion-rich ValueError.
            raise KeyError(name) from None
        return getattr(info, self._attribute)

    def __iter__(self) -> Iterator[str]:
        return iter(_REGISTRY)

    def __len__(self) -> int:
        return len(_REGISTRY)

    def __repr__(self) -> str:
        return f"RegistryView({dict(self)!r})"


__all__ = [
    "ProtocolInfo",
    "RegistryView",
    "register_protocol",
    "iter_protocols",
    "protocol_names",
    "get_info",
    "protocols_with",
    "unknown_protocol_error",
    "default_comparison_set",
    "app_comparison_set",
    "chaos_comparison_set",
    "sanitize_comparison_set",
    "formal_model_set",
    "registry_table",
    "registry_markdown_table",
]
