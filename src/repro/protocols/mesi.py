"""MESI directory protocol (the paper's baseline).

Line-granularity invalidation protocol with a full sharer list per line at
the home LLC bank and a *blocking* directory: a transaction that involves a
third party (invalidation collection or an owner forward) occupies the
directory entry until it completes, and later requests to the same line
queue behind it.  Writer-initiated invalidations put the farthest-sharer
round trip on the write/upgrade critical path — the linearization-cost
effect the paper analyzes for TATAS locks and non-blocking CAS loops.

Data stores are non-blocking (the paper modified GEMS MESI the same way
for a fair comparison with DeNovo); RMWs and synchronization stores block.

Spinning readers hit on their Shared copy at zero network cost; the
:meth:`subscribe_line_change` hook lets a simulated core sleep on its
cached copy and be woken by the invalidation, which models spin loops
without simulating every 1-cycle hit as a separate event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable

from repro.mem.l1 import MesiL1, MesiState
from repro.mem.regions import Region
from repro.noc.messages import MessageClass
from repro.protocols.base import Access, CoherenceProtocol
from repro.protocols.invariants import mesi_violations
from repro.protocols.registry import register_protocol


@dataclass
class DirectoryEntry:
    """Home-bank state for one line: sharer list and busy window."""

    exclusive_owner: int | None = None  # core holding the line in E or M
    sharers: set[int] = field(default_factory=set)
    busy_until: int = 0


@register_protocol(
    name="MESI",
    label="M",
    paper="baseline MESI directory (DeNovoSync §2)",
    summary=(
        "Blocking line-granularity directory with writer-initiated "
        "invalidations; the paper's hardware baseline."
    ),
    tracking="directory",
    invalidation="writer",
    default_comparison=True,
    app_comparison=True,
    formal_model="mesi",
)
class MesiProtocol(CoherenceProtocol):
    name = "MESI"

    def __init__(self, config, allocator=None):
        super().__init__(config, allocator)
        self.l1s = [MesiL1(core, config) for core in range(config.num_cores)]
        self._directory: dict[int, DirectoryEntry] = {}
        # line -> list of (core_id, callback) waiting for their copy to die
        self._waiters: dict[int, list[tuple[int, Callable[[int], None]]]] = {}
        # Hot-path constants and tables, bound once (see base.__init__):
        # per-operation code inlines the config lookups and, for the
        # standard power-of-two geometries, the line/bank address math.
        self._l1_hit = config.l1_hit_latency
        self._line_bytes = config.line_bytes
        self._own_occ = config.tuning.ownership_occupancy
        self._bank_occ = config.tuning.bank_occupancy
        self._line_shift = self.amap.line_shift
        self._bank_mask = self.amap.bank_mask
        self._pow2 = self._line_shift is not None and self._bank_mask is not None
        self._l2_flat = self.mesh._l2_latency

    # -- helpers ----------------------------------------------------------

    def _entry(self, line: int) -> DirectoryEntry:
        entry = self._directory.get(line)
        if entry is None:
            entry = DirectoryEntry()
            self._directory[line] = entry
        return entry

    def _queue_delay(self, entry: DirectoryEntry) -> int:
        """Blocking-directory delay seen by a request arriving now."""
        return max(0, entry.busy_until - self.now)

    def _reserve_or_retry(
        self, entry: DirectoryEntry, core_id: int, bank: int, ticketed: bool
    ) -> Access | None:
        """Blocking-directory admission control.

        A request arriving while the entry is busy takes a FIFO reservation
        (the busy window is extended by a nominal service slot) and is told
        to retry at its reserved time; the re-issued request passes
        ``ticketed=True`` and is serviced unconditionally.  This bounds a
        request's wait to the queue length at its arrival and services the
        line in arrival order, like a real blocking directory's message
        queue — and resolves the value at service time, not arrival time.
        """
        if ticketed:
            return None
        queue = entry.busy_until - self.now
        if queue <= 0:
            return None
        self._counts["directory_retries"] += 1
        entry.busy_until += self._own_occ
        return Access(0, queue, hit=False, retry=True)

    def _insert_line(self, core_id: int, line: int, state: MesiState) -> None:
        """Fill ``line`` into the L1, handling any replacement victim."""
        victim = self.l1s[core_id].insert(line, state)
        if victim is not None:
            self._handle_victim(core_id, *victim)

    def _handle_victim(self, core_id: int, vline: int, vstate: MesiState) -> None:
        """Directory bookkeeping for a line evicted from ``core_id``'s L1."""
        ventry = self._entry(vline)
        bank = self.amap.home_bank(vline)
        if vstate is MesiState.MODIFIED:
            self.record_data(MessageClass.WRITEBACK, core_id, bank, self._line_bytes)
            self._counts["writebacks"] += 1
            ventry.exclusive_owner = None
        elif vstate is MesiState.EXCLUSIVE:
            ventry.exclusive_owner = None
        else:
            ventry.sharers.discard(core_id)
        # The victim's copy is gone, so a future writer's invalidation will
        # never reach this core: wake any spin-waiter subscribed to the
        # victim now (it re-probes and misses), else it sleeps forever.
        self._notify_waiters(vline, core_id, self.now)

    def _invalidate_sharer(self, line: int, sharer: int, notify_time: int) -> None:
        """Drop ``sharer``'s copy and wake any spin-waiters it had on it."""
        old = self.l1s[sharer].invalidate(line)
        if old is not None:
            self._notify_waiters(line, sharer, notify_time)

    def _notify_waiters(self, line: int, core_id: int, wake_time: int) -> None:
        waiters = self._waiters.get(line)
        if not waiters:
            return
        remaining = []
        for waiter_core, callback in waiters:
            if waiter_core == core_id:
                callback(wake_time)
            else:
                remaining.append((waiter_core, callback))
        if remaining:
            self._waiters[line] = remaining
        else:
            del self._waiters[line]

    # -- loads ------------------------------------------------------------

    def load(
        self,
        core_id: int,
        addr: int,
        sync: bool = False,
        ticketed: bool = False,
        acquire: bool = False,
    ) -> Access:
        if self._pow2:
            line = addr >> self._line_shift
        else:
            line = self.amap.line_of(addr)
        state = self.l1s[core_id].state_of(line)
        if state is not None:
            self._counts["l1_hits"] += 1
            return Access(self._mem_get(addr, 0), self._l1_hit, hit=True)

        self._counts["l1_misses"] += 1
        entry = self._entry(line)
        bank = line & self._bank_mask if self._pow2 else self.amap.home_bank(line)
        retry = self._reserve_or_retry(entry, core_id, bank, ticketed)
        if retry is not None:
            return retry
        self.record_control(MessageClass.LOAD, core_id, bank)

        owner = entry.exclusive_owner
        if owner is not None and owner != core_id:
            # Forward to the exclusive owner; it downgrades to Shared and the
            # dirty line is written back to the LLC.
            latency = self.mesh.remote_l1_latency(core_id, bank, owner)
            owner_state = self.l1s[owner].state_of(line, touch=False)
            if owner_state is None:
                # The owner silently lost the line to replacement before the
                # directory heard about it; fall back to an LLC fetch.
                entry.exclusive_owner = None
                return self._load_from_llc(core_id, line, addr, entry, bank)
            self.l1s[owner].set_state(line, MesiState.SHARED)
            if owner_state is MesiState.MODIFIED:
                self.record_data(
                    MessageClass.WRITEBACK, owner, bank, self._line_bytes
                )
                self._counts["writebacks"] += 1
            self.record_control(MessageClass.LOAD, bank, owner)
            self.record_data(MessageClass.LOAD, owner, core_id, self._line_bytes)
            entry.exclusive_owner = None
            entry.sharers.update({owner, core_id})
            # Ownership transfers hold the entry only for the protocol-race
            # window; the unblock round trip is tracked in an MSHR.
            entry.busy_until = max(
                entry.busy_until,
                self.now + self._own_occ,
            )
            self._insert_line(core_id, line, MesiState.SHARED)
            return Access(self._mem_get(addr, 0), latency, hit=False)

        return self._load_from_llc(core_id, line, addr, entry, bank)

    def _load_from_llc(
        self, core_id: int, line: int, addr: int, entry: DirectoryEntry, bank: int
    ) -> Access:
        fetch, cold = self.llc_fetch_latency(core_id, line)
        latency = fetch
        if cold:
            self.record_memory_fill(MessageClass.LOAD, line)
        self.record_data(MessageClass.LOAD, bank, core_id, self._line_bytes)
        if not entry.sharers and entry.exclusive_owner is None:
            # Exclusive-clean grant: a later write by this core is silent.
            entry.exclusive_owner = core_id
            self._insert_line(core_id, line, MesiState.EXCLUSIVE)
        else:
            entry.sharers.add(core_id)
            self._insert_line(core_id, line, MesiState.SHARED)
        entry.busy_until = max(entry.busy_until, self.now + self._bank_occ)
        return Access(self._mem_get(addr, 0), latency, hit=False)

    # -- stores and RMWs ------------------------------------------------------

    def store(
        self,
        core_id: int,
        addr: int,
        value: int,
        sync: bool = False,
        release: bool = False,
        ticketed: bool = False,
    ) -> Access:
        outcome = self._obtain_modified(core_id, addr, ticketed)
        if outcome.retry:
            return outcome
        old = self._mem_get(addr, 0)
        self._mem_values[addr] = value
        if not sync:
            # Non-blocking data store: the core retires it in one cycle.
            return Access(old, self._l1_hit, hit=outcome.hit)
        return Access(old, outcome.latency, hit=outcome.hit)

    def rmw(
        self,
        core_id: int,
        addr: int,
        fn: Callable[[int], int | None],
        release: bool = False,
        ticketed: bool = False,
        acquire: bool = False,
    ) -> Access:
        outcome = self._obtain_modified(core_id, addr, ticketed)
        if outcome.retry:
            return outcome
        old = self._mem_get(addr, 0)
        new = fn(old)
        if new is not None:
            self._mem_values[addr] = new
        self._counts["rmws"] += 1
        return Access(old, outcome.latency, hit=outcome.hit)

    def _obtain_modified(self, core_id: int, addr: int, ticketed: bool = False) -> Access:
        """Bring ``addr``'s line to Modified (the Access value is unset)."""
        if self._pow2:
            line = addr >> self._line_shift
        else:
            line = self.amap.line_of(addr)
        l1 = self.l1s[core_id]
        state = l1.state_of(line)
        if state is MesiState.MODIFIED:
            self._counts["l1_hits"] += 1
            return Access(0, self._l1_hit, hit=True)
        if state is MesiState.EXCLUSIVE:
            # Silent E -> M upgrade.
            self._counts["l1_hits"] += 1
            l1.set_state(line, MesiState.MODIFIED)
            return Access(0, self._l1_hit, hit=True)

        self._counts["l1_misses"] += 1
        entry = self._entry(line)
        bank = line & self._bank_mask if self._pow2 else self.amap.home_bank(line)
        retry = self._reserve_or_retry(entry, core_id, bank, ticketed)
        if retry is not None:
            return retry
        self.record_control(MessageClass.STORE, core_id, bank)

        latency = 0
        owner = entry.exclusive_owner
        if owner is not None and owner != core_id:
            owner_state = self.l1s[owner].state_of(line, touch=False)
            if owner_state is None:
                entry.exclusive_owner = None
                fetch, cold = self.llc_fetch_latency(core_id, line)
                latency += fetch
                if cold:
                    self.record_memory_fill(MessageClass.STORE, line)
                self.record_data(MessageClass.STORE, bank, core_id, self._line_bytes)
            else:
                latency += self.mesh.remote_l1_latency(core_id, bank, owner)
                if owner_state is MesiState.MODIFIED:
                    self.record_data(
                        MessageClass.WRITEBACK, owner, bank, self._line_bytes
                    )
                    self._counts["writebacks"] += 1
                self.record_control(MessageClass.INVALIDATION, bank, owner)
                self.record_data(
                    MessageClass.STORE, owner, core_id, self._line_bytes
                )
                self._invalidate_sharer(line, owner, self.now + latency)
                self._counts["invalidations_sent"] += 1
        else:
            targets = entry.sharers - {core_id}
            if state is MesiState.SHARED:
                # Upgrade: no data transfer needed, just the directory visit.
                latency += self._l2_flat[core_id * self._ntiles + bank]
            else:
                fetch, cold = self.llc_fetch_latency(core_id, line)
                latency += fetch
                if cold:
                    self.record_memory_fill(MessageClass.STORE, line)
                self.record_data(MessageClass.STORE, bank, core_id, self._line_bytes)
            if targets:
                # Writer-initiated invalidations: the write completes only
                # once the farthest ack arrives (write atomicity), but ack
                # collection happens at the requester and overlaps the data
                # response, which is dispatched at roughly half the fetch
                # round trip.
                inv_rtt = max(
                    self.mesh.invalidation_round_trip(bank, t) for t in targets
                )
                latency = max(latency, latency // 2 + inv_rtt)
                # Pin the fan-out order: set iteration order would leak
                # into the NoC event sequence (unordered-iteration lint).
                for target in sorted(targets):
                    self.record_control(MessageClass.INVALIDATION, bank, target)
                    self.record_control(MessageClass.INVALIDATION, target, bank)
                    self._invalidate_sharer(line, target, self.now + latency)
                    self._counts["invalidations_sent"] += 1

        entry.exclusive_owner = core_id
        entry.sharers.clear()
        # The directory unblocks on the requester's unblock message; ack
        # collection at the requester does not extend the busy window.
        entry.busy_until = max(
            entry.busy_until,
            self.now + self._l2_flat[core_id * self._ntiles + bank],
        )
        if state is MesiState.SHARED:
            l1.set_state(line, MesiState.MODIFIED)
        else:
            self._insert_line(core_id, line, MesiState.MODIFIED)
        return Access(0, latency, hit=False)

    # -- misc ----------------------------------------------------------------

    def self_invalidate(
        self, core_id: int, regions: list[Region], flush_all: bool = False
    ) -> int:
        """MESI needs no self-invalidation; the instruction retires in a cycle."""
        return self.config.l1_hit_latency

    def subscribe_line_change(
        self, core_id: int, addr: int, callback: Callable[[int], None]
    ) -> bool:
        # Quiescence declaration (epoch mode): a MESI spinner with a
        # cached copy sleeps here until the writer's invalidation wakes
        # it — it never re-polls, so there is no poll stream to lease
        # (spin_poll_lease stays the base None).  A spinner without a
        # copy re-probes, but that probe refills the line: stateful, not
        # a closed-formable repeat.
        line = self.amap.line_of(addr)
        if self.l1s[core_id].state_of(line, touch=False) is None:
            return False  # copy already invalidated; caller should re-probe
        self._waiters.setdefault(line, []).append((core_id, callback))
        return True

    # -- runtime invariants & diagnostics -------------------------------------

    def invariant_violations(self) -> list[str]:
        return mesi_violations(self)

    def force_evict(self, core_id: int, line: int) -> bool:
        """Evict ``line`` from ``core_id``'s L1 as replacement would:
        writeback if dirty, directory update, and waiter wake-up."""
        state = self.l1s[core_id].state_of(line, touch=False)
        if state is None:
            return False
        self.l1s[core_id].invalidate(line)
        self._handle_victim(core_id, line, state)
        return True

    def debug_resident_lines(self, core_id: int) -> list[int]:
        return self.l1s[core_id].resident_lines()

    def debug_addr_state(self, addr: int) -> str:
        line = self.amap.line_of(addr)
        entry = self._directory.get(line)
        if entry is None:
            directory = "no directory entry"
        else:
            directory = (
                f"owner={entry.exclusive_owner} "
                f"sharers={sorted(entry.sharers)} "
                f"busy_until={entry.busy_until}"
            )
        copies = {
            core_id: l1.state_of(line, touch=False).value
            for core_id, l1 in enumerate(self.l1s)
            if l1.state_of(line, touch=False) is not None
        }
        waiters = sorted(core for core, _ in self._waiters.get(line, []))
        return (
            f"addr {addr} (line {line}): directory[{directory}] "
            f"L1 copies={copies or '{}'} subscribed waiters={waiters}"
        )

    def debug_transients(self) -> list[str]:
        out = []
        for line, entry in sorted(self._directory.items()):
            if entry.busy_until > self.now:
                out.append(
                    f"line {line}: directory busy until cycle "
                    f"{entry.busy_until} (owner={entry.exclusive_owner} "
                    f"sharers={sorted(entry.sharers)})"
                )
        for line, waiters in sorted(self._waiters.items()):
            cores = sorted(core for core, _ in waiters)
            out.append(f"line {line}: cores {cores} sleeping on invalidation")
        return out
