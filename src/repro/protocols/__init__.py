"""Coherence protocols: MESI, DeNovoSync0, DeNovoSync."""

from repro.protocols.base import Access, CoherenceProtocol
from repro.protocols.mesi import MesiProtocol
from repro.protocols.denovosync0 import DeNovoSync0Protocol
from repro.protocols.denovosync import DeNovoSyncProtocol
from repro.protocols.signatures import DeNovoSyncSigProtocol
from repro.protocols.mesi_rfo import MesiRfoProtocol

PROTOCOLS = {
    "MESI": MesiProtocol,
    "DeNovoSync0": DeNovoSync0Protocol,
    "DeNovoSync": DeNovoSyncProtocol,
    # Extension: DeNovoND-style signature-based data consistency (the
    # paper's future-work direction).  Requires acquire/release-annotated
    # workloads (all lock kernels, barriers, and app models qualify).
    "DeNovoSyncSig": DeNovoSyncSigProtocol,
    # Extension: MESI issuing sync reads as read-for-ownership (the
    # section 8 related-work counterpoint).
    "MESI-RFO": MesiRfoProtocol,
}

#: Figure-label abbreviations used throughout the paper.
PROTOCOL_LABELS = {
    "MESI": "M",
    "DeNovoSync0": "DS0",
    "DeNovoSync": "DS",
    "DeNovoSyncSig": "DSsig",
    "MESI-RFO": "M-RFO",
}


def make_protocol(name: str, *args, **kwargs) -> CoherenceProtocol:
    """Instantiate a protocol by its paper name (``MESI``/``DeNovoSync0``/...)."""
    try:
        cls = PROTOCOLS[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; expected one of {sorted(PROTOCOLS)}"
        ) from None
    return cls(*args, **kwargs)


__all__ = [
    "Access",
    "CoherenceProtocol",
    "MesiProtocol",
    "DeNovoSync0Protocol",
    "DeNovoSyncProtocol",
    "PROTOCOLS",
    "PROTOCOL_LABELS",
    "make_protocol",
]
