"""Coherence protocol backends, discovered through the plugin registry.

Importing this package imports every backend module; each registers
itself with :func:`repro.protocols.registry.register_protocol` as a side
effect, so the registry below is complete the moment the package is
importable.  Adding a backend is a one-file change: write the module,
decorate the class with its :class:`~repro.protocols.registry.ProtocolInfo`
capabilities, and import it here.

``PROTOCOLS`` (name -> class) and ``PROTOCOL_LABELS`` (name -> figure
label) remain as thin read-only views over the registry for
backwards compatibility; new code should query the registry directly
(:func:`protocols_with`, :func:`default_comparison_set`, ...).
"""

from repro.protocols.base import Access, CoherenceProtocol
from repro.protocols.registry import (
    ProtocolInfo,
    RegistryView,
    app_comparison_set,
    chaos_comparison_set,
    default_comparison_set,
    get_info,
    iter_protocols,
    protocol_names,
    protocols_with,
    register_protocol,
    registry_markdown_table,
    registry_table,
    sanitize_comparison_set,
    unknown_protocol_error,
)

# Importing a backend module registers it; registration order is
# presentation order (MESI first: it is the figures' baseline column).
from repro.protocols.mesi import MesiProtocol
from repro.protocols.denovosync0 import DeNovoSync0Protocol
from repro.protocols.denovosync import DeNovoSyncProtocol
from repro.protocols.signatures import DeNovoSyncSigProtocol
from repro.protocols.mesi_rfo import MesiRfoProtocol
from repro.protocols.neat import NeatProtocol
from repro.protocols.syncron import SynCronProtocol

#: Backwards-compatible ``name -> protocol class`` view of the registry.
PROTOCOLS = RegistryView("cls")

#: Figure-label abbreviations used throughout the paper figures.
PROTOCOL_LABELS = RegistryView("label")


def make_protocol(name: str, *args, **kwargs) -> CoherenceProtocol:
    """Instantiate a protocol by its registered paper name.

    Unknown names raise :class:`ValueError` listing the registered
    names plus near-miss suggestions (``mesi`` -> ``MESI``).
    """
    return get_info(name).cls(*args, **kwargs)


__all__ = [
    "Access",
    "CoherenceProtocol",
    "MesiProtocol",
    "DeNovoSync0Protocol",
    "DeNovoSyncProtocol",
    "DeNovoSyncSigProtocol",
    "MesiRfoProtocol",
    "NeatProtocol",
    "SynCronProtocol",
    "PROTOCOLS",
    "PROTOCOL_LABELS",
    "make_protocol",
    "ProtocolInfo",
    "RegistryView",
    "register_protocol",
    "iter_protocols",
    "protocol_names",
    "get_info",
    "protocols_with",
    "unknown_protocol_error",
    "default_comparison_set",
    "app_comparison_set",
    "chaos_comparison_set",
    "sanitize_comparison_set",
    "registry_table",
    "registry_markdown_table",
]
