"""Neat: low-complexity self-invalidation + self-downgrade coherence.

Models the Neat design point (Kaxiras et al., arXiv:2107.05453): a
coherence protocol with *no global tracking state at all* — no sharer
directory, no DeNovo-style registry — built from exactly two mechanisms
that each core applies to itself:

* **Self-invalidation (Si)**: at an acquire, the core flash-invalidates
  the Valid words of the annotated regions from its own L1 (identical
  to DeNovo's acquire behaviour, reusing the region-indexed tracking).
* **Self-downgrade (Sd)**: data writes complete locally, marking the
  word dirty in the writer's L1; at a *release* the core writes every
  dirty word back to its LLC home bank and downgrades its copies to
  clean Valid.  Until then a dirty word costs zero traffic — Neat
  trades write-through traffic for a burst of word-granularity
  writebacks per release.

Because nothing tracks ownership, synchronization cannot be resolved in
an L1: every sync access (WaitLoad/Store/Cas/Fai/Swap on a sync
variable) goes to the word's LLC home bank, operates on the
architectural value there, and never leaves a usable copy behind — the
local copy (if any) is dropped so repeated probes are honest misses.
Spinners therefore *poll*; there is no wake-up subscription (the
``subscribe_line_change`` hook stays False), matching Neat's
atomics-at-LLC treatment.

Storage-wise the model reuses :class:`~repro.mem.l1.DeNovoL1`:
``Registered`` plays "dirty", ``Valid`` plays "clean"; the per-core
``_dirty`` sets are the write-back lists a real Neat L1 keeps as
per-line dirty bits.  Replacement of a dirty word writes it back (the
``on_evict_registered`` handler), exactly like a write-back cache.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.mem.l1 import DeNovoL1, DeNovoState
from repro.mem.regions import Region
from repro.noc.messages import MessageClass
from repro.protocols.base import (
    _CONTROL_FLITS,
    _data_flits,
    Access,
    CoherenceProtocol,
    SpinLease,
)
from repro.protocols.invariants import neat_violations
from repro.protocols.registry import register_protocol


@register_protocol(
    name="Neat",
    label="Neat",
    paper="Neat (arXiv:2107.05453)",
    summary=(
        "Self-invalidation + self-downgrade with no directory or "
        "registry; dirty words write back at releases, sync ops "
        "resolve at the LLC and spinners poll."
    ),
    tracking="dirty-set",
    invalidation="self",
    requires_annotations=True,
    default_comparison=True,
    app_comparison=True,
)
class NeatProtocol(CoherenceProtocol):
    name = "Neat"

    def __init__(self, config, allocator=None):
        super().__init__(config, allocator)
        self.l1s = [
            DeNovoL1(core, config, self.amap, self._make_evict_handler(core))
            for core in range(config.num_cores)
        ]
        if allocator is not None:
            for l1 in self.l1s:
                l1.set_region_lookup(
                    self.region_id_of, allocator._region_of_addr
                )
        #: Per-core set of dirty word addresses (held Registered in the
        #: L1) awaiting their self-downgrade writeback.
        self._dirty: list[set[int]] = [set() for _ in range(config.num_cores)]
        self._l1_hit = config.l1_hit_latency
        self._word_bytes = config.word_bytes
        self._flush_line_cost = config.tuning.neat_flush_line_cost

    def _make_evict_handler(self, core_id: int):
        def on_evict_registered(addr: int, value: int) -> None:
            # Replacement of a dirty word: write it back now instead of
            # at the next release (ordinary write-back cache behaviour).
            self._dirty[core_id].discard(addr)
            bank = self.amap.home_bank_of_addr(addr)
            self.record_data(
                MessageClass.WRITEBACK, core_id, bank, self._word_bytes
            )
            self.counters.bump("writebacks")

        return on_evict_registered

    # -- data accesses -------------------------------------------------------

    def load(
        self,
        core_id: int,
        addr: int,
        sync: bool = False,
        ticketed: bool = False,
        acquire: bool = False,
    ) -> Access:
        if sync:
            self._counts["sync_read_misses"] += 1
            access = self._sync_access(core_id, addr)
            if acquire:
                self.on_acquire(core_id, addr)
            return access
        l1 = self.l1s[core_id]
        value = l1.present_value(addr)
        if value is not None:
            self._counts["l1_hits"] += 1
            return Access(value, self._l1_hit, hit=True)

        # Miss: the LLC always owns a usable copy (dirty words elsewhere
        # only diverge from it until their release, and reading them
        # before that release is a data race Si/Sd does not order).
        self._counts["l1_misses"] += 1
        if self._pow2:
            line = addr >> self._line_shift
            bank = line & self._bank_mask
        else:
            line = self.amap.line_of(addr)
            bank = self.amap.home_bank(line)
        latency, cold = self.llc_fetch_latency(core_id, line)
        if cold:
            self.record_memory_fill(MessageClass.LOAD, line)
        self.record_control(MessageClass.LOAD, core_id, bank)
        filled = 0
        for word_addr in self.amap.words_of_line(line):
            if l1.state_of(word_addr, touch=False) is not DeNovoState.INVALID:
                continue
            l1.fill_word(
                word_addr, self._mem_get(word_addr, 0), DeNovoState.VALID
            )
            filled += 1
        self.record_data(
            MessageClass.LOAD, bank, core_id, self._word_bytes * filled
        )
        return Access(self._mem_get(addr, 0), latency, hit=False)

    def store(
        self,
        core_id: int,
        addr: int,
        value: int,
        sync: bool = False,
        release: bool = False,
        ticketed: bool = False,
    ) -> Access:
        if sync:
            old = self._mem_get(addr, 0)
            # Sd: the release write publishes every dirty word first.
            flush = self._flush_dirty(core_id) if release else 0
            access = self._sync_access(core_id, addr)
            self._mem_values[addr] = value
            return Access(old, access.latency + flush, hit=False)
        # Data write: completes locally, marked dirty, zero traffic now —
        # the cost is deferred to the release flush (or replacement).
        l1 = self.l1s[core_id]
        old = self._mem_get(addr, 0)
        if l1.try_write_registered(addr, value):
            self._counts["l1_hits"] += 1
            self._mem_values[addr] = value
            return Access(old, self._l1_hit, hit=True)
        self._counts["l1_misses"] += 1
        l1.fill_word(addr, value, DeNovoState.REGISTERED)
        self._dirty[core_id].add(addr)
        self._mem_values[addr] = value
        return Access(old, self._l1_hit, hit=False)

    # -- synchronization accesses --------------------------------------------

    def _sync_access(self, core_id: int, addr: int) -> Access:
        """One sync op at ``addr``'s LLC home bank.

        Drops any local copy first (a cached sync word would otherwise
        satisfy later spin probes with a stale value forever — Neat has
        no one to wake a spinner, so probes must reach the LLC)."""
        l1 = self.l1s[core_id]
        if l1.state_of(addr, touch=False) is not DeNovoState.INVALID:
            self._dirty[core_id].discard(addr)
            l1.invalidate_word(addr)
        self._counts["l1_misses"] += 1
        if self._pow2:
            line = addr >> self._line_shift
            bank = line & self._bank_mask
        else:
            line = self.amap.line_of(addr)
            bank = self.amap.home_bank(line)
        latency, cold = self.llc_fetch_latency(core_id, line)
        if cold:
            self.record_memory_fill(MessageClass.SYNCH, line)
        self.record_control(MessageClass.SYNCH, core_id, bank)
        self.record_data(MessageClass.SYNCH, bank, core_id, self._word_bytes)
        return Access(self._mem_get(addr, 0), latency, hit=False)

    def spin_poll_lease(self, core_id: int, addr: int) -> SpinLease | None:
        """Neat spinners poll the LLC; the failed polls are stateless.

        After the first probe of a spin wait the polled word is Invalid
        in the spinner's L1 (``_sync_access`` drops the copy and never
        refills it) and its line is LLC-resident, so every further
        failed poll repeats exactly: +1 ``sync_read_misses``, +1
        ``l1_misses``, one SYNCH control/data round trip to the home
        bank, and the warm home-bank latency.  Nothing else in the
        protocol moves — no registry, no subscriptions, no backoff —
        which is precisely the quiescent-until-signaled contract of
        :meth:`~repro.protocols.base.CoherenceProtocol.spin_poll_lease`.
        """
        if self._pow2:
            line = addr >> self._line_shift
            bank = line & self._bank_mask
        else:
            line = self.amap.line_of(addr)
            bank = self.amap.home_bank(line)
        if line not in self._resident:
            # The next poll would be a cold miss (can only happen if no
            # probe ran yet); let the full probes handle it.
            return None
        hops = self._hops_flat[core_id * self._ntiles + bank]
        return SpinLease(
            latency=self._l2_flat[core_id * self._ntiles + bank],
            counts=("sync_read_misses", "l1_misses"),
            traffic_idx=MessageClass.SYNCH.idx,
            flits=(_CONTROL_FLITS + _data_flits(self._word_bytes)) * hops,
            messages=2,
        )

    def rmw(
        self,
        core_id: int,
        addr: int,
        fn: Callable[[int], int | None],
        release: bool = False,
        ticketed: bool = False,
        acquire: bool = False,
    ) -> Access:
        flush = self._flush_dirty(core_id) if release else 0
        access = self._sync_access(core_id, addr)
        old = access.value
        new = fn(old)
        if new is not None:
            self._mem_values[addr] = new
        self._counts["rmws"] += 1
        if acquire:
            self.on_acquire(core_id, addr)
        return Access(old, access.latency + flush, hit=False)

    def _flush_dirty(self, core_id: int) -> int:
        """Self-downgrade: write every dirty word back to its LLC home
        bank and downgrade the copies to clean Valid; returns the added
        latency (per dirty line, the flush pipeline cost)."""
        dirty = self._dirty[core_id]
        if not dirty:
            return 0
        l1 = self.l1s[core_id]
        shift = self._line_shift
        by_line: dict[int, int] = {}
        for addr in sorted(dirty):
            line = addr >> shift if shift is not None else self.amap.line_of(addr)
            by_line[line] = by_line.get(line, 0) + 1
            l1.downgrade(addr, DeNovoState.VALID)
        for line, nwords in by_line.items():
            bank = (
                line & self._bank_mask
                if self._pow2
                else self.amap.home_bank(line)
            )
            self.record_data(
                MessageClass.WRITEBACK, core_id, bank,
                self._word_bytes * nwords,
            )
        self.counters.bump("self_downgraded_words", len(dirty))
        dirty.clear()
        return self._flush_line_cost * len(by_line)

    # -- self-invalidation ---------------------------------------------------

    def self_invalidate(
        self, core_id: int, regions: list[Region], flush_all: bool = False
    ) -> int:
        """Si: flash-invalidate the Valid words of ``regions``; dirty
        words stay (they are this core's own unpublished writes)."""
        l1 = self.l1s[core_id]
        if flush_all:
            dropped = l1.self_invalidate_all()
        else:
            dropped = 0
            for region in regions:
                dropped += l1.self_invalidate_region(region.region_id)
        self.counters.bump("self_invalidated_words", dropped)
        return self.config.tuning.self_invalidate_latency

    # -- runtime invariants & diagnostics ------------------------------------

    def invariant_violations(self) -> list[str]:
        return neat_violations(self)

    def force_evict(self, core_id: int, line: int) -> bool:
        # No subscriptions exist to notify: Neat spinners always poll.
        return self.l1s[core_id].evict_line(line) is not None

    def debug_resident_lines(self, core_id: int) -> list[int]:
        return self.l1s[core_id].resident_lines()

    def debug_addr_state(self, addr: int) -> str:
        copies = {
            core_id: l1.state_of(addr, touch=False).value
            for core_id, l1 in enumerate(self.l1s)
            if l1.state_of(addr, touch=False) is not DeNovoState.INVALID
        }
        dirty_at = sorted(
            core_id
            for core_id, dirty in enumerate(self._dirty)
            if addr in dirty
        )
        return (
            f"word {addr}: L1 states={copies or '{}'} dirty at={dirty_at} "
            f"(no global tracking)"
        )

    def debug_transients(self) -> list[str]:
        out = []
        for core_id, dirty in enumerate(self._dirty):
            if dirty:
                out.append(
                    f"core {core_id}: {len(dirty)} dirty word(s) awaiting "
                    f"self-downgrade"
                )
        return out
