"""DeNovoSync with DeNovoND-style hardware write signatures (extension).

The paper's future-work direction ("integrate more dynamic
signature-based coherence support for data accesses with DeNovoSync")
and its suggested remedy for the conservative static self-invalidations
that hurt the heap kernel and fluidanimate: instead of compiler-named
regions, track *exactly which words were written* in hardware.

Mechanics (after DeNovoND, with epoch-tagged delivery):

* each core accumulates a **write signature** — the set of data words it
  has written since its last release;
* a **release** to synchronization variable L appends the signature to
  L's *release log* as an epoch-tagged entry and clears the core's own
  (a wave of consecutive releases with no intervening writes re-attaches
  the same signature);
* an **acquire** of L delivers only the log entries *newer than the
  acquirer's previous acquire of L*: it invalidates its Valid copies of
  those words (Registered copies are its own data and stay) and merges
  them into its own signature, so a later release propagates them —
  happens-before transitivity.  Delta delivery is what preserves cached
  reuse: a lock's k-th holder re-fetches only what the holders since its
  last turn wrote, not the whole protected region;
* hardware capacity is bounded: when a core's signature or a variable's
  log overflows, precision degrades to the always-correct flush-all of
  the acquirer's Valid words (recorded in the ``signature_*`` counters).

Under this protocol the software's region-based ``SelfInvalidate``
instructions are no-ops, so acquire/release-annotated workloads — all
the lock kernels, barriers, and application models here — run correctly
with *no region information at all*.  Exact sets model the optimistic
end of real (Bloom-filter) signatures, whose false positives only add
invalidations.

Like DeNovoND, correctness relies on the data-race-free discipline that
data consistently reaches its readers through the synchronization chain
being acquired; independently-published immutable data (e.g. never-reused
non-blocking queue nodes) is safe because it is only ever read through a
registration miss.
"""

from __future__ import annotations

from collections import deque

from repro.mem.l1 import DeNovoState
from repro.mem.regions import Region
from repro.noc.messages import MessageClass
from repro.protocols.base import Access
from repro.protocols.denovosync import DeNovoSyncProtocol
from repro.protocols.registry import register_protocol

#: Words a core signature / variable log can hold before degrading.
SIGNATURE_CAPACITY = 4096

#: Modelled wire size of a signature transfer (a Bloom filter register).
SIGNATURE_PAYLOAD_BYTES = 32


@register_protocol(
    name="DeNovoSyncSig",
    label="DSsig",
    paper="DeNovoND-style signatures (future work, §7)",
    summary=(
        "DeNovoSync carrying write signatures with lock transfers so "
        "acquires invalidate only signature hits, not whole regions."
    ),
    tracking="registry",
    invalidation="self",
    backoff="adaptive",
    requires_annotations=True,
)
class DeNovoSyncSigProtocol(DeNovoSyncProtocol):
    name = "DeNovoSyncSig"

    def __init__(self, config, allocator=None):
        super().__init__(config, allocator)
        n = config.num_cores
        #: Per-core write signature since the last release (None = overflow).
        self._core_sigs: list[set[int] | None] = [set() for _ in range(n)]
        #: What each core's last release attached (for release waves).
        self._last_released: list[set[int] | None] = [set() for _ in range(n)]
        #: Global release epoch counter.
        self._epoch = 0
        #: Sync variable -> deque of (epoch, words) release-log entries.
        self._var_log: dict[int, deque] = {}
        #: Sync variable -> epoch up to which log entries were discarded;
        #: an acquirer that last synchronized at or before this epoch has
        #: lost precision and must flush.
        self._var_pruned: dict[int, int] = {}
        #: (core, variable) -> epoch of this core's previous acquire.
        self._acq_epoch: dict[tuple[int, int], int] = {}

    # -- write tracking -------------------------------------------------------

    def store(
        self,
        core_id: int,
        addr: int,
        value: int,
        sync: bool = False,
        release: bool = False,
        ticketed: bool = False,
    ) -> Access:
        access = super().store(
            core_id, addr, value, sync=sync, release=release, ticketed=ticketed
        )
        if not sync:
            self._record_write(core_id, addr)
        return access

    def _record_write(self, core_id: int, addr: int) -> None:
        sig = self._core_sigs[core_id]
        if sig is None:
            return
        sig.add(addr)
        if len(sig) > SIGNATURE_CAPACITY:
            self._core_sigs[core_id] = None
            self.counters.bump("signature_overflows")

    # -- release: append to the variable's log -----------------------------------

    def on_release(self, core_id: int, addr: int) -> None:
        super().on_release(core_id, addr)
        self.counters.bump("signature_releases")
        core_sig = self._core_sigs[core_id]
        if core_sig is not None and not core_sig:
            # Nothing written since the previous release: part of the same
            # logical release wave; re-attach the previous signature.
            core_sig = self._last_released[core_id]
        self._epoch += 1
        log = self._var_log.setdefault(addr, deque())
        if core_sig is None:
            # Overflowed signature: future acquirers must flush.
            log.clear()
            self._var_pruned[addr] = self._epoch
        else:
            log.append((self._epoch, frozenset(core_sig)))
            self._prune(addr, log)
        self._last_released[core_id] = core_sig
        self._core_sigs[core_id] = set()

    def _prune(self, addr: int, log: deque) -> None:
        """Bound the log's total word count; dropped history costs the
        stragglers a flush, not correctness."""
        total = sum(len(words) for _, words in log)
        while total > SIGNATURE_CAPACITY and log:
            epoch, words = log.popleft()
            total -= len(words)
            self._var_pruned[addr] = epoch
            self.counters.bump("signature_log_prunes")

    # -- acquire: deliver the delta ---------------------------------------------------

    def on_acquire(self, core_id: int, addr: int) -> None:
        if addr not in self._var_log and addr not in self._var_pruned:
            return  # nothing ever released through this variable
        self.counters.bump("signature_acquires")
        bank = self.amap.home_bank_of_addr(addr)
        self.record_data(MessageClass.SYNCH, bank, core_id, SIGNATURE_PAYLOAD_BYTES)

        last_seen = self._acq_epoch.get((core_id, addr), 0)
        self._acq_epoch[(core_id, addr)] = self._epoch
        l1 = self.l1s[core_id]

        if last_seen < self._var_pruned.get(addr, 0):
            # History this core needed was discarded: flush everything.
            dropped = l1.self_invalidate_all()
            self.counters.bump("signature_flushes")
            self.counters.bump("self_invalidated_words", dropped)
            self._core_sigs[core_id] = None  # must propagate conservatism
            return

        delta: set[int] = set()
        for epoch, words in self._var_log.get(addr, ()):
            if epoch > last_seen:
                delta.update(words)
        dropped = 0
        for word in delta:
            if l1.state_of(word, touch=False) is DeNovoState.VALID:
                l1.invalidate_word(word)
                dropped += 1
        self.counters.bump("self_invalidated_words", dropped)
        # Happens-before transitivity: what I acquired, my next release
        # must propagate.
        core_sig = self._core_sigs[core_id]
        if core_sig is not None:
            core_sig.update(delta)
            if len(core_sig) > SIGNATURE_CAPACITY:
                self._core_sigs[core_id] = None
                self.counters.bump("signature_overflows")

    # -- static regions are obsolete here ------------------------------------------------

    def self_invalidate(
        self, core_id: int, regions: list[Region], flush_all: bool = False
    ) -> int:
        """Region-based self-invalidation instructions retire as no-ops:
        the signatures carry strictly more precise information.  The
        explicit flush-all fallback still works."""
        if flush_all:
            return super().self_invalidate(core_id, regions, flush_all=True)
        return self.config.tuning.self_invalidate_latency
