"""Shared DeNovo machinery: word-granularity registration protocol.

DeNovo keeps exactly three states per *word* — Invalid, Valid, Registered —
and replaces the sharer-list directory with a *registry*: the LLC data bank
holds either the word's value or a pointer to the core that registered it.
There are no writer-initiated invalidations and no sharer lists; writes
(and, in DeNovoSync0/DeNovoSync, synchronization reads) serialize through
point-to-point registration transfers.  The registry is non-blocking:
unlike the MESI directory there is never a queuing delay at the LLC.

This module implements the *data* access behaviour from the original
DeNovo (PACT'11), which both synchronization protocols inherit:

* data read hit on Valid or Registered; misses fill every word of the line
  available at the LLC (only valid words travel, a big traffic saving);
* data writes register immediately and are non-blocking;
* software self-invalidation instructions drop the Valid words of the
  named regions at acquires, leaving Registered words in place.

Subclasses add the synchronization-access policy (registration of sync
reads; hardware backoff).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.mem.l1 import DeNovoL1, DeNovoState
from repro.mem.regions import Region
from repro.noc.messages import MessageClass, data_flits
from repro.protocols.base import Access, CoherenceProtocol, _CONTROL_FLITS
from repro.protocols.invariants import denovo_violations

#: Cycles for the local flash self-invalidation instruction.
SELF_INVALIDATE_LATENCY = 1


class DeNovoBaseProtocol(CoherenceProtocol):
    """Data-access behaviour common to DeNovoSync0 and DeNovoSync."""

    name = "DeNovoBase"

    def __init__(self, config, allocator=None):
        super().__init__(config, allocator)
        self.l1s = [
            DeNovoL1(core, config, self.amap, self._make_evict_handler(core))
            for core in range(config.num_cores)
        ]
        if allocator is not None:
            # The second argument hands the L1s a live view of the
            # allocator's addr -> Region dict so per-word valid tracking
            # skips the two-call lookup chain.
            for l1 in self.l1s:
                l1.set_region_lookup(
                    self.region_id_of, allocator._region_of_addr
                )
        # word address -> core id currently registered (absent: value at LLC)
        self.registry: dict[int, int] = {}
        # word address -> [(core_id, callback)] spin-waiters asleep on their
        # Registered copy, woken when a remote request steals it.
        self._word_waiters: dict[int, list[tuple[int, Callable[[int], None]]]] = {}
        # word address -> cycle at which the last pending registration
        # transfer completes.  The registry itself never blocks, but
        # concurrent registrations to one word chain through the L1 MSHRs
        # (the paper's "queue distributed among the L1 caches"), so each
        # transfer starts only when its predecessor finishes.
        self._reg_chain: dict[int, int] = {}
        # per-core line -> last data-store registration time, for the
        # store-buffer write-combining model (see _store_aggregates).
        self._store_burst: list[dict[int, int]] = [
            {} for _ in range(config.num_cores)
        ]
        # Hot-path constants and inlined address math (power-of-two
        # geometries; ``None`` falls back to the AddressMap methods).
        self._chain_link = config.tuning.chain_link_cost
        self._agg_window = config.tuning.store_aggregation_window
        self._l1_hit = config.l1_hit_latency
        self._word_bytes = config.word_bytes
        self._line_shift = self.amap.line_shift
        self._bank_mask = self.amap.bank_mask
        self._pow2 = self._line_shift is not None and self._bank_mask is not None
        self._word_flits = data_flits(config.word_bytes)
        self._remote_by_leg = self.mesh._remote_by_leg
        # The subclass hooks default to no-ops (DeNovoSync0); binding
        # None in that case lets the hot paths skip the empty call.
        cls = type(self)
        base = DeNovoBaseProtocol
        self._steal_hook = (
            None
            if cls.on_registration_stolen is base.on_registration_stolen
            else self.on_registration_stolen
        )
        self._sync_hit_hook = (
            None if cls.on_sync_hit is base.on_sync_hit else self.on_sync_hit
        )
        self._release_hook = (
            None if cls.on_release is base.on_release else self.on_release
        )

    def _make_evict_handler(self, core_id: int):
        def on_evict_registered(addr: int, value: int) -> None:
            # A replaced Registered word returns its registration (and value)
            # to the LLC: a word-granularity writeback.
            if self.registry.get(addr) == core_id:
                del self.registry[addr]
            bank = self.amap.home_bank_of_addr(addr)
            self.record_data(
                MessageClass.WRITEBACK, core_id, bank, self.config.word_bytes
            )
            self.counters.bump("writebacks")

        return on_evict_registered

    # -- hooks the DeNovoSync subclass overrides ---------------------------

    def on_registration_stolen(
        self, victim: int, addr: int, by_sync_read: bool
    ) -> None:
        """Called when ``victim`` loses a registration to a remote request."""

    def on_sync_hit(self, core_id: int, addr: int) -> None:
        """Called on a sync read/RMW hit to Registered state."""

    def on_release(self, core_id: int, addr: int) -> None:
        """Called when a release (to sync variable ``addr``) completes."""

    # -- data loads ----------------------------------------------------------

    def load(
        self,
        core_id: int,
        addr: int,
        sync: bool = False,
        ticketed: bool = False,
        acquire: bool = False,
    ) -> Access:
        if sync:
            access = self.sync_load(core_id, addr)
            if acquire:
                self.on_acquire(core_id, addr)
            return access
        l1 = self.l1s[core_id]
        value = l1.present_value(addr)
        if value is not None:
            self._counts["l1_hits"] += 1
            return Access(value, self._l1_hit, hit=True)

        self._counts["l1_misses"] += 1
        if self._pow2:
            line = addr >> self._line_shift
            bank = line & self._bank_mask
        else:
            line = self.amap.line_of(addr)
            bank = self.amap.home_bank(line)
        owner = self.registry.get(addr)
        self.record_control(MessageClass.LOAD, core_id, bank)

        if owner is not None and owner != core_id:
            # The word is registered at a remote L1: three-hop fetch.  The
            # owner stays Registered (reads do not revoke) and its response
            # carries every word of the line it has registered — DeNovo
            # transfers lines but only their valid words.
            latency = self.mesh.remote_l1_latency(core_id, bank, owner)
            self.record_control(MessageClass.LOAD, bank, owner)
            filled = self._fill_line_valid_words(
                core_id, line, from_owner=owner
            )
            self.record_data(
                MessageClass.LOAD, owner, core_id, self._word_bytes * filled
            )
            value = self._mem_get(addr, 0)
            return Access(value, latency, hit=False)

        latency, cold = self.llc_fetch_latency(core_id, line)
        if cold:
            self.record_memory_fill(MessageClass.LOAD, line)
        filled = self._fill_line_valid_words(core_id, line, from_owner=None)
        self.record_data(
            MessageClass.LOAD, bank, core_id, self._word_bytes * filled
        )
        value = self._mem_get(addr, 0)
        return Access(value, latency, hit=False)

    def _fill_line_valid_words(
        self, core_id: int, line: int, from_owner: int | None
    ) -> int:
        """Fill the words of ``line`` the responder can supply; return count.

        With ``from_owner`` None the responder is the LLC, which has every
        word not registered at a remote core.  Otherwise the responder is
        the L1 that has the requested word registered, which supplies every
        word of the line *it* has registered.  Words already present
        locally are left alone (only Invalid words fill, as Valid).
        """
        l1 = self.l1s[core_id]
        filled = 0
        for word_addr in self.amap.words_of_line(line):
            registrant = self.registry.get(word_addr)
            if from_owner is None:
                available = registrant is None or registrant == core_id
            else:
                available = registrant == from_owner
            if not available:
                continue
            if l1.state_of(word_addr, touch=False) is not DeNovoState.INVALID:
                continue
            l1.fill_word(word_addr, self._mem_get(word_addr, 0), DeNovoState.VALID)
            filled += 1
        return filled

    # -- data stores --------------------------------------------------------

    def store(
        self,
        core_id: int,
        addr: int,
        value: int,
        sync: bool = False,
        release: bool = False,
        ticketed: bool = False,
    ) -> Access:
        if sync:
            return self.sync_store(core_id, addr, value, release=release)
        l1 = self.l1s[core_id]
        old = self._mem_get(addr, 0)
        if l1.state_of(addr) is DeNovoState.REGISTERED:
            self._counts["l1_hits"] += 1
            l1.write_word(addr, value)
            self._mem_values[addr] = value
            return Access(old, self._l1_hit, hit=True)

        # Immediate transition to Registered, registration request in the
        # background: data writes never block the core.
        self._counts["l1_misses"] += 1
        if self._store_aggregates(core_id, addr):
            # Write-combining: the registration piggybacks on the line's
            # in-flight registration message (a wider word mask), so it
            # adds no traffic.  Only possible when no remote owner must be
            # downgraded.
            self.registry[addr] = core_id
            self._counts["aggregated_store_registrations"] += 1
        else:
            self._register(core_id, addr, MessageClass.STORE, invalidate_prev=True)
        l1.fill_word(addr, value, DeNovoState.REGISTERED)
        self._mem_values[addr] = value
        return Access(old, self._l1_hit, hit=False)

    @property
    def STORE_AGGREGATION_WINDOW(self) -> int:
        """Cycles within which data stores to one line combine into a single
        registration message (the L1 store buffer's per-line word mask)."""
        return self.config.tuning.store_aggregation_window

    def _store_aggregates(self, core_id: int, addr: int) -> bool:
        """True when this data-store registration can ride along a recent
        registration message for the same line (no remote owner involved).

        DeNovo aggregates stores per line in the store buffer, issuing one
        registration with a word mask instead of one message per word —
        without it a streaming writer would pay 16x MESI's message count.
        Word granularity is preserved: a word owned by another core always
        takes the full point-to-point transfer path.
        """
        owner = self.registry.get(addr)
        if owner is not None and owner != core_id:
            return False
        shift = self._line_shift
        line = addr >> shift if shift is not None else self.amap.line_of(addr)
        window = self._store_burst[core_id]
        last = window.get(line)
        window[line] = self.now
        if len(window) > 64:  # keep the tracking structure small
            cutoff = self.now - self._agg_window
            for stale in [ln for ln, t in window.items() if t < cutoff]:
                del window[stale]
        return last is not None and self.now - last <= self._agg_window

    def _register(
        self,
        core_id: int,
        addr: int,
        klass: MessageClass,
        invalidate_prev: bool,
        carry_data_back: bool = False,
    ) -> tuple[int, bool]:
        """Move ``addr``'s registration to ``core_id``.

        Returns (latency, cold).  ``invalidate_prev`` selects the previous
        registrant's downgrade target: Invalid for writes, Valid for sync
        reads (the Valid copy is unusable but arms the backoff trigger).
        ``carry_data_back`` adds a word of payload on the response (sync
        reads need the value; writes overwrite it anyway).
        """
        if self._pow2:
            line = addr >> self._line_shift
            bank = line & self._bank_mask
        else:
            line = self.amap.line_of(addr)
            bank = self.amap.home_bank(line)
        prev = self.registry.get(addr)
        # Traffic recording is inlined with locals bound once: a
        # registration sends two or three messages and this is the
        # hottest path in the DeNovo family.
        idx = klass.idx
        tflits = self._tflits
        tmsgs = self._tmsgs
        hf = self._hops_flat
        n = self._ntiles
        tflits[idx] += _CONTROL_FLITS * hf[core_id * n + bank]
        tmsgs[idx] += 1
        self._counts["registration_transfers"] += 1

        # Concurrent registrations of one word chain through the L1 MSHRs
        # (the paper's "queue distributed among the L1 caches").  The chain
        # is pipelined: a queued request is serviced the moment its
        # predecessor's ack lands, so each link costs only the predecessor-
        # to-requester forward, while an unqueued request pays the normal
        # transfer latency.
        chain_end = self._reg_chain.get(addr, 0)

        link = self._chain_link  # == _chain_link_cost(<any leg>)
        if prev is not None and prev != core_id:
            a = hf[core_id * n + bank]
            b = hf[bank * n + prev]
            transfer = self._remote_by_leg[a if a > b else b]
            tflits[idx] += _CONTROL_FLITS * b
            tmsgs[idx] += 1
            if carry_data_back:
                tflits[idx] += self._word_flits * hf[prev * n + core_id]
            else:
                tflits[idx] += _CONTROL_FLITS * hf[prev * n + core_id]
            tmsgs[idx] += 1
            target = DeNovoState.INVALID if invalidate_prev else DeNovoState.VALID
            self.l1s[prev].downgrade(addr, target)
            hook = self._steal_hook
            if hook is not None:
                hook(prev, addr, not invalidate_prev)
            cold = False
        else:
            transfer, cold = self.llc_fetch_latency(core_id, line)
            if cold:
                self.record_memory_fill(klass, line)
            if carry_data_back:
                tflits[idx] += self._word_flits * hf[bank * n + core_id]
            else:
                tflits[idx] += _CONTROL_FLITS * hf[bank * n + core_id]
            tmsgs[idx] += 1

        arrival = self.now + transfer
        completion = chain_end + link
        if completion > arrival:
            self._counts["registration_chain_waits"] += 1
        else:
            completion = arrival
        latency = completion - self.now
        if prev is not None and prev != core_id:
            self._notify_word_waiters(addr, prev, completion)
        self.registry[addr] = core_id
        self._reg_chain[addr] = completion
        return latency, cold

    def _chain_link_cost(self, src: int, dst: int) -> int:
        """Serialization cost of one link in a pipelined registration chain:
        the MSHR processing at each hand-off.  The network legs of
        consecutive forwards overlap (the LLC dispatches them as they
        arrive), so only the L1's servicing of its stored request
        serializes."""
        return self.config.tuning.chain_link_cost

    # -- synchronization accesses: defined by subclasses ----------------------

    def sync_load(self, core_id: int, addr: int) -> Access:
        raise NotImplementedError

    def sync_store(
        self, core_id: int, addr: int, value: int, release: bool = False
    ) -> Access:
        raise NotImplementedError

    def rmw(
        self,
        core_id: int,
        addr: int,
        fn: Callable[[int], int | None],
        release: bool = False,
        ticketed: bool = False,
        acquire: bool = False,
    ) -> Access:
        raise NotImplementedError

    # -- spin-wait subscriptions ---------------------------------------------------

    def subscribe_line_change(
        self, core_id: int, addr: int, callback: Callable[[int], None]
    ) -> bool:
        """Sleep on a Registered word; woken when the registration is stolen.

        A Registered spinner hits locally every cycle until a remote write
        or sync read takes the registration away, so the steal is the only
        event that can change what it observes.  Any other state means each
        re-read is a real miss and the caller must poll.
        """
        if self.l1s[core_id].state_of(addr, touch=False) is not DeNovoState.REGISTERED:
            return False
        self._word_waiters.setdefault(addr, []).append((core_id, callback))
        return True

    def _notify_word_waiters(self, addr: int, core_id: int, wake_time: int) -> None:
        waiters = self._word_waiters.get(addr)
        if not waiters:
            return
        remaining = []
        for waiter_core, callback in waiters:
            if waiter_core == core_id:
                callback(wake_time)
            else:
                remaining.append((waiter_core, callback))
        if remaining:
            self._word_waiters[addr] = remaining
        else:
            del self._word_waiters[addr]

    # -- self-invalidation -------------------------------------------------------

    def self_invalidate(
        self, core_id: int, regions: list[Region], flush_all: bool = False
    ) -> int:
        """Flash-invalidate the Valid words of ``regions`` in this core's L1.

        ``flush_all`` drops every Valid word regardless of region — the
        always-correct fallback when the program supplies no region
        information (paper section 3).  Registered words stay either way.
        """
        l1 = self.l1s[core_id]
        if flush_all:
            dropped = l1.self_invalidate_all()
        else:
            dropped = 0
            for region in regions:
                dropped += l1.self_invalidate_region(region.region_id)
        self.counters.bump("self_invalidated_words", dropped)
        return self.config.tuning.self_invalidate_latency

    # -- runtime invariants & diagnostics -------------------------------------

    def invariant_violations(self) -> list[str]:
        return denovo_violations(self)

    def force_evict(self, core_id: int, line: int) -> bool:
        """Evict the whole frame of ``line`` from ``core_id``'s L1 as
        replacement would: Registered words write their registration back
        to the LLC, and any spin-waiter asleep on one of them is woken
        (its local copy is gone, so only a re-probe can observe change)."""
        frame = self.l1s[core_id].evict_line(line)
        if frame is None:
            return False
        for off in frame.registered_offsets():
            addr = self.amap.line_base(line) + off
            self._notify_word_waiters(addr, core_id, self.now)
        return True

    def debug_resident_lines(self, core_id: int) -> list[int]:
        return self.l1s[core_id].resident_lines()

    def debug_addr_state(self, addr: int) -> str:
        owner = self.registry.get(addr)
        copies = {
            core_id: l1.state_of(addr, touch=False).value
            for core_id, l1 in enumerate(self.l1s)
            if l1.state_of(addr, touch=False) is not DeNovoState.INVALID
        }
        waiters = sorted(core for core, _ in self._word_waiters.get(addr, []))
        chain = self._reg_chain.get(addr, 0)
        return (
            f"word {addr}: registry owner={owner} L1 states={copies or '{}'} "
            f"reg-chain end={chain} subscribed waiters={waiters}"
        )

    def debug_transients(self) -> list[str]:
        out = []
        for addr, end in sorted(self._reg_chain.items()):
            if end > self.now:
                out.append(
                    f"word {addr}: registration chain busy until cycle "
                    f"{end} (owner={self.registry.get(addr)})"
                )
        for addr, waiters in sorted(self._word_waiters.items()):
            cores = sorted(core for core, _ in waiters)
            out.append(
                f"word {addr}: cores {cores} sleeping on registration steal"
            )
        return out
