"""TLC-lite: small-scope exhaustive exploration of a formal model.

BFS over the cross product of per-address model states for a bounded
scope (2–3 cores × 1–2 addresses × a bounded write counter), with
canonical state hashing under core- and address-permutation symmetry
(every core runs the same nondeterministic program, and addresses are
independent, so permuted states are behaviorally identical).

Value tracking is symbolic-lite: memory holds a per-address write
counter and every core holds the counter value it last observed, which
is exactly enough to check the ``value-coherence`` invariant (a core in
a clean-readable state must hold the *current* counter).  The other
invariant kinds (``at-most-one-in``, ``exclusive-against``) are pure
state predicates.

A violation stops the search and is reported as a sanitize-shaped
:class:`~repro.sanitize.findings.Finding` carrying the event trace from
the initial state; model states that the scoped search never occupies
are reported as ``dead-state`` findings (rule-graph reachability is
necessary but not sufficient — guards can starve a state).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import permutations

from repro.formal.model import (
    INV_AT_MOST_ONE_IN,
    INV_EXCLUSIVE_AGAINST,
    INV_VALUE_COHERENCE,
    FormalModel,
    Invariant,
    Rule,
)
from repro.sanitize.findings import (
    KIND_DEAD_STATE,
    KIND_MODEL_INVARIANT,
    SEVERITY_ERROR,
    Finding,
)

#: ``vals`` entry for a core whose copy carries no meaningful value.
NO_VALUE = -1

#: One coherence unit: (per-core states, memory counter, per-core values).
Unit = tuple[tuple[str, ...], int, tuple[int, ...]]
#: One explored state: a Unit per address.
State = tuple[Unit, ...]


@dataclass(frozen=True)
class ExploreScope:
    """Scope bounds of one exploration (the TLC "model" constants)."""

    cores: int = 3
    addrs: int = 2
    max_writes: int = 2


@dataclass
class ExplorationResult:
    """Outcome and statistics of one small-scope exploration."""

    model: str
    scope: ExploreScope
    states: int = 0
    transitions: int = 0
    max_depth: int = 0
    findings: list[Finding] = field(default_factory=list)
    occupied: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings

    def stats(self) -> dict[str, object]:
        """JSON-ready statistics (deterministic)."""
        return {
            "cores": self.scope.cores,
            "addrs": self.scope.addrs,
            "max_writes": self.scope.max_writes,
            "states": self.states,
            "transitions": self.transitions,
            "max_depth": self.max_depth,
            "occupied_states": list(self.occupied),
            "violations": len(self.findings),
        }


def _initial_state(model: FormalModel, scope: ExploreScope) -> State:
    unit: Unit = (
        (model.initial,) * scope.cores, 0, (NO_VALUE,) * scope.cores,
    )
    return (unit,) * scope.addrs


def _apply(
    unit: Unit, core: int, rule: Rule, initial: str
) -> Unit:
    """The unit after ``core`` fires ``rule`` (guard already checked)."""
    states, mem, vals = unit
    new_states = list(states)
    new_vals = list(vals)
    new_states[core] = rule.post
    if rule.writes_value:
        mem += 1
        new_vals[core] = mem
    elif rule.reads_memory:
        new_vals[core] = mem
    elif rule.post == initial:
        new_vals[core] = NO_VALUE
    for other in range(len(states)):
        if other == core:
            continue
        for effect in rule.others:
            if states[other] == effect.when:
                new_states[other] = effect.to
                if effect.to == initial:
                    new_vals[other] = NO_VALUE
                break
    return (tuple(new_states), mem, tuple(new_vals))


def _successors(
    state: State, model: FormalModel, scope: ExploreScope
) -> list[tuple[str, State]]:
    """Deterministically ordered (label, successor) pairs."""
    out: list[tuple[str, State]] = []
    for addr in range(scope.addrs):
        states, mem, _vals = state[addr]
        for core in range(scope.cores):
            pre = states[core]
            other_states = tuple(
                states[o] for o in range(scope.cores) if o != core
            )
            for rule in model.rules:
                if rule.pre != pre:
                    continue
                if rule.writes_value and mem >= scope.max_writes:
                    continue
                if not rule.guard.holds(other_states):
                    continue
                unit = _apply(state[addr], core, rule, model.initial)
                successor = state[:addr] + (unit,) + state[addr + 1:]
                if successor == state:
                    continue  # identity transitions add no behavior
                label = f"core{core}/addr{addr}: {rule.label()}"
                out.append((label, successor))
    return out


def _canonical(state: State, scope: ExploreScope) -> State:
    """The least permutation-equivalent form of ``state`` (cores are
    symmetric across all addresses at once; addresses are symmetric)."""
    best: State | None = None
    for perm in permutations(range(scope.cores)):
        permuted = tuple(
            (
                tuple(states[i] for i in perm),
                mem,
                tuple(vals[i] for i in perm),
            )
            for states, mem, vals in state
        )
        for aperm in permutations(range(scope.addrs)):
            candidate = tuple(permuted[i] for i in aperm)
            if best is None or candidate < best:
                best = candidate
    assert best is not None
    return best


def _check_invariant(inv: Invariant, unit: Unit) -> str | None:
    """An error message when ``inv`` fails on ``unit``, else None."""
    states, mem, vals = unit
    if inv.kind == INV_AT_MOST_ONE_IN:
        holders = [c for c, s in enumerate(states) if s in inv.states]
        if len(holders) > 1:
            return (
                f"cores {holders} are all in "
                f"{'/'.join(inv.states)} (at most one allowed)"
            )
        return None
    if inv.kind == INV_EXCLUSIVE_AGAINST:
        for core, state in enumerate(states):
            if state not in inv.states:
                continue
            clash = [
                o for o, s in enumerate(states)
                if o != core and s in inv.other_states
            ]
            if clash:
                return (
                    f"core {core} is in {state} but cores {clash} still "
                    f"hold copies in {'/'.join(inv.other_states)}"
                )
        return None
    if inv.kind == INV_VALUE_COHERENCE:
        for core, state in enumerate(states):
            if state in inv.states and vals[core] != mem:
                return (
                    f"core {core} is clean-readable in {state} but holds "
                    f"value #{vals[core]} while memory is at #{mem}"
                )
        return None
    raise AssertionError(f"unknown invariant kind {inv.kind!r}")


def _render(state: State) -> str:
    parts = []
    for addr, (states, mem, vals) in enumerate(state):
        copies = ",".join(
            f"c{c}={s}" + ("" if vals[c] == NO_VALUE else f"#{vals[c]}")
            for c, s in enumerate(states)
        )
        parts.append(f"addr{addr}[{copies} mem#{mem}]")
    return " ".join(parts)


def _trace_to(
    canon: State, parents: dict[State, tuple[State, str] | None]
) -> list[str]:
    labels: list[str] = []
    cursor: State | None = canon
    while cursor is not None:
        parent = parents[cursor]
        if parent is None:
            break
        cursor, label = parent
        labels.append(label)
    labels.reverse()
    return labels


def explore_model(
    model: FormalModel, scope: ExploreScope | None = None
) -> ExplorationResult:
    """Exhaustively explore ``model`` within ``scope``.

    Stops at the first invariant violation (its finding carries the
    event trace from the initial state); a clean search additionally
    reports model states the scoped search never occupied.
    """
    scope = scope or ExploreScope()
    result = ExplorationResult(model=model.name, scope=scope)
    initial = _initial_state(model, scope)
    root = _canonical(initial, scope)
    parents: dict[State, tuple[State, str] | None] = {root: None}
    depths: dict[State, int] = {root: 0}
    occupied: set[str] = {model.initial}
    queue: deque[State] = deque([root])

    while queue:
        state = queue.popleft()
        depth = depths[state]
        result.states += 1
        result.max_depth = max(result.max_depth, depth)
        for _states, _mem, _vals in state:
            occupied.update(_states)
        for inv in model.invariants:
            for addr in range(scope.addrs):
                message = _check_invariant(inv, state[addr])
                if message is None:
                    continue
                result.findings.append(
                    Finding(
                        kind=KIND_MODEL_INVARIANT,
                        severity=SEVERITY_ERROR,
                        message=(
                            f"{model.name}: invariant {inv.name!r} fails at "
                            f"addr{addr}: {message}"
                        ),
                        site=f"formal/{model.name}",
                        details={
                            "model": model.name,
                            "invariant": inv.name,
                            "state": _render(state),
                            "trace": _trace_to(state, parents),
                            "depth": depth,
                        },
                    )
                )
                result.occupied = tuple(sorted(occupied))
                return result
        for label, successor in _successors(state, model, scope):
            result.transitions += 1
            canon = _canonical(successor, scope)
            if canon in parents:
                continue
            parents[canon] = (state, label)
            depths[canon] = depth + 1
            queue.append(canon)

    result.occupied = tuple(sorted(occupied))
    for state_name in model.states:
        if state_name not in occupied:
            result.findings.append(
                Finding(
                    kind=KIND_DEAD_STATE,
                    severity=SEVERITY_ERROR,
                    message=(
                        f"{model.name}: state {state_name!r} is never "
                        f"occupied within scope {scope.cores} cores x "
                        f"{scope.addrs} addrs (guards starve it)"
                    ),
                    site=f"formal/{model.name}",
                    details={"model": model.name, "state": state_name},
                )
            )
    return result
