"""Guarded-action IR for per-word/per-line coherence state machines.

A :class:`FormalModel` describes one protocol as a set of *rules* over
the per-core stable state of a single coherence unit (a cache line for
MESI, a word for the DeNovo family).  Each rule is a guarded action in
the GAL style (arXiv 1803.10323):

* ``event`` — the abstract operation class (``Load``, ``Store``,
  ``SyncRead``, ``SyncWrite``, ``Rmw``, ``Evict``, ``SelfInv``);
* ``pre``/``post`` — the acting core's state before/after;
* ``guard`` — a predicate over the *other* cores' states for the unit
  (``no_other_in`` / ``some_other_in`` a state set);
* ``others`` — the effect on every other core currently in a given
  state (MESI's writer-initiated invalidations, DeNovo's registration
  steals);
* ``writes_value`` / ``reads_memory`` — the data effect, used by the
  explorer's value tracking and the TLA+ export.

Transient states are deliberately absent: the simulator's protocols are
atomic at quiescent points (the mc subsystem only schedules between
visible operations), so the stable-state machine is the right
abstraction level to cross-check them at.

The models are pure data — no lambdas — so the same tables drive the
Python explorer (:mod:`repro.formal.explore`), the static conformance
analyzer (:mod:`repro.formal.conformance`), the divergence oracle
(:mod:`repro.formal.oracle`) and the TLA+ exporter
(:mod:`repro.formal.tla`).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

GUARD_ALWAYS = "always"
GUARD_NO_OTHER_IN = "no_other_in"
GUARD_SOME_OTHER_IN = "some_other_in"

_GUARD_KINDS = (GUARD_ALWAYS, GUARD_NO_OTHER_IN, GUARD_SOME_OTHER_IN)

#: The abstract event vocabulary every model uses.
EVENTS = ("Load", "Store", "SyncRead", "SyncWrite", "Rmw", "Evict", "SelfInv")

INV_AT_MOST_ONE_IN = "at-most-one-in"
INV_EXCLUSIVE_AGAINST = "exclusive-against"
INV_VALUE_COHERENCE = "value-coherence"

_INVARIANT_KINDS = (
    INV_AT_MOST_ONE_IN,
    INV_EXCLUSIVE_AGAINST,
    INV_VALUE_COHERENCE,
)

GRANULARITY_LINE = "line"
GRANULARITY_WORD = "word"


@dataclass(frozen=True)
class Guard:
    """A predicate over the other cores' states for the same unit."""

    kind: str = GUARD_ALWAYS
    states: tuple[str, ...] = ()

    def holds(self, other_states: Iterable[str]) -> bool:
        if self.kind == GUARD_ALWAYS:
            return True
        hit = any(state in self.states for state in other_states)
        if self.kind == GUARD_SOME_OTHER_IN:
            return hit
        return not hit


ALWAYS = Guard()


@dataclass(frozen=True)
class OtherEffect:
    """Applied to every *other* core in state ``when``: it moves to ``to``."""

    when: str
    to: str


@dataclass(frozen=True)
class Rule:
    """One guarded action of the state machine."""

    event: str
    pre: str
    post: str
    guard: Guard = ALWAYS
    others: tuple[OtherEffect, ...] = ()
    writes_value: bool = False
    reads_memory: bool = False
    desc: str = ""

    def label(self) -> str:
        return f"{self.event} {self.pre}->{self.post}"


@dataclass(frozen=True)
class Invariant:
    """One safety property checked over every reachable state.

    ``at-most-one-in``: at most one core may be in ``states``.
    ``exclusive-against``: a core in ``states`` excludes every other
    core from ``other_states``.
    ``value-coherence``: a core in ``states`` holds the current memory
    value (its copy is *clean-readable*).
    """

    name: str
    kind: str
    states: tuple[str, ...]
    other_states: tuple[str, ...] = ()
    desc: str = ""


@dataclass(frozen=True)
class FormalModel:
    """A complete guarded-action model of one protocol.

    ``state_names`` maps implementation enum members to model states
    (``"MODIFIED" -> "M"``); the initial state need not appear (MESI's
    Invalid is the *absence* of an L1 entry).  ``event_handlers`` names
    the implementation entry points per event, ``test_aliases`` maps
    implementation query calls to the states they imply
    (``registered_value`` tests Registered), and ``mutator_aliases``
    maps state-writing calls with no explicit state argument to the
    state they write (``invalidate`` writes Invalid) — all consumed by
    the static conformance analyzer.
    """

    name: str
    protocol: str
    enum_class: str
    states: tuple[str, ...]
    initial: str
    state_names: Mapping[str, str]
    rules: tuple[Rule, ...]
    invariants: tuple[Invariant, ...]
    granularity: str
    event_handlers: Mapping[str, tuple[str, ...]]
    test_aliases: Mapping[str, tuple[str, ...]] = field(default_factory=dict)
    mutator_aliases: Mapping[str, str] = field(default_factory=dict)
    events: tuple[str, ...] = EVENTS

    def __post_init__(self) -> None:
        if self.initial not in self.states:
            raise ValueError(f"{self.name}: initial {self.initial!r} not a state")
        if self.granularity not in (GRANULARITY_LINE, GRANULARITY_WORD):
            raise ValueError(f"{self.name}: bad granularity {self.granularity!r}")
        for rule in self.rules:
            if rule.event not in self.events:
                raise ValueError(f"{self.name}: unknown event in {rule}")
            if rule.pre not in self.states or rule.post not in self.states:
                raise ValueError(f"{self.name}: unknown state in {rule}")
            if rule.guard.kind not in _GUARD_KINDS:
                raise ValueError(f"{self.name}: unknown guard in {rule}")
            for state in rule.guard.states:
                if state not in self.states:
                    raise ValueError(f"{self.name}: unknown guard state in {rule}")
            for effect in rule.others:
                if effect.when not in self.states or effect.to not in self.states:
                    raise ValueError(f"{self.name}: unknown state in {rule}")
        for inv in self.invariants:
            if inv.kind not in _INVARIANT_KINDS:
                raise ValueError(f"{self.name}: unknown invariant kind {inv.kind!r}")
            for state in inv.states + inv.other_states:
                if state not in self.states:
                    raise ValueError(f"{self.name}: unknown state in invariant {inv.name}")
        for member, state in self.state_names.items():
            if state not in self.states:
                raise ValueError(f"{self.name}: {member} maps to unknown state")

    # -- rule queries (shared by every checker) ---------------------------

    def rules_for(self, event: str) -> tuple[Rule, ...]:
        return tuple(rule for rule in self.rules if rule.event == event)

    def expected_writes(self, event: str) -> frozenset[str]:
        """States the implementation *must* be able to write for ``event``:
        every non-identity actor transition target plus every non-identity
        other-core effect target."""
        out: set[str] = set()
        for rule in self.rules_for(event):
            if rule.post != rule.pre:
                out.add(rule.post)
            for effect in rule.others:
                if effect.to != effect.when:
                    out.add(effect.to)
        return frozenset(out)

    def allowed_writes(self, event: str) -> frozenset[str]:
        """States the implementation *may* write for ``event``: every rule
        post state (identities included — refreshing a state the model
        keeps is not a divergence) and every other-core effect target."""
        out: set[str] = set()
        for rule in self.rules_for(event):
            out.add(rule.post)
            for effect in rule.others:
                out.add(effect.to)
        return frozenset(out)

    def rule_reachable_states(self) -> frozenset[str]:
        """States reachable from ``initial`` in the rule graph (actor
        transitions and other-core effects as edges)."""
        edges: dict[str, set[str]] = {state: set() for state in self.states}
        for rule in self.rules:
            edges[rule.pre].add(rule.post)
            for effect in rule.others:
                edges[effect.when].add(effect.to)
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for nxt in edges[state]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    def match_rule(
        self, event: str, pre: str, other_states: Iterable[str]
    ) -> Rule | None:
        """The rule ``event`` fires from ``pre`` given the other cores'
        states, or None when the model forbids the transition."""
        others = tuple(other_states)
        for rule in self.rules_for(event):
            if rule.pre == pre and rule.guard.holds(others):
                return rule
        return None


def replace_rules(model: FormalModel, rules: tuple[Rule, ...]) -> FormalModel:
    """A copy of ``model`` with a different rule table (mutation testing)."""
    return dataclasses.replace(model, rules=rules)


# -- MESI ---------------------------------------------------------------------


def _mesi_read_rules(event: str) -> tuple[Rule, ...]:
    copies = ("S", "E", "M")
    return (
        Rule(event, "I", "E", guard=Guard(GUARD_NO_OTHER_IN, copies),
             reads_memory=True, desc="exclusive-clean grant from the LLC"),
        Rule(event, "I", "S", guard=Guard(GUARD_SOME_OTHER_IN, copies),
             others=(OtherEffect("E", "S"), OtherEffect("M", "S")),
             reads_memory=True,
             desc="shared fill; an exclusive owner downgrades (dirty "
                  "data written back)"),
        Rule(event, "S", "S", desc="read hit"),
        Rule(event, "E", "E", desc="read hit"),
        Rule(event, "M", "M", desc="read hit"),
    )


def _mesi_write_rules(event: str) -> tuple[Rule, ...]:
    invalidate = (
        OtherEffect("S", "I"), OtherEffect("E", "I"), OtherEffect("M", "I"),
    )
    reads = event == "Rmw"
    return (
        Rule(event, "I", "M", others=invalidate, writes_value=True,
             reads_memory=reads,
             desc="write miss; writer-initiated invalidation of every copy"),
        Rule(event, "S", "M", others=invalidate, writes_value=True,
             reads_memory=reads,
             desc="upgrade; invalidate the other sharers"),
        Rule(event, "E", "M", writes_value=True, reads_memory=reads,
             desc="silent E->M upgrade"),
        Rule(event, "M", "M", writes_value=True, reads_memory=reads,
             desc="write hit"),
    )


def _mesi_model() -> FormalModel:
    states = ("I", "S", "E", "M")
    rules = (
        _mesi_read_rules("Load")
        + _mesi_write_rules("Store")
        # MESI has no special synchronization path: sync reads are loads,
        # sync writes are stores (both blocking at the directory).
        + _mesi_read_rules("SyncRead")
        + _mesi_write_rules("SyncWrite")
        + _mesi_write_rules("Rmw")
        + tuple(
            Rule("Evict", state, "I",
                 desc="replacement victim (dirty data written back)")
            for state in ("S", "E", "M")
        )
        + tuple(
            Rule("SelfInv", state, state,
                 desc="no-op: MESI needs no self-invalidation")
            for state in states
        )
    )
    invariants = (
        Invariant(
            "swmr", INV_EXCLUSIVE_AGAINST, states=("E", "M"),
            other_states=("S", "E", "M"),
            desc="single-writer/multiple-reader: an Exclusive or Modified "
                 "copy excludes every other copy of the line",
        ),
        Invariant(
            "data-value", INV_VALUE_COHERENCE, states=("S", "E", "M"),
            desc="every readable copy holds the current memory value "
                 "(writer-initiated invalidations leave no stale copy)",
        ),
    )
    return FormalModel(
        name="mesi",
        protocol="MESI",
        enum_class="MesiState",
        states=states,
        initial="I",
        state_names={"MODIFIED": "M", "EXCLUSIVE": "E", "SHARED": "S"},
        rules=rules,
        invariants=invariants,
        granularity=GRANULARITY_LINE,
        event_handlers={
            "Load": ("load",),
            "Store": ("store",),
            "SyncRead": ("load",),
            "SyncWrite": ("store",),
            "Rmw": ("rmw",),
            "Evict": ("force_evict",),
            "SelfInv": ("self_invalidate",),
        },
        test_aliases={"state_of": ()},
        mutator_aliases={"invalidate": "I"},
    )


# -- DeNovoSync0 --------------------------------------------------------------


def _denovosync0_model() -> FormalModel:
    states = ("I", "V", "R")
    steal_inv = (OtherEffect("R", "I"),)
    steal_val = (OtherEffect("R", "V"),)
    rules = (
        # Data reads: hit on Valid or Registered; a miss fills Valid from
        # the LLC (or the registered owner — same state outcome).
        Rule("Load", "I", "V", reads_memory=True,
             desc="data-read miss fills the word Valid"),
        Rule("Load", "V", "V", desc="data-read hit"),
        Rule("Load", "R", "R", desc="data-read hit on own registration"),
        # Data writes: register immediately (non-blocking); a previous
        # registrant invalidates its copy.
        Rule("Store", "I", "R", others=steal_inv, writes_value=True,
             desc="data-write registration; previous registrant invalidates"),
        Rule("Store", "V", "R", others=steal_inv, writes_value=True,
             desc="data-write registration over a Valid copy"),
        Rule("Store", "R", "R", writes_value=True, desc="data-write hit"),
        # Sync reads register like an RMW, but the previous registrant
        # only downgrades to Valid (paper §4.1: the copy is unusable for
        # sync reads but arms DeNovoSync's backoff trigger).
        Rule("SyncRead", "R", "R",
             desc="sync-read hit: only a Registered copy is usable"),
        Rule("SyncRead", "I", "R", others=steal_val, reads_memory=True,
             desc="sync-read registration; previous registrant -> Valid"),
        Rule("SyncRead", "V", "R", others=steal_val, reads_memory=True,
             desc="sync-read registration (Valid is not usable: re-fetch)"),
        # Sync writes and RMWs steal the registration and invalidate the
        # previous registrant's copy.
        Rule("SyncWrite", "R", "R", writes_value=True, desc="sync-write hit"),
        Rule("SyncWrite", "I", "R", others=steal_inv, writes_value=True,
             desc="sync-write registration; previous registrant invalidates"),
        Rule("SyncWrite", "V", "R", others=steal_inv, writes_value=True,
             desc="sync-write registration over a Valid copy"),
        Rule("Rmw", "R", "R", writes_value=True, reads_memory=True,
             desc="RMW hit on own registration"),
        Rule("Rmw", "I", "R", others=steal_inv, writes_value=True,
             reads_memory=True,
             desc="RMW registration; previous registrant invalidates"),
        Rule("Rmw", "V", "R", others=steal_inv, writes_value=True,
             reads_memory=True, desc="RMW registration over a Valid copy"),
        # Replacement: a Registered victim writes its registration (and
        # value) back to the LLC; Valid words just drop.
        Rule("Evict", "V", "I", desc="replacement victim"),
        Rule("Evict", "R", "I",
             desc="replacement victim: registration returns to the LLC"),
        # Self-invalidation at acquires: Valid words drop, Registered stay.
        Rule("SelfInv", "V", "I",
             desc="acquire self-invalidation drops Valid words"),
        Rule("SelfInv", "R", "R", desc="Registered words survive acquires"),
        Rule("SelfInv", "I", "I", desc="nothing to drop"),
    )
    invariants = (
        Invariant(
            "single-owner-registration", INV_AT_MOST_ONE_IN, states=("R",),
            desc="the LLC registry points at one core: at most one "
                 "Registered copy per word",
        ),
        Invariant(
            "data-value", INV_VALUE_COHERENCE, states=("R",),
            desc="the Registered copy holds the current memory value "
                 "(Valid copies may legitimately be stale until the next "
                 "acquire self-invalidation)",
        ),
    )
    return FormalModel(
        name="denovosync0",
        protocol="DeNovoSync0",
        enum_class="DeNovoState",
        states=states,
        initial="I",
        state_names={"INVALID": "I", "VALID": "V", "REGISTERED": "R"},
        rules=rules,
        invariants=invariants,
        granularity=GRANULARITY_WORD,
        event_handlers={
            "Load": ("load",),
            "Store": ("store",),
            "SyncRead": ("sync_load",),
            "SyncWrite": ("sync_store",),
            "Rmw": ("rmw",),
            "Evict": ("force_evict",),
            "SelfInv": ("self_invalidate",),
        },
        test_aliases={
            "registered_value": ("R",),
            "try_write_registered": ("R",),
            "present_value": ("V", "R"),
            "state_of": (),
        },
        mutator_aliases={
            "invalidate": "I",
            "evict_line": "I",
            "self_invalidate_all": "I",
            "self_invalidate_region": "I",
        },
    )


#: Model key (the registry's ``formal_model`` capability) -> model.
MODELS: dict[str, FormalModel] = {
    model.name: model
    for model in (_mesi_model(), _denovosync0_model())
}


def get_model(name: str) -> FormalModel:
    try:
        return MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown formal model {name!r}; expected one of {sorted(MODELS)}"
        ) from None
