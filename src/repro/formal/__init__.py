"""Formal protocol models and the checkers built on them.

The package has four layers, all driven by the guarded-action IR in
:mod:`repro.formal.model`:

* :mod:`repro.formal.model` — typed states, events, guards and update
  actions, plus the hand-written models for MESI and DeNovoSync0;
* :mod:`repro.formal.conformance` — static AST analysis of the Python
  protocol implementations, diffed against the model;
* :mod:`repro.formal.explore` — a TLC-lite small-scope BFS over the
  model itself, checking SWMR / single-owner-registration / data-value
  invariants;
* :mod:`repro.formal.tla` — a self-contained TLA+ module exporter so
  TLC can recheck the same model independently;
* :mod:`repro.formal.oracle` — a divergence oracle replaying the mc
  litmus corpus's executions through the model.

The ``formal`` CLI target fans :mod:`repro.formal.cells` out over every
registry protocol that declares a ``formal_model`` capability.
"""

from repro.formal.model import (
    MODELS,
    FormalModel,
    Guard,
    Invariant,
    OtherEffect,
    Rule,
    get_model,
)

__all__ = [
    "MODELS",
    "FormalModel",
    "Guard",
    "Invariant",
    "OtherEffect",
    "Rule",
    "get_model",
]
