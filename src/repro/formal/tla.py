"""TLA+ module export of a guarded-action model.

Emits one self-contained ``.tla`` module per model so TLC — an
independent checker sharing no code with this repo — can re-verify the
same state machine the Python explorer searches.  The encoding mirrors
:mod:`repro.formal.explore` exactly:

* ``st[c][a]`` — core ``c``'s stable state for unit ``a``;
* ``mem[a]`` — the per-unit write counter (abstract value);
* ``val[c][a]`` — the counter value ``c`` last observed (0 = none, the
  explorer's ``NO_VALUE``);

one TLA+ action per non-stuttering rule (identity rules with no data
effect are pure stutter steps and are omitted), guards as quantifiers
over ``Cores \\ {c}``, and the model's invariants as state predicates
conjoined in the THEOREM.  Emission order follows rule declaration
order, so the output is byte-stable and golden-file testable.
"""

from __future__ import annotations

from repro.formal.model import (
    GUARD_NO_OTHER_IN,
    GUARD_SOME_OTHER_IN,
    FormalModel,
    Invariant,
    Rule,
)


def module_name(model: FormalModel) -> str:
    """TLA+ module (and file) name for ``model``."""
    return model.name.upper()


def _tla_set(states: tuple[str, ...]) -> str:
    return "{" + ", ".join(f'"{state}"' for state in states) + "}"


def _invariant_name(inv: Invariant) -> str:
    return "".join(part.capitalize() for part in inv.name.split("-"))


def _action_name(rule: Rule) -> str:
    return f"{rule.event}_{rule.pre}_{rule.post}"


def _emits(rule: Rule) -> bool:
    """False for pure stutter rules (identity, no data effect)."""
    return (
        rule.pre != rule.post
        or rule.writes_value
        or rule.reads_memory
        or bool(rule.others)
    )


def _actor_val_expr(rule: Rule, model: FormalModel) -> str | None:
    """The acting core's new ``val`` entry, or None when unchanged."""
    if rule.writes_value:
        return "mem[a] + 1"
    if rule.reads_memory:
        return "mem[a]"
    if rule.post == model.initial:
        return "0"
    return None


def _action(rule: Rule, model: FormalModel) -> list[str]:
    lines = [f"{_action_name(rule)}(c, a) =="]
    if rule.desc:
        lines.insert(0, f"\\* {rule.desc}")
    conjuncts = [f'st[c][a] = "{rule.pre}"']
    if rule.guard.kind == GUARD_NO_OTHER_IN:
        conjuncts.append(
            f"\\A o \\in Cores \\ {{c}} : "
            f"~(st[o][a] \\in {_tla_set(rule.guard.states)})"
        )
    elif rule.guard.kind == GUARD_SOME_OTHER_IN:
        conjuncts.append(
            f"\\E o \\in Cores \\ {{c}} : "
            f"st[o][a] \\in {_tla_set(rule.guard.states)}"
        )
    if rule.writes_value:
        conjuncts.append("mem[a] < MaxWrites")
        conjuncts.append("mem' = [mem EXCEPT ![a] = mem[a] + 1]")
    else:
        conjuncts.append("UNCHANGED mem")

    actor_val = _actor_val_expr(rule, model)
    if rule.others:
        branches = [f'ELSE IF o = c THEN "{rule.post}"']
        for effect in rule.others:
            branches.append(
                f'ELSE IF st[o][b] = "{effect.when}" THEN "{effect.to}"'
            )
        branches.append("ELSE st[o][b]")
        conjuncts.append(
            "st' = [o \\in Cores |-> [b \\in Addrs |->\n"
            "          IF b /= a THEN st[o][b]\n"
            + "".join(f"          {branch}\n" for branch in branches).rstrip()
            + "]]"
        )
        val_branches = []
        if actor_val is not None:
            val_branches.append(f"ELSE IF o = c THEN {actor_val}")
        resets = tuple(
            effect.when for effect in rule.others if effect.to == model.initial
        )
        if resets:
            guard = "" if actor_val is not None else "o /= c /\\ "
            val_branches.append(
                f"ELSE IF {guard}st[o][b] \\in {_tla_set(resets)} THEN 0"
            )
        if val_branches:
            val_branches.append("ELSE val[o][b]")
            conjuncts.append(
                "val' = [o \\in Cores |-> [b \\in Addrs |->\n"
                "          IF b /= a THEN val[o][b]\n"
                + "".join(
                    f"          {branch}\n" for branch in val_branches
                ).rstrip()
                + "]]"
            )
        else:
            conjuncts.append("UNCHANGED val")
    else:
        conjuncts.append(f"st' = [st EXCEPT ![c][a] = \"{rule.post}\"]")
        if actor_val is not None:
            conjuncts.append(f"val' = [val EXCEPT ![c][a] = {actor_val}]")
        else:
            conjuncts.append("UNCHANGED val")

    for conjunct in conjuncts:
        first, *rest = conjunct.split("\n")
        lines.append(f"    /\\ {first}")
        lines.extend(f"    {line}" for line in rest)
    return lines


def _invariant(inv: Invariant, model: FormalModel) -> list[str]:
    lines = []
    if inv.desc:
        lines.append(f"\\* {inv.desc}")
    lines.append(f"{_invariant_name(inv)} ==")
    if inv.kind == "at-most-one-in":
        lines.append("    \\A a \\in Addrs :")
        lines.append(
            f"        Cardinality({{c \\in Cores : "
            f"st[c][a] \\in {_tla_set(inv.states)}}}) <= 1"
        )
    elif inv.kind == "exclusive-against":
        lines.append("    \\A a \\in Addrs : \\A c \\in Cores :")
        lines.append(f"        st[c][a] \\in {_tla_set(inv.states)} =>")
        lines.append(
            f"            \\A o \\in Cores \\ {{c}} : "
            f"~(st[o][a] \\in {_tla_set(inv.other_states)})"
        )
    elif inv.kind == "value-coherence":
        lines.append("    \\A a \\in Addrs : \\A c \\in Cores :")
        lines.append(
            f"        st[c][a] \\in {_tla_set(inv.states)} => "
            f"val[c][a] = mem[a]"
        )
    else:
        raise AssertionError(f"unknown invariant kind {inv.kind!r}")
    return lines


def export_tla(model: FormalModel) -> str:
    """The complete TLA+ module text for ``model``."""
    name = module_name(model)
    rules = [rule for rule in model.rules if _emits(rule)]
    names = [_action_name(rule) for rule in rules]
    assert len(names) == len(set(names)), f"{model.name}: action name clash"

    header = f"---- MODULE {name} ----"
    lines = [
        header,
        f"\\* Guarded-action model '{model.name}' of protocol "
        f"{model.protocol} ({model.granularity} granularity).",
        "\\* Generated by repro.formal.tla; regenerate with the `formal`",
        "\\* CLI target.  mem[a] counts writes (the abstract value) and",
        "\\* val[c][a] is the count core c last observed (0 = none);",
        "\\* identity rules with no data effect are stutter steps and are",
        "\\* not emitted.",
        "EXTENDS Naturals, FiniteSets",
        "",
        "CONSTANTS Cores, Addrs, MaxWrites",
        "",
        f"States == {_tla_set(model.states)}",
        f'Initial == "{model.initial}"',
        "",
        "VARIABLES st, mem, val",
        "",
        "vars == <<st, mem, val>>",
        "",
        "TypeOK ==",
        "    /\\ st \\in [Cores -> [Addrs -> States]]",
        "    /\\ mem \\in [Addrs -> Nat]",
        "    /\\ val \\in [Cores -> [Addrs -> Nat]]",
        "",
        "Init ==",
        "    /\\ st = [c \\in Cores |-> [a \\in Addrs |-> Initial]]",
        "    /\\ mem = [a \\in Addrs |-> 0]",
        "    /\\ val = [c \\in Cores |-> [a \\in Addrs |-> 0]]",
        "",
    ]
    for rule in rules:
        lines.extend(_action(rule, model))
        lines.append("")
    for inv in model.invariants:
        lines.extend(_invariant(inv, model))
        lines.append("")
    lines.append("Next ==")
    lines.append("    \\E c \\in Cores : \\E a \\in Addrs :")
    for action in names:
        lines.append(f"        \\/ {action}(c, a)")
    lines.append("")
    lines.append("Spec == Init /\\ [][Next]_vars")
    lines.append("")
    inv_names = " /\\ ".join(
        ["TypeOK"] + [_invariant_name(inv) for inv in model.invariants]
    )
    lines.append(f"THEOREM Spec => []({inv_names})")
    lines.append("=" * len(header))
    return "\n".join(lines) + "\n"
