"""Picklable per-protocol cells for the parallel ``formal`` sweep.

Mirrors :mod:`repro.mc.cells` / :mod:`repro.sanitize.cells`: the
``formal`` CLI target builds one :class:`FormalCell` per protocol that
declares a ``formal_model`` capability and fans them out through
:func:`repro.harness.parallel.run_tasks`.  Each cell runs all four
formal layers for its protocol — static conformance, small-scope
exhaustive exploration, the litmus divergence oracle, and TLA+ export —
and sends back a plain-data outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sanitize.findings import Finding


@dataclass(frozen=True)
class FormalCell:
    """One protocol's formal-verification work item."""

    protocol: str
    cores: int = 3
    addrs: int = 2
    max_writes: int = 2
    divergence_bound: int = 1
    divergence_schedules: int = 300
    litmus: tuple = ()  # () = the whole corpus
    #: Engine run loop of the divergence oracle's replayed executions
    #: (False: CLI ``--no-epoch``); verdicts are identical either way.
    epoch_mode: bool = True


@dataclass
class FormalOutcome:
    """Picklable summary of one verified protocol."""

    protocol: str
    model: str
    findings: list[Finding] = field(default_factory=list)
    coverage: dict = field(default_factory=dict)
    explore_stats: dict = field(default_factory=dict)
    oracle_stats: dict = field(default_factory=dict)
    tla_module: str = ""
    tla_text: str = ""

    @property
    def ok(self) -> bool:
        return not any(f.severity == "error" for f in self.findings)

    def describe(self) -> str:
        line = (
            f"{self.protocol:12s} model={self.model:12s} "
            f"states={self.explore_stats.get('states', 0):5d} "
            f"transitions={self.explore_stats.get('transitions', 0):6d} "
            f"replayed={self.oracle_stats.get('executions', 0):4d} "
            f"execution(s)"
        )
        if self.ok:
            return line + " — ok"
        errors = sum(1 for f in self.findings if f.severity == "error")
        return line + f" — {errors} error finding(s)"


def run_cell(cell: FormalCell) -> FormalOutcome:
    """Run every formal layer for one protocol (worker entry point)."""
    from repro.formal.conformance import check_protocol
    from repro.formal.explore import ExploreScope, explore_model
    from repro.formal.model import get_model
    from repro.formal.oracle import replay_corpus
    from repro.formal.tla import export_tla, module_name
    from repro.mc.litmus import CORPUS
    from repro.protocols.registry import get_info

    info = get_info(cell.protocol)
    if info.formal_model is None:
        raise ValueError(f"{cell.protocol} declares no formal model")
    model = get_model(info.formal_model)

    conformance = check_protocol(info, model)
    outcome = FormalOutcome(
        protocol=cell.protocol,
        model=model.name,
        coverage=conformance.coverage,
        tla_module=module_name(model),
        tla_text=export_tla(model),
    )
    outcome.findings.extend(conformance.findings)

    scope = ExploreScope(
        cores=cell.cores, addrs=cell.addrs, max_writes=cell.max_writes
    )
    exploration = explore_model(model, scope)
    outcome.explore_stats = exploration.stats()
    outcome.findings.extend(exploration.findings)

    tests = (
        {name: CORPUS[name] for name in cell.litmus}
        if cell.litmus
        else None
    )
    oracle_findings, oracle_stats = replay_corpus(
        cell.protocol,
        model,
        tests,
        bound=cell.divergence_bound,
        max_schedules=cell.divergence_schedules,
        epoch_mode=cell.epoch_mode,
    )
    outcome.oracle_stats = oracle_stats.to_dict()
    outcome.findings.extend(oracle_findings)
    return outcome
