"""Divergence oracle: replay mc litmus executions through the model.

For every completed, violation-free execution the mc explorer finds
(:func:`repro.mc.explorer.explore` with an ``on_execution`` observer),
this module replays the execution's visible-operation trace through the
protocol's guarded-action model and fails on any divergence:

* an implementation step for which no model rule fires from the model's
  current state (``model-divergence``);
* a read that observed a value the model says the core cannot hold;
* an RMW whose post-value contradicts the ISA op's semantics applied to
  the model's memory;
* a model invariant (single-owner-registration, SWMR, data-value)
  violated mid-replay;
* final model memory differing from the execution's final memory.

Only *synchronization* addresses (any address touched by a sync access
or an RMW in the execution) are tracked: data words are filled
line-at-a-time by DeNovo (events the per-word model never sees), while
sync words are line-padded by ``alloc_sync`` and therefore only change
state through their own visible operations — exactly the footprint the
stable-state model describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu import isa
from repro.formal.model import (
    GRANULARITY_LINE,
    INV_AT_MOST_ONE_IN,
    INV_EXCLUSIVE_AGAINST,
    INV_VALUE_COHERENCE,
    FormalModel,
)
from repro.mc.explorer import explore
from repro.mc.litmus import CORPUS, LitmusTest
from repro.mc.runner import Execution, McOptions
from repro.sanitize.findings import (
    KIND_MODEL_DIVERGENCE,
    SEVERITY_ERROR,
    Finding,
)


@dataclass
class OracleStats:
    """Deterministic replay statistics for one (protocol, corpus) cell."""

    tests: int = 0
    executions: int = 0
    events: int = 0
    value_checks: int = 0

    def to_dict(self) -> dict:
        return {
            "tests": self.tests,
            "executions": self.executions,
            "events": self.events,
            "value_checks": self.value_checks,
        }


class _Replay:
    """Model state mirrored alongside one execution's replay."""

    def __init__(self, execution: Execution, model: FormalModel) -> None:
        self.execution = execution
        self.model = model
        self.amap = execution.instance.allocator.amap
        self.cores = len(execution.instance.programs)
        self.line_units = model.granularity == GRANULARITY_LINE
        self.tracked = sorted(
            {
                record.addr
                for step in execution.steps
                for record in step.records
                if record.kind == "rmw"
                or (record.sync and record.kind in ("load", "store"))
            }
        )
        self.units: dict = {}
        for addr in self.tracked:
            self.units.setdefault(self._unit_of(addr), []).append(addr)
        self.region_of = {
            addr: alloc.region.region_id
            for alloc in execution.instance.allocator.allocations
            for addr in alloc
        }
        initial = execution.instance.initial_values
        self.state = {
            unit: [model.initial] * self.cores for unit in self.units
        }
        self.mem = {addr: initial.get(addr, 0) for addr in self.tracked}
        self.val: dict = {}
        self.findings: list = []
        self.events = 0
        self.value_checks = 0

    def _unit_of(self, addr: int):
        return self.amap.line_of(addr) if self.line_units else addr

    def _fail(self, message: str, step_index: int, **details: object) -> None:
        execution = self.execution
        self.findings.append(
            Finding(
                kind=KIND_MODEL_DIVERGENCE,
                severity=SEVERITY_ERROR,
                message=(
                    f"{execution.protocol_name}/{execution.test_name}: "
                    f"{message}"
                ),
                site=f"mc/{execution.test_name}",
                details={
                    "protocol": execution.protocol_name,
                    "test": execution.test_name,
                    "model": self.model.name,
                    "step": step_index,
                    "schedule": [list(c) for c in execution.schedule],
                    **details,
                },
            )
        )

    # -- one model event ---------------------------------------------------

    def _apply(self, event: str, unit, core: int, step_index: int):
        """Fire ``event`` by ``core`` on ``unit``; returns the rule."""
        states = self.state[unit]
        pre = states[core]
        others = tuple(s for o, s in enumerate(states) if o != core)
        rule = self.model.match_rule(event, pre, others)
        if rule is None:
            self._fail(
                f"step {step_index}: no {self.model.name} rule fires for "
                f"{event} by core {core} from state {pre!r} "
                f"(others {list(others)})",
                step_index,
                event=event,
                core=core,
                pre=pre,
                others=list(others),
            )
            return None
        self.events += 1
        states[core] = rule.post
        for other in range(self.cores):
            if other == core:
                continue
            for effect in rule.others:
                if states[other] == effect.when:
                    states[other] = effect.to
                    if effect.to == self.model.initial:
                        for addr in self.units[unit]:
                            self.val.pop((other, addr), None)
                    break
        if rule.post == self.model.initial and not rule.writes_value:
            for addr in self.units[unit]:
                self.val.pop((core, addr), None)
        return rule

    def _check_invariants(self, unit, step_index: int) -> None:
        states = self.state[unit]
        for inv in self.model.invariants:
            if inv.kind == INV_AT_MOST_ONE_IN:
                holders = [
                    c for c, s in enumerate(states) if s in inv.states
                ]
                if len(holders) > 1:
                    self._fail(
                        f"step {step_index}: invariant {inv.name!r} violated "
                        f"at unit {unit}: cores {holders} all in "
                        f"{'/'.join(inv.states)}",
                        step_index,
                        invariant=inv.name,
                        unit=unit,
                    )
            elif inv.kind == INV_EXCLUSIVE_AGAINST:
                for core, s in enumerate(states):
                    if s not in inv.states:
                        continue
                    clash = [
                        o
                        for o, t in enumerate(states)
                        if o != core and t in inv.other_states
                    ]
                    if clash:
                        self._fail(
                            f"step {step_index}: invariant {inv.name!r} "
                            f"violated at unit {unit}: core {core} in {s} "
                            f"with copies at cores {clash}",
                            step_index,
                            invariant=inv.name,
                            unit=unit,
                        )
            elif inv.kind == INV_VALUE_COHERENCE:
                for addr in self.units[unit]:
                    for core, s in enumerate(states):
                        held = self.val.get((core, addr))
                        if s in inv.states and held is not None and (
                            held != self.mem[addr]
                        ):
                            self._fail(
                                f"step {step_index}: invariant {inv.name!r} "
                                f"violated: core {core} in {s} holds "
                                f"{held} for addr {addr}, memory has "
                                f"{self.mem[addr]}",
                                step_index,
                                invariant=inv.name,
                                addr=addr,
                            )

    # -- record replay -----------------------------------------------------

    def _rmw_expected(self, op: object, old: int) -> int | None:
        """Post-RMW memory value per the ISA op's semantics, or None."""
        if isinstance(op, isa.Cas):
            return op.new if old == op.expected else old
        if isinstance(op, isa.Fai):
            return old + op.delta
        if isinstance(op, isa.Swap):
            return op.value
        return None

    def _replay_record(self, record, op: object, step_index: int) -> None:
        if record.kind == "selfinv":
            self._replay_selfinv(record, step_index)
            return
        addr = record.addr
        unit = self._unit_of(addr)
        if unit not in self.units:
            return  # data address: outside the tracked sync footprint
        core = record.core
        if record.kind == "load":
            event = "SyncRead" if record.sync else "Load"
            rule = self._apply(event, unit, core, step_index)
            if rule is None:
                return
            self.value_checks += 1
            if rule.reads_memory:
                if record.value != self.mem[addr]:
                    self._fail(
                        f"step {step_index}: core {core} {event} of addr "
                        f"{addr} observed {record.value}, model memory has "
                        f"{self.mem[addr]}",
                        step_index,
                        addr=addr,
                        observed=record.value,
                        expected=self.mem[addr],
                    )
                self.val[(core, addr)] = record.value
            else:
                held = self.val.get((core, addr))
                if held is not None and record.value != held:
                    self._fail(
                        f"step {step_index}: core {core} {event} hit on addr "
                        f"{addr} observed {record.value}, its model copy "
                        f"holds {held}",
                        step_index,
                        addr=addr,
                        observed=record.value,
                        expected=held,
                    )
        elif record.kind == "store":
            event = "SyncWrite" if record.sync else "Store"
            rule = self._apply(event, unit, core, step_index)
            if rule is None:
                return
            self.mem[addr] = record.value
            self.val[(core, addr)] = record.value
        elif record.kind == "rmw":
            rule = self._apply("Rmw", unit, core, step_index)
            if rule is None:
                return
            expected = self._rmw_expected(op, self.mem[addr])
            self.value_checks += 1
            if expected is not None and record.value != expected:
                self._fail(
                    f"step {step_index}: core {core} RMW of addr {addr} left "
                    f"{record.value}, ISA semantics over model memory "
                    f"require {expected}",
                    step_index,
                    addr=addr,
                    observed=record.value,
                    expected=expected,
                )
            self.mem[addr] = record.value
            self.val[(core, addr)] = record.value
        self._check_invariants(unit, step_index)

    def _replay_selfinv(self, record, step_index: int) -> None:
        core = record.core
        for unit, addrs in self.units.items():
            if self.state[unit][core] == self.model.initial:
                continue
            covered = record.flush_all or any(
                self.region_of.get(addr) in record.regions for addr in addrs
            )
            if not covered:
                continue
            if self._apply("SelfInv", unit, core, step_index) is not None:
                self._check_invariants(unit, step_index)

    def _replay_evict(self, core: int, line: int, step_index: int) -> None:
        for unit, addrs in self.units.items():
            unit_line = unit if self.line_units else self.amap.line_of(addrs[0])
            if unit_line != line:
                continue
            if self.state[unit][core] == self.model.initial:
                continue  # force_evict of a non-resident line is a no-op
            if self._apply("Evict", unit, core, step_index) is not None:
                self._check_invariants(unit, step_index)

    def run(self) -> list:
        for step in self.execution.steps:
            if step.choice[0] == "evict":
                self._replay_evict(step.choice[1], step.choice[2], step.index)
            else:
                for record in step.records:
                    self._replay_record(record, step.op, step.index)
            if self.findings:
                return self.findings  # state is garbage past a divergence
        for addr in self.tracked:
            final = self.execution.final_memory.get(addr)
            if final != self.mem[addr]:
                self._fail(
                    f"final memory of addr {addr} is {final}, model replay "
                    f"ends at {self.mem[addr]}",
                    len(self.execution.steps),
                    addr=addr,
                    observed=final,
                    expected=self.mem[addr],
                )
        return self.findings


def replay_execution(execution: Execution, model: FormalModel) -> list:
    """Findings from replaying one execution through ``model``."""
    return _Replay(execution, model).run()


def replay_corpus(
    protocol_name: str,
    model: FormalModel,
    tests: dict[str, LitmusTest] | None = None,
    *,
    bound: int = 1,
    max_schedules: int = 300,
    epoch_mode: bool = True,
) -> tuple[list, OracleStats]:
    """Replay every corpus test's executions against ``model``.

    Returns (findings, stats).  Stops collecting further divergences for
    a test once one is found (replay state past a divergence is
    meaningless); mc's own safety violations are surfaced too, since a
    protocol that fails its litmus test cannot be compared to the model.
    """
    tests = CORPUS if tests is None else tests
    findings: list = []
    stats = OracleStats()
    for name in sorted(tests):
        stats.tests += 1
        findings.extend(
            _replay_test(name, tests[name], protocol_name, model, stats,
                         bound=bound, max_schedules=max_schedules,
                         epoch_mode=epoch_mode)
        )
    return findings, stats


def _replay_test(
    name: str,
    test: LitmusTest,
    protocol_name: str,
    model: FormalModel,
    stats: OracleStats,
    *,
    bound: int,
    max_schedules: int,
    epoch_mode: bool = True,
) -> list:
    cell_findings: list = []

    def observe(execution: Execution) -> None:
        stats.executions += 1
        if cell_findings:
            return
        replay = _Replay(execution, model)
        cell_findings.extend(replay.run())
        stats.events += replay.events
        stats.value_checks += replay.value_checks

    result = explore(
        test,
        protocol_name,
        bound=bound,
        options=McOptions(max_schedules=max_schedules, epoch_mode=epoch_mode),
        on_execution=observe,
    )
    if result.violation is not None:
        cell_findings.insert(
            0,
            Finding(
                kind=KIND_MODEL_DIVERGENCE,
                severity=SEVERITY_ERROR,
                message=(
                    f"{protocol_name}/{name}: mc found a safety "
                    f"violation ({result.violation.kind}), divergence "
                    f"replay is moot: {result.violation.message}"
                ),
                site=f"mc/{name}",
                details={"protocol": protocol_name, "test": name},
            ),
        )
    return cell_findings
