"""Static conformance checking of protocol implementations against models.

The analyzer never runs the protocol.  It parses the implementation
module ASTs (the class and its ``repro.*`` base classes), computes a
*state-write summary* per event handler — every model state the handler
(transitively, through ``self.`` method calls) can install into an L1 —
and diffs that summary against the formal model:

* ``missing-handler`` — the model names an entry point the class lacks;
* ``unhandled-transition`` — a state the model requires the event to be
  able to write never appears in the handler's summary;
* ``forbidden-transition`` — the handler can write a state no rule of
  the event permits;
* ``dead-state`` — a model state unreachable in the model's own rule
  graph (a modelling bug surfaced by the same report).

State writes are recognized through a small vocabulary of L1 mutators
(``set_state``/``insert``/``fill_word``/``downgrade`` with an explicit
state argument, plus the model's ``mutator_aliases`` for calls that
imply a fixed state, like ``invalidate``).  Summaries are computed under
a constant-binding environment: a call like ``self._register(...,
invalidate_prev=False)`` analyzes ``_register`` with that binding, so
the ``INVALID if invalidate_prev else VALID`` downgrade target resolves
to exactly the state that call site can write.  The analysis is
flow-insensitive everywhere else, which is sound for this check:
summaries over-approximate writes, and the diff only compares *sets* of
writable states per event.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.formal.model import FormalModel, get_model
from repro.sanitize.findings import (
    KIND_DEAD_STATE,
    KIND_FORBIDDEN_TRANSITION,
    KIND_MISSING_HANDLER,
    KIND_UNHANDLED_TRANSITION,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
)

if TYPE_CHECKING:
    from repro.protocols.registry import ProtocolInfo

#: L1-mutator methods that take an explicit state argument, mapped to
#: the argument's positional index (``fill_word(addr, value, state)``).
STATE_ARG_CALLS: dict[str, int] = {
    "set_state": 1,
    "insert": 1,
    "fill_word": 2,
    "downgrade": 1,
}

#: Keyword names the state argument may travel under instead.
STATE_KEYWORDS = ("state", "target")

#: A constant binding: a bool (branch selector) or a set of model states.
Binding = bool | frozenset
Env = dict[str, Binding]


@dataclass
class Summary:
    """What one method (plus its ``self.`` callees) can do to L1 state."""

    writes: set = field(default_factory=set)
    tests: set = field(default_factory=set)
    unresolved: set = field(default_factory=set)

    def merge(self, other: Summary) -> None:
        self.writes |= other.writes
        self.tests |= other.tests
        self.unresolved |= other.unresolved


@dataclass
class ConformanceResult:
    """Outcome of checking one implementation against one model."""

    protocol: str
    model: str
    findings: list = field(default_factory=list)
    coverage: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not any(f.severity == SEVERITY_ERROR for f in self.findings)


_MODULE_CACHE: dict[str, ast.Module] = {}


def _module_ast(module_name: str) -> ast.Module:
    tree = _MODULE_CACHE.get(module_name)
    if tree is None:
        module = sys.modules[module_name]
        filename = module.__file__
        assert filename is not None, module_name
        with open(filename, encoding="utf-8") as handle:
            tree = ast.parse(handle.read(), filename=filename)
        _MODULE_CACHE[module_name] = tree
    return tree


def _methods_of(cls: type) -> dict[str, ast.FunctionDef]:
    """Method name -> FunctionDef over the class MRO (subclass wins),
    restricted to classes defined in ``repro.*`` modules."""
    methods: dict[str, ast.FunctionDef] = {}
    for klass in cls.__mro__:
        if not klass.__module__.startswith("repro."):
            continue
        for node in _module_ast(klass.__module__).body:
            if not isinstance(node, ast.ClassDef) or node.name != klass.__name__:
                continue
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name not in methods:
                    methods[item.name] = item
    return methods


def _own_nodes(fn: ast.FunctionDef):
    """Every node of ``fn``'s body, not descending into nested defs."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _Analyzer:
    """Computes state-write summaries for one (class, model) pair."""

    def __init__(self, cls: type, model: FormalModel) -> None:
        self.model = model
        self.methods = _methods_of(cls)
        self._memo: dict[tuple, Summary] = {}
        self._in_progress: set = set()

    # -- expression resolution -------------------------------------------

    def _resolve_states(
        self, node: ast.expr, env: Env, local_states: dict
    ) -> frozenset | None:
        """The set of model states ``node`` can evaluate to, or None."""
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id == self.model.enum_class:
                state = self.model.state_names.get(node.attr)
                if state is not None:
                    return frozenset((state,))
            return None
        if isinstance(node, ast.Name):
            bound = env.get(node.id)
            if isinstance(bound, frozenset):
                return bound
            return local_states.get(node.id)
        if isinstance(node, ast.IfExp):
            picked = self._resolve_bool(node.test, env)
            if picked is not None:
                branch = node.body if picked else node.orelse
                return self._resolve_states(branch, env, local_states)
            body = self._resolve_states(node.body, env, local_states)
            orelse = self._resolve_states(node.orelse, env, local_states)
            if body is None and orelse is None:
                return None
            return (body or frozenset()) | (orelse or frozenset())
        return None

    def _resolve_bool(self, node: ast.expr, env: Env) -> bool | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, bool):
            return node.value
        if isinstance(node, ast.Name):
            bound = env.get(node.id)
            if isinstance(bound, bool):
                return bound
        return None

    # -- summaries --------------------------------------------------------

    def summarize(self, name: str, env: Env | None = None) -> Summary:
        """The state-write summary of method ``name`` under ``env``."""
        env = env or {}
        key = (name, tuple(sorted(env.items())))
        memo = self._memo.get(key)
        if memo is not None:
            return memo
        if key in self._in_progress:
            return Summary()  # recursion: the fixpoint adds nothing new
        fn = self.methods.get(name)
        if fn is None:
            return Summary()
        self._in_progress.add(key)
        try:
            summary = self._summarize_fn(fn, env)
        finally:
            self._in_progress.discard(key)
        self._memo[key] = summary
        return summary

    def _summarize_fn(self, fn: ast.FunctionDef, env: Env) -> Summary:
        # Pass 1: local name -> states it may hold (flow-insensitive union).
        local_states: dict = {}
        for _ in range(2):  # one re-pass settles chained local aliases
            for node in _own_nodes(fn):
                targets: list[ast.expr] = []
                value: ast.expr | None = None
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                if value is None:
                    continue
                states = self._resolve_states(value, env, local_states)
                if states is None:
                    continue
                for target in targets:
                    if isinstance(target, ast.Name):
                        previous = local_states.get(target.id, frozenset())
                        local_states[target.id] = previous | states

        # Pass 2: effects — mutator calls, state tests, self-call closure.
        summary = Summary()
        for node in _own_nodes(fn):
            if isinstance(node, ast.Compare):
                self._collect_compare(node, env, local_states, summary)
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            attr = func.attr
            alias = self.model.mutator_aliases.get(attr)
            if alias is not None:
                summary.writes.add(alias)
            tested = self.model.test_aliases.get(attr)
            if tested is not None:
                summary.tests.update(tested)
            if attr in STATE_ARG_CALLS:
                self._collect_state_arg(node, attr, env, local_states, summary)
            if (
                isinstance(func.value, ast.Name)
                and func.value.id == "self"
                and attr in self.methods
            ):
                child_env = self._bind_call(node, self.methods[attr], env, local_states)
                summary.merge(self.summarize(attr, child_env))
        return summary

    def _collect_state_arg(
        self,
        node: ast.Call,
        attr: str,
        env: Env,
        local_states: dict,
        summary: Summary,
    ) -> None:
        index = STATE_ARG_CALLS[attr]
        arg: ast.expr | None = None
        if len(node.args) > index and not any(
            isinstance(a, ast.Starred) for a in node.args[: index + 1]
        ):
            arg = node.args[index]
        else:
            for keyword in node.keywords:
                if keyword.arg in STATE_KEYWORDS:
                    arg = keyword.value
                    break
        if arg is None:
            return  # not a state-carrying call form (e.g. list.insert)
        states = self._resolve_states(arg, env, local_states)
        if states is None:
            summary.unresolved.add(f"{attr}() at line {node.lineno}")
            return
        summary.writes.update(states)

    def _collect_compare(
        self, node: ast.Compare, env: Env, local_states: dict, summary: Summary
    ) -> None:
        for side in (node.left, *node.comparators):
            if isinstance(side, ast.Attribute):
                states = self._resolve_states(side, env, local_states)
                if states is not None:
                    summary.tests.update(states)

    def _bind_call(
        self,
        node: ast.Call,
        callee: ast.FunctionDef,
        env: Env,
        local_states: dict,
    ) -> Env:
        """Constant bindings for a ``self.method(...)`` call's parameters."""
        params = [a.arg for a in callee.args.args[1:]]  # skip self
        child: Env = {}
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                break  # positions after a splat are unknowable
            if position >= len(params):
                break
            self._bind_value(child, params[position], arg, env, local_states)
        names = set(params) | {a.arg for a in callee.args.kwonlyargs}
        for keyword in node.keywords:
            if keyword.arg in names:
                self._bind_value(child, keyword.arg, keyword.value, env, local_states)
        return child

    def _bind_value(
        self,
        child: Env,
        name: str,
        value: ast.expr,
        env: Env,
        local_states: dict,
    ) -> None:
        boolean = self._resolve_bool(value, env)
        if boolean is not None:
            child[name] = boolean
            return
        states = self._resolve_states(value, env, local_states)
        if states is not None:
            child[name] = states


def check_protocol(
    info: ProtocolInfo, model: FormalModel | None = None
) -> ConformanceResult:
    """Statically check ``info``'s implementation against its model."""
    if model is None:
        assert info.formal_model is not None, f"{info.name} declares no model"
        model = get_model(info.formal_model)
    cls = info.cls
    assert cls is not None, f"{info.name} registered without a class"
    analyzer = _Analyzer(cls, model)
    result = ConformanceResult(protocol=info.name, model=model.name)
    site = f"{cls.__module__}.{cls.__name__}"

    for event in model.events:
        handlers = model.event_handlers.get(event, ())
        summary = Summary()
        for handler in handlers:
            if handler not in analyzer.methods:
                result.findings.append(
                    Finding(
                        kind=KIND_MISSING_HANDLER,
                        severity=SEVERITY_ERROR,
                        message=(
                            f"{info.name}: model event {event} expects handler "
                            f"{handler}(), which the implementation lacks"
                        ),
                        site=site,
                        details={"event": event, "handler": handler},
                    )
                )
                continue
            summary.merge(analyzer.summarize(handler))

        expected = model.expected_writes(event)
        allowed = model.allowed_writes(event)
        for state in sorted(expected - summary.writes):
            rules = [
                rule.label()
                for rule in model.rules_for(event)
                if rule.post == state
                or any(e.to == state and e.to != e.when for e in rule.others)
            ]
            result.findings.append(
                Finding(
                    kind=KIND_UNHANDLED_TRANSITION,
                    severity=SEVERITY_ERROR,
                    message=(
                        f"{info.name}: {event} handlers "
                        f"({', '.join(handlers)}) never write state "
                        f"{state!r}, required by {'; '.join(rules)}"
                    ),
                    site=site,
                    details={"event": event, "state": state, "rules": rules},
                )
            )
        for state in sorted(summary.writes - allowed):
            result.findings.append(
                Finding(
                    kind=KIND_FORBIDDEN_TRANSITION,
                    severity=SEVERITY_ERROR,
                    message=(
                        f"{info.name}: {event} handlers "
                        f"({', '.join(handlers)}) can write state {state!r}, "
                        f"which no {event} rule of model {model.name} permits"
                    ),
                    site=site,
                    details={
                        "event": event,
                        "state": state,
                        "allowed": sorted(allowed),
                    },
                )
            )
        for unresolved in sorted(summary.unresolved):
            result.findings.append(
                Finding(
                    kind=KIND_UNHANDLED_TRANSITION,
                    severity=SEVERITY_WARNING,
                    message=(
                        f"{info.name}: {event}: could not resolve the state "
                        f"argument of {unresolved} (summary may be incomplete)"
                    ),
                    site=site,
                    details={"event": event, "call": unresolved},
                )
            )
        result.coverage[event] = {
            "handlers": list(handlers),
            "writes": sorted(summary.writes),
            "tests": sorted(summary.tests),
            "expected": sorted(expected),
            "allowed": sorted(allowed),
        }

    reachable = model.rule_reachable_states()
    for state in model.states:
        if state not in reachable:
            result.findings.append(
                Finding(
                    kind=KIND_DEAD_STATE,
                    severity=SEVERITY_ERROR,
                    message=(
                        f"model {model.name}: state {state!r} is unreachable "
                        f"in the rule graph from {model.initial!r}"
                    ),
                    site=f"formal/{model.name}",
                    details={"model": model.name, "state": state},
                )
            )
    return result
