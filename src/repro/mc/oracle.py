"""Safety oracles for completed controlled executions.

Three checks, all against the *serialized* step sequence the controller
produced (one visible operation per step, committed atomically):

1. **Conformance**: replay the steps through a tiny interpreter over a
   flat memory and compare every observed value.  Because the controller
   serializes visible operations, the interpreter's memory is exactly the
   sequentially consistent reference for that interleaving — a sync read
   returning anything else, a CAS/FAI whose post-value disagrees, or
   (for properly annotated litmus programs) a stale data read is a
   protocol bug in that interleaving.
2. **Final memory**: after completion, every footprint word in protocol
   memory must equal the interpreter's (catches lost writebacks).
3. **Postcondition**: the litmus test's own program-level outcome check.

Runtime coherence invariants (``invariant_level="full"``) fire *during*
execution inside :func:`repro.mc.runner.run_schedule`; this module only
covers the end-of-execution checks.
"""

from __future__ import annotations

from collections import defaultdict

from repro.cpu import isa
from repro.mc.runner import Execution, McOptions, Violation


def _interpret(execution: Execution, options: McOptions) -> tuple[dict, list[Violation]]:
    """Run the interpreter over the steps; return (memory, violations)."""
    mem: dict[int, int] = defaultdict(int)
    mem.update(execution.instance.initial_values)
    violations: list[Violation] = []

    def mismatch(step, expected: int, observed: int, what: str) -> None:
        violations.append(
            Violation(
                kind="conformance",
                message=(
                    f"step {step.index} ({step.choice}, {what} addr "
                    f"{step.op.addr}): protocol observed {observed}, "
                    f"sequentially consistent reference expects {expected}"
                ),
            )
        )

    for step in execution.steps:
        if step.choice[0] != "core":
            continue  # evictions have no memory semantics
        op = step.op
        if isinstance(op, isa.SelfInvalidate):
            continue
        if not step.records:
            violations.append(
                Violation(
                    kind="conformance",
                    message=f"step {step.index} ({step.choice}) produced no "
                    f"trace record for {op!r}",
                )
            )
            continue
        record = step.records[-1]
        if isinstance(op, (isa.WaitLoad, isa.Load)):
            is_sync = op.sync
            if is_sync or options.check_data_loads:
                expected = mem[op.addr]
                if record.value != expected:
                    what = "sync read" if is_sync else "data read"
                    mismatch(step, expected, record.value, what)
        elif isinstance(op, isa.Store):
            mem[op.addr] = op.value
        elif isinstance(op, isa.Cas):
            if mem[op.addr] == op.expected:
                mem[op.addr] = op.new
            if record.value != mem[op.addr]:
                mismatch(step, mem[op.addr], record.value, "CAS post-value")
        elif isinstance(op, isa.Fai):
            mem[op.addr] = mem[op.addr] + op.delta
            if record.value != mem[op.addr]:
                mismatch(step, mem[op.addr], record.value, "FAI post-value")
        elif isinstance(op, isa.Swap):
            mem[op.addr] = op.value
            if record.value != mem[op.addr]:
                mismatch(step, mem[op.addr], record.value, "swap post-value")
    return mem, violations


def check_execution(execution: Execution, options: McOptions) -> list[Violation]:
    """All end-of-execution oracles; returns the violations found."""
    reference, violations = _interpret(execution, options)

    for addr in execution.instance.footprint:
        expected = reference[addr]
        observed = execution.final_memory.get(addr, 0)
        if observed != expected:
            violations.append(
                Violation(
                    kind="final-memory",
                    message=(
                        f"addr {addr}: final memory holds {observed}, "
                        f"reference expects {expected} (lost write)"
                    ),
                )
            )

    for failure in execution.instance.postcondition(dict(execution.final_memory)):
        violations.append(Violation(kind="postcondition", message=failure))

    try:
        execution.protocol.check_invariants()
    except AssertionError as exc:
        violations.append(Violation(kind="invariant", message=str(exc)))
    return violations
