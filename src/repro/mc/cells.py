"""Picklable (litmus × protocol × bound) cells for parallel exploration.

The ``mc`` CLI target fans its cells out through
:func:`repro.harness.parallel.run_tasks`; each cell is hermetic (the
explorer builds its own simulator per schedule), so a cell is just a
value object naming what to explore.  Violation handling — schedule
minimization and artifact export — happens inside the worker too, so the
outcome that travels back across the process boundary is plain data.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class McCell:
    """One model-checking work item."""

    test_name: str
    protocol: str
    bound: int | None = 2
    max_schedules: int = 20_000
    #: Directory for counterexample artifacts (None: do not export).
    out_dir: str | None = None
    #: Engine run loop for every execution (False: CLI ``--no-epoch``).
    epoch_mode: bool = True


@dataclass
class CellOutcome:
    """Picklable summary of one explored cell."""

    test_name: str
    protocol: str
    bound: int | None
    executions: int
    naive_estimate: int
    sleep_cuts: int
    bound_pruned: int
    max_depth: int
    truncated: bool
    violation_kind: str | None = None
    violation_message: str | None = None
    schedule_len: int = 0
    minimized_len: int = 0
    minimized_schedule: list | None = None
    artifact_path: str | None = None

    @property
    def ok(self) -> bool:
        return self.violation_kind is None

    @property
    def pruning_factor(self) -> float:
        if self.executions == 0:
            return 0.0
        return self.naive_estimate / self.executions

    def describe(self) -> str:
        bound = self.bound if self.bound is not None else "∞"
        line = (
            f"{self.test_name:10s} {self.protocol:12s} bound={bound}: "
            f"{self.executions:5d} executions (naive ~{self.naive_estimate}, "
            f"pruning {self.pruning_factor:.1f}x)"
        )
        if self.truncated:
            line += " [truncated]"
        if self.ok:
            return line + " — ok"
        line += (
            f" — VIOLATION [{self.violation_kind}] {self.violation_message}"
            f" (schedule {self.schedule_len} -> {self.minimized_len} choices"
        )
        if self.artifact_path:
            line += f", artifact {self.artifact_path}"
        return line + ")"


def run_cell(cell: McCell) -> CellOutcome:
    """Explore one cell (worker-process entry point)."""
    from repro.mc.artifact import export_counterexample
    from repro.mc.explorer import explore
    from repro.mc.litmus import CORPUS
    from repro.mc.minimize import minimize_schedule
    from repro.mc.runner import McOptions

    test = CORPUS[cell.test_name]
    options = McOptions(
        max_schedules=cell.max_schedules, epoch_mode=cell.epoch_mode
    )
    result = explore(test, cell.protocol, bound=cell.bound, options=options)
    outcome = CellOutcome(
        test_name=cell.test_name,
        protocol=cell.protocol,
        bound=cell.bound,
        executions=result.executions,
        naive_estimate=result.naive_estimate,
        sleep_cuts=result.sleep_cuts,
        bound_pruned=result.bound_pruned,
        max_depth=result.max_depth,
        truncated=result.truncated,
    )
    if result.violation is None:
        return outcome

    outcome.violation_kind = result.violation.kind
    outcome.violation_message = result.violation.message
    outcome.schedule_len = len(result.violating_schedule)
    minimized, execution = minimize_schedule(
        test, cell.protocol, result.violating_schedule,
        result.violation.kind, options,
    )
    outcome.minimized_len = len(minimized)
    outcome.minimized_schedule = [list(choice) for choice in minimized]
    if cell.out_dir is not None:
        violation = next(
            v for v in execution.violations if v.kind == result.violation.kind
        )
        path = export_counterexample(
            cell.out_dir,
            test_name=cell.test_name,
            protocol_name=cell.protocol,
            bound=cell.bound,
            schedule=minimized,
            violation=violation,
            execution=execution,
        )
        outcome.artifact_path = str(path)
    return outcome
