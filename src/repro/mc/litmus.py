"""The litmus-test corpus: small racy workloads for the model checker.

Each test builds 2–4 active threads over a handful of addresses — small
enough that the explorer can enumerate every interleaving within a
preemption bound, racy enough to exercise the protocol corners the paper
cares about: message passing through a flag, store buffering, CAS races,
lock handoff, barrier sense reversal, and Treiber push/pop.  Tests reuse
the real synchronization library (:mod:`repro.synclib`), so the checker
exercises the same op sequences the figures run at scale.

Every test declares a *postcondition* over final memory.  The checker
also verifies each execution against an interpreter-computed reference
(:mod:`repro.mc.oracle`), so postconditions only need to pin down the
program-level outcome (e.g. "both payload words observed as written").

``evict_targets`` lists ``(core, addr)`` pairs whose cache line the
explorer may evict as an *environment action* at any decision point
(budgeted by ``evict_budget``).  Evictions are how the PR-1 class of
bugs — dropping a sleeping spin-waiter's subscription on eviction — is
reachable at all: the waiter itself makes no accesses while asleep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from collections.abc import Callable, Generator

from repro.config import SystemConfig
from repro.cpu.isa import Cas, Fai, Load, SelfInvalidate, Store, WaitLoad
from repro.cpu.thread import ThreadCtx
from repro.mem.address import AddressMap
from repro.mem.regions import RegionAllocator
from repro.synclib.barriers import CentralBarrier
from repro.synclib.tatas import TatasLock
from repro.synclib.treiber import TreiberStack

#: Every litmus config uses this many cores (`config_for_cores` needs a
#: perfect square); tests with fewer threads leave the rest idle.
LITMUS_CORES = 4


def _idle() -> Generator:
    """A program that finishes immediately (filler for unused cores)."""
    return
    yield  # pragma: no cover — makes this a generator function


def _ctx(core_id: int, config: SystemConfig, allocator: RegionAllocator) -> ThreadCtx:
    """A deterministic ThreadCtx for synclib generators (RNG never drawn:
    litmus tests disable software backoff)."""
    return ThreadCtx(
        core_id=core_id,
        num_cores=config.num_cores,
        config=config,
        allocator=allocator,
        rng=random.Random(0),
    )


@dataclass
class LitmusInstance:
    """One built litmus test, ready for controlled execution."""

    name: str
    allocator: RegionAllocator
    programs: list[Generator]
    initial_values: dict[int, int] = field(default_factory=dict)
    #: Named addresses, for diagnostics and postconditions.
    addrs: dict[str, int] = field(default_factory=dict)
    #: Checked against final memory; returns failure descriptions.
    postcondition: Callable[[dict[int, int]], list[str]] = lambda mem: []
    #: (core, cache line) pairs the explorer may force-evict.
    evict_targets: tuple[tuple[int, int], ...] = ()
    evict_budget: int = 0

    @property
    def footprint(self) -> list[int]:
        """Every allocated word address (the final-memory check domain)."""
        return [addr for alloc in self.allocator.allocations for addr in alloc]


class LitmusTest:
    """A named, buildable litmus test."""

    name = "abstract"
    num_cores = LITMUS_CORES
    description = ""

    def build(self, config: SystemConfig) -> LitmusInstance:
        raise NotImplementedError


class MessagePassing(LitmusTest):
    """Core 0 writes a two-word payload then raises a flag with release;
    core 1 spin-waits on the flag with acquire, self-invalidates the
    payload region, and must observe both payload words as written."""

    name = "mp"
    description = "message passing through a release/acquire flag"

    def __init__(self, with_eviction: bool = False):
        self.with_eviction = with_eviction
        if with_eviction:
            self.name = "mp+evict"
            self.description += " (flag-line eviction as environment action)"

    def build(self, config: SystemConfig) -> LitmusInstance:
        allocator = RegionAllocator(AddressMap(config))
        data = allocator.alloc("mp.data", 2, line_align=True)
        data_region = data.region
        flag = allocator.alloc_sync("mp.flag").base
        res = allocator.alloc("mp.res", 2, line_align=True)

        def writer():
            yield Store(data.base, 41)
            yield Store(data.base + 1, 42)
            yield Store(flag, 1, sync=True, release=True)

        def reader():
            yield WaitLoad(flag, lambda v: v == 1, sync=True, acquire=True)
            yield SelfInvalidate((data_region,))
            a = yield Load(data.base)
            b = yield Load(data.base + 1)
            yield Store(res.base, a)
            yield Store(res.base + 1, b)

        def post(mem: dict[int, int]) -> list[str]:
            failures = []
            if mem[res.base] != 41 or mem[res.base + 1] != 42:
                failures.append(
                    f"reader observed payload ({mem[res.base]}, "
                    f"{mem[res.base + 1]}), expected (41, 42): stale read "
                    f"after acquire"
                )
            return failures

        programs = [writer(), reader()]
        programs += [_idle() for _ in range(config.num_cores - 2)]
        evict_targets: tuple[tuple[int, int], ...] = ()
        evict_budget = 0
        if self.with_eviction:
            # The reader's copy of the flag line — the line it subscribes
            # to while spin-sleeping.
            evict_targets = ((1, allocator.amap.line_of(flag)),)
            evict_budget = 1
        return LitmusInstance(
            name=self.name,
            allocator=allocator,
            programs=programs,
            addrs={"flag": flag, "d0": data.base, "d1": data.base + 1,
                   "r0": res.base, "r1": res.base + 1},
            postcondition=post,
            evict_targets=evict_targets,
            evict_budget=evict_budget,
        )


class StoreBuffering(LitmusTest):
    """The classic SB shape, two rounds: each core sync-stores its own
    word then sync-loads the other's.  Under a sequentially consistent
    memory at least one core per round must observe the other's store."""

    name = "sb"
    description = "store buffering: both-loads-zero is forbidden under SC"

    def build(self, config: SystemConfig) -> LitmusInstance:
        allocator = RegionAllocator(AddressMap(config))
        x = allocator.alloc_sync("sb.x").base
        y = allocator.alloc_sync("sb.y").base
        res = [allocator.alloc(f"sb.res{i}", 2, line_align=True) for i in range(2)]

        def worker(me: int, mine: int, other: int):
            for round_no in range(2):
                yield Store(mine, round_no + 1, sync=True)
                seen = yield Load(other, sync=True)
                yield Store(res[me].base + round_no, seen)

        def post(mem: dict[int, int]) -> list[str]:
            failures = []
            for round_no in range(2):
                a = mem[res[0].base + round_no]
                b = mem[res[1].base + round_no]
                if a < round_no and b < round_no:
                    failures.append(
                        f"round {round_no}: both cores read pre-round values "
                        f"({a}, {b}) — store buffering is forbidden under SC"
                    )
            if mem[x] != 2 or mem[y] != 2:
                failures.append(f"final x={mem[x]} y={mem[y]}, expected 2/2")
            return failures

        programs = [worker(0, x, y), worker(1, y, x)]
        programs += [_idle() for _ in range(config.num_cores - 2)]
        return LitmusInstance(
            name=self.name,
            allocator=allocator,
            programs=programs,
            addrs={"x": x, "y": y},
            postcondition=post,
        )


class CasRace(LitmusTest):
    """Three cores race a CAS on one word (exactly one must win) and a
    fetch-and-increment counter (observed pre-values must be a
    permutation of 0..2 and the final count exact)."""

    name = "cas"
    description = "3-way CAS race + FAI counter atomicity"

    def build(self, config: SystemConfig) -> LitmusInstance:
        allocator = RegionAllocator(AddressMap(config))
        winner = allocator.alloc_sync("cas.winner").base
        counter = allocator.alloc_sync("cas.counter").base
        res = [allocator.alloc(f"cas.res{i}", 2, line_align=True) for i in range(3)]

        def worker(me: int):
            old = yield Cas(winner, 0, me + 1)
            yield Store(res[me].base, 1 if old == 0 else 0)
            seen = yield Fai(counter)
            yield Store(res[me].base + 1, seen)

        def post(mem: dict[int, int]) -> list[str]:
            failures = []
            wins = [mem[res[i].base] for i in range(3)]
            if sum(wins) != 1:
                failures.append(f"CAS winners {wins}: exactly one must win")
            if mem[winner] not in (1, 2, 3):
                failures.append(f"winner word holds {mem[winner]}")
            if mem[counter] != 3:
                failures.append(f"counter {mem[counter]} != 3: lost increment")
            seen = sorted(mem[res[i].base + 1] for i in range(3))
            if seen != [0, 1, 2]:
                failures.append(f"FAI pre-values {seen} != [0, 1, 2]")
            return failures

        programs = [worker(0), worker(1), worker(2)]
        programs += [_idle() for _ in range(config.num_cores - 3)]
        return LitmusInstance(
            name=self.name,
            allocator=allocator,
            programs=programs,
            addrs={"winner": winner, "counter": counter},
            postcondition=post,
        )


class LockHandoff(LitmusTest):
    """Two cores take a TATAS lock twice each and increment a protected
    data counter inside the critical section; mutual exclusion and
    release/acquire visibility make the final count exact."""

    name = "lock"
    description = "TATAS lock handoff guarding a data counter"

    ITERATIONS = 2

    def build(self, config: SystemConfig) -> LitmusInstance:
        allocator = RegionAllocator(AddressMap(config))
        lock = TatasLock(allocator, name="lock.tatas", software_backoff=False)
        count_alloc = allocator.alloc("lock.data", 1, line_align=True)
        count = count_alloc.base
        data_region = count_alloc.region

        def worker(me: int):
            for _ in range(self.ITERATIONS):
                yield from lock.acquire()
                yield SelfInvalidate((data_region,))
                value = yield Load(count)
                yield Store(count, value + 1)
                yield from lock.release()

        def post(mem: dict[int, int]) -> list[str]:
            failures = []
            expected = 2 * self.ITERATIONS
            if mem[count] != expected:
                failures.append(
                    f"counter {mem[count]} != {expected}: lost update under "
                    f"the lock (mutual-exclusion or visibility failure)"
                )
            if mem[lock.addr] != 0:
                failures.append(f"lock still held ({mem[lock.addr]}) at exit")
            return failures

        programs = [worker(0), worker(1)]
        programs += [_idle() for _ in range(config.num_cores - 2)]
        return LitmusInstance(
            name=self.name,
            allocator=allocator,
            programs=programs,
            addrs={"lock": lock.addr, "count": count},
            postcondition=post,
        )


class BarrierSenseReversal(LitmusTest):
    """Two cores cross a centralized sense-reversing barrier twice, each
    publishing a data word before the first crossing and reading the
    other's after it."""

    name = "barrier"
    description = "central sense-reversing barrier, two episodes"

    def build(self, config: SystemConfig) -> LitmusInstance:
        allocator = RegionAllocator(AddressMap(config))
        barrier = CentralBarrier(allocator, 2, name="bar")
        slots = [allocator.alloc(f"bar.slot{i}", 1, line_align=True)
                 for i in range(2)]
        res = [allocator.alloc(f"bar.res{i}", 1, line_align=True).base
               for i in range(2)]

        def worker(me: int):
            ctx = _ctx(me, config, allocator)
            yield Store(slots[me].base, 10 + me)
            yield from barrier.wait(ctx, 1)
            yield SelfInvalidate((slots[0].region, slots[1].region))
            seen = yield Load(slots[1 - me].base)
            yield Store(res[me], seen)
            yield from barrier.wait(ctx, 2)

        def post(mem: dict[int, int]) -> list[str]:
            failures = []
            if mem[res[0]] != 11 or mem[res[1]] != 10:
                failures.append(
                    f"post-barrier reads ({mem[res[0]]}, {mem[res[1]]}), "
                    f"expected (11, 10): write not visible across barrier"
                )
            if mem[barrier.count] != 0:
                failures.append(f"barrier count {mem[barrier.count]} != 0")
            if mem[barrier.sense] != 2:
                failures.append(f"barrier sense {mem[barrier.sense]} != 2")
            return failures

        programs = [worker(0), worker(1)]
        programs += [_idle() for _ in range(config.num_cores - 2)]
        return LitmusInstance(
            name=self.name,
            allocator=allocator,
            programs=programs,
            addrs={"count": barrier.count, "sense": barrier.sense},
            postcondition=post,
        )


class TreiberPushPop(LitmusTest):
    """Two cores each push one value onto a shared Treiber stack and pop
    once; lock-freedom and CAS linearization make the stack empty at the
    end with the popped values a permutation of the pushed ones."""

    name = "treiber"
    description = "Treiber stack concurrent push/pop"

    def build(self, config: SystemConfig) -> LitmusInstance:
        allocator = RegionAllocator(AddressMap(config))
        stack = TreiberStack(
            allocator, nodes_per_thread=1, nthreads=2, name="tr",
            software_backoff=False,
        )
        res = [allocator.alloc(f"tr.res{i}", 1, line_align=True).base
               for i in range(2)]

        def worker(me: int):
            ctx = _ctx(me, config, allocator)
            yield from stack.push(ctx, 100 + me)
            value = yield from stack.pop(ctx)
            yield Store(res[me], value if value is not None else -1)

        def post(mem: dict[int, int]) -> list[str]:
            failures = []
            if mem[stack.top] != 0:
                failures.append(
                    f"stack not empty at exit (top={mem[stack.top]})"
                )
            popped = sorted(mem[r] for r in res)
            if popped != [100, 101]:
                failures.append(
                    f"popped values {popped} != [100, 101] (lost or "
                    f"duplicated node)"
                )
            return failures

        programs = [worker(0), worker(1)]
        programs += [_idle() for _ in range(config.num_cores - 2)]
        return LitmusInstance(
            name=self.name,
            allocator=allocator,
            programs=programs,
            addrs={"top": stack.top},
            postcondition=post,
        )


def _corpus() -> dict[str, LitmusTest]:
    tests = [
        MessagePassing(),
        MessagePassing(with_eviction=True),
        StoreBuffering(),
        CasRace(),
        LockHandoff(),
        BarrierSenseReversal(),
        TreiberPushPop(),
    ]
    return {test.name: test for test in tests}


#: The litmus corpus, keyed by test name.
CORPUS: dict[str, LitmusTest] = _corpus()
