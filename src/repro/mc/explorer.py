"""Stateless DFS over schedules with DPOR and preemption bounding.

The explorer repeatedly calls :func:`repro.mc.runner.run_schedule` with a
forced prefix, maintaining one :class:`Frame` per decision point of the
current path:

* **Persistent/backtrack sets** (Flanagan–Godefroid dynamic partial-order
  reduction): after each execution, for every step *j* find the latest
  earlier step *i* by a different actor that is *dependent* with it
  (same cache line, at least one side mutating — see
  :func:`repro.mc.runner.dependent`); step *j*'s actor must also be tried
  at decision *i*.  If it was not enabled there, conservatively add all
  enabled choices.
* **Sleep sets**: when the DFS moves from one branch of a frame to the
  next, the explored choice goes to sleep; executions inherit the sleep
  set forward (waking entries on dependent steps) and abandon a
  continuation whose runnable choices are all asleep (``sleep_cut`` —
  its behaviors were already explored).
* **Preemption bounding** (CHESS-style): a branch choice that preempts —
  switches away from the previous core while it is still runnable — is
  only taken while the path's preemption count is below the bound, so
  exploration effort concentrates on few-preemption schedules and the
  bound can be raised iteratively (:func:`explore_iterative`).  With
  ``bound=None`` exploration is exhaustive (up to DPOR equivalence).
* **Eviction branches**: enabled eviction choices (environment actions,
  see :mod:`repro.mc.litmus`) are added to each new frame's backtrack set
  outright — they race with everything on their line by construction.

Exploration is *anytime*: ``max_schedules`` truncates the search while
keeping every result found so far.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Callable

from repro.mc.litmus import LitmusTest
from repro.mc.runner import (
    Choice,
    Execution,
    McOptions,
    StepInfo,
    dependent,
    run_schedule,
)


@dataclass
class Frame:
    """One decision point of the current DFS path."""

    enabled: tuple[Choice, ...]
    info: dict  # choice -> StepInfo, for every enabled choice
    chosen: Choice
    done: set = field(default_factory=set)
    backtrack: set = field(default_factory=set)
    sleep: dict = field(default_factory=dict)  # choice -> StepInfo
    bound_blocked: set = field(default_factory=set)
    last_core_before: int | None = None
    preemptions_before: int = 0

    @property
    def step_info(self) -> StepInfo:
        return self.info[self.chosen]


@dataclass
class ExploreResult:
    """Outcome of exploring one (litmus, protocol, bound) cell."""

    test_name: str
    protocol_name: str
    bound: int | None
    executions: int = 0
    sleep_cuts: int = 0
    bound_pruned: int = 0
    max_depth: int = 0
    #: Naive interleaving count: multinomial over the per-core visible-op
    #: counts of the first (default-schedule) execution.  The DPOR pruning
    #: factor reported per cell is ``naive_estimate / executions``.
    naive_estimate: int = 0
    truncated: bool = False
    violation: object | None = None  # first Violation found, if any
    violating_schedule: list | None = None
    violating_execution: Execution | None = None

    @property
    def pruning_factor(self) -> float:
        if self.executions == 0:
            return 0.0
        return self.naive_estimate / self.executions

    def describe(self) -> str:
        status = (
            f"VIOLATION {self.violation.kind}" if self.violation else "ok"
        )
        return (
            f"{self.test_name:10s} {self.protocol_name:12s} "
            f"bound={self.bound if self.bound is not None else '∞'}: "
            f"{self.executions} executions (naive ~{self.naive_estimate}, "
            f"pruning {self.pruning_factor:.1f}x, {self.sleep_cuts} sleep "
            f"cuts, {self.bound_pruned} bound-pruned) — {status}"
        )


def _naive_interleavings(op_counts: dict[int, int]) -> int:
    """Multinomial: interleavings of the per-core visible-op sequences."""
    total = sum(op_counts.values())
    result = 1
    remaining = total
    for count in op_counts.values():
        result *= math.comb(remaining, count)
        remaining -= count
    return result


def _frames_from(execution: Execution, start: int) -> list[Frame]:
    """Build frames for the steps of ``execution`` from index ``start``."""
    frames = []
    for step in execution.steps[start:]:
        frame = Frame(
            enabled=step.enabled,
            info=step.enabled_info,
            chosen=step.choice,
            last_core_before=step.last_core_before,
            preemptions_before=0,  # filled below by the caller
        )
        frame.done.add(step.choice)
        # Environment actions are explored outright: an eviction races
        # with every access to its line by construction.
        for choice in step.enabled:
            if choice[0] == "evict":
                frame.backtrack.add(choice)
        frames.append(frame)
    return frames


def _update_races(frames: list[Frame]) -> None:
    """DPOR race analysis over the whole path (idempotent set updates)."""
    for j in range(len(frames)):
        info_j = frames[j].step_info
        for i in range(j - 1, -1, -1):
            info_i = frames[i].step_info
            if info_i.actor == info_j.actor:
                continue
            if not dependent(info_i, info_j):
                continue
            # Latest racing step found: step j's actor must also run at
            # decision i (or, if it was not enabled there, everything).
            candidate = info_j.actor
            frame = frames[i]
            if candidate in frame.enabled and candidate not in frame.sleep:
                frame.backtrack.add(candidate)
            else:
                frame.backtrack.update(
                    choice for choice in frame.enabled
                    if choice not in frame.sleep
                )
            break


def _preemptive(frame: Frame, choice: Choice) -> bool:
    return (
        choice[0] == "core"
        and frame.last_core_before is not None
        and choice[1] != frame.last_core_before
        and ("core", frame.last_core_before) in frame.enabled
    )


def explore(
    test: LitmusTest,
    protocol_name: str,
    *,
    bound: int | None = 2,
    options: McOptions | None = None,
    on_execution: Callable[[Execution], None] | None = None,
) -> ExploreResult:
    """Explore ``test`` under ``protocol_name`` up to ``bound`` preemptions.

    Stops at the first violation (after recording its schedule); otherwise
    runs until the DFS is exhausted or ``options.max_schedules`` is hit.
    ``on_execution`` observes every completed, violation-free execution
    (the formal divergence oracle replays them against the model).
    """
    options = options or McOptions()
    result = ExploreResult(
        test_name=test.name, protocol_name=protocol_name, bound=bound,
    )

    path: list[Frame] = []
    forced: list[Choice] = []
    branch_sleep: dict = {}

    while True:
        execution = run_schedule(
            test, protocol_name, forced=forced, branch_sleep=branch_sleep,
            options=options,
        )
        result.executions += 1
        if result.naive_estimate == 0 and execution.op_counts:
            result.naive_estimate = _naive_interleavings(execution.op_counts)
        if execution.sleep_cut:
            result.sleep_cuts += 1
        result.max_depth = max(result.max_depth, len(execution.steps))

        if execution.violations:
            result.violation = execution.violations[0]
            result.violating_schedule = list(execution.schedule)
            result.violating_execution = execution
            return result
        if on_execution is not None and execution.completed:
            on_execution(execution)

        # Extend the path with frames for the new suffix and set their
        # preemption counters from the executed steps.
        new_frames = _frames_from(execution, len(path))
        preemptions = path[-1].preemptions_before if path else 0
        if path:
            preemptions += 1 if _preemptive(path[-1], path[-1].chosen) else 0
        for frame, step in zip(new_frames, execution.steps[len(path):]):
            frame.preemptions_before = preemptions
            if step.preemptive:
                preemptions += 1
        path.extend(new_frames)
        _update_races(path)

        if result.executions >= options.max_schedules:
            result.truncated = True
            return result

        # Backtrack: find the deepest frame with an unexplored candidate.
        while path:
            frame = path[-1]
            candidates = sorted(
                choice
                for choice in frame.backtrack
                if choice not in frame.done
                and choice not in frame.sleep
                and choice not in frame.bound_blocked
            )
            chosen_next = None
            for candidate in candidates:
                if (
                    bound is not None
                    and _preemptive(frame, candidate)
                    and frame.preemptions_before >= bound
                ):
                    frame.bound_blocked.add(candidate)
                    result.bound_pruned += 1
                    continue
                chosen_next = candidate
                break
            if chosen_next is None:
                path.pop()
                continue
            # Put the just-finished branch to sleep and take the new one.
            frame.sleep[frame.chosen] = frame.info[frame.chosen]
            frame.chosen = chosen_next
            frame.done.add(chosen_next)
            forced = [f.chosen for f in path]
            branch_sleep = dict(frame.sleep)
            break
        else:
            return result  # DFS exhausted


def explore_iterative(
    test: LitmusTest,
    protocol_name: str,
    *,
    bounds: tuple[int, ...] = (0, 1, 2),
    options: McOptions | None = None,
) -> list[ExploreResult]:
    """CHESS-style iterative bounding: explore at each bound in turn,
    stopping early at the first violation (anytime behavior: shallow
    bounds give fast feedback, deeper bounds add coverage)."""
    results = []
    for bound in bounds:
        result = explore(test, protocol_name, bound=bound, options=options)
        results.append(result)
        if result.violation is not None:
            break
    return results
