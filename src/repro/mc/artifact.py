"""Replayable counterexample artifacts.

A counterexample is exported as two files:

* ``<name>.json`` — the schedule (choice labels), the violation, and
  enough metadata to rebuild the cell (litmus name, protocol, bound);
* ``<name>.trace.jsonl`` — the access trace of the violating execution
  in the versioned :mod:`repro.trace.events` format.

:func:`replay_counterexample` rebuilds the cell from the JSON alone,
re-runs the schedule (tolerantly, so artifacts survive small simulator
changes), and verifies both that a violation of the recorded kind
recurs and that the access trace matches the recorded one record for
record — the determinism proof the CLI prints.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.mc.litmus import CORPUS
from repro.mc.runner import Choice, Execution, McOptions, Violation, run_schedule
from repro.trace.events import read_trace, write_trace

ARTIFACT_VERSION = 1


def export_counterexample(
    out_dir,
    *,
    test_name: str,
    protocol_name: str,
    bound: int | None,
    schedule: list[Choice],
    violation: Violation,
    execution: Execution,
) -> Path:
    """Write the artifact pair; returns the path of the JSON file."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    stem = f"{test_name.replace('+', '_')}-{protocol_name}-cex"
    trace_path = out_dir / f"{stem}.trace.jsonl"
    write_trace(execution.trace, trace_path)
    payload = {
        "mc_artifact_version": ARTIFACT_VERSION,
        "test": test_name,
        "protocol": protocol_name,
        "bound": bound,
        "schedule": [list(choice) for choice in schedule],
        "violation": {"kind": violation.kind, "message": violation.message},
        "dump": violation.dump,
        "steps": len(execution.steps),
        "trace_file": trace_path.name,
    }
    json_path = out_dir / f"{stem}.json"
    json_path.write_text(json.dumps(payload, indent=2) + "\n")
    return json_path


def load_counterexample(path) -> dict:
    """Load an artifact JSON; schedule entries come back as tuples."""
    path = Path(path)
    payload = json.loads(path.read_text())
    version = payload.get("mc_artifact_version")
    if version != ARTIFACT_VERSION:
        raise ValueError(f"unsupported mc artifact version: {version!r}")
    payload["schedule"] = [tuple(choice) for choice in payload["schedule"]]
    payload["_path"] = path
    return payload


@dataclass
class ReplayReport:
    """Outcome of replaying a counterexample artifact."""

    reproduced: bool  # a violation of the recorded kind recurred
    trace_identical: bool  # access trace matches the artifact's
    violation: Violation | None
    execution: Execution

    def describe(self) -> str:
        if self.reproduced and self.trace_identical:
            return "reproduced deterministically (violation + identical trace)"
        if self.reproduced:
            return "violation reproduced but the trace diverged"
        return "FAILED to reproduce the recorded violation"


def replay_counterexample(
    path, options: McOptions | None = None
) -> tuple[dict, ReplayReport]:
    """Replay the artifact at ``path``; returns (payload, report)."""
    payload = load_counterexample(path)
    test = CORPUS[payload["test"]]
    execution = run_schedule(
        test,
        payload["protocol"],
        forced=payload["schedule"],
        options=options,
        tolerant=True,
    )
    kind = payload["violation"]["kind"]
    violation = next(
        (v for v in execution.violations if v.kind == kind), None
    )
    recorded = read_trace(payload["_path"].parent / payload["trace_file"])
    report = ReplayReport(
        reproduced=violation is not None,
        trace_identical=execution.trace == recorded,
        violation=violation,
        execution=execution,
    )
    return payload, report
