"""The receiving end of the core scheduling hook.

With ``Simulator.controller`` set to a :class:`ScheduleController`, every
:class:`~repro.cpu.core.Core` *gates* before issuing a visible memory
operation (loads, stores, RMWs, self-invalidations, and every individual
spin probe): instead of touching the protocol it calls :meth:`arrive`
with a continuation and goes quiet.  Draining the event queue then
reaches quiescence with every unfinished core either parked here or
asleep on a protocol subscription — at which point the caller picks one
parked core, :meth:`release`\\ s it, and drains again.  Exactly one core
performs protocol work per release, which is what lets the model checker
serialize, attribute, and enumerate interleavings of visible operations.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable


@dataclass
class GatedOp:
    """One core parked at a decision point: its pending op + continuation."""

    core: object  # repro.cpu.core.Core (untyped to avoid an import cycle)
    op: object  # the ISA operation about to issue
    cont: Callable[[], None]


class ScheduleController:
    """Collects gated cores and releases them one at a time."""

    def __init__(self) -> None:
        self._parked: dict[int, GatedOp] = {}
        #: Total arrivals observed (diagnostic).
        self.arrivals = 0

    def arrive(self, core, op, cont: Callable[[], None]) -> None:
        """Called by a core at a visible-operation boundary."""
        if core.core_id in self._parked:
            raise RuntimeError(
                f"core {core.core_id} gated twice without a release"
            )
        self._parked[core.core_id] = GatedOp(core=core, op=op, cont=cont)
        self.arrivals += 1

    @property
    def parked(self) -> dict[int, GatedOp]:
        """The currently parked cores, keyed by core id (do not mutate)."""
        return self._parked

    def release(self, core_id: int) -> GatedOp:
        """Un-park ``core_id``: grant its one-shot token and reschedule its
        continuation.  The caller must drain the event queue afterwards."""
        gated = self._parked.pop(core_id)
        core = gated.core
        core._release_granted = True
        core.sim.schedule_after(0, gated.cont)
        return gated
