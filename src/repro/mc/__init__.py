"""Model checking: exhaustive interleaving exploration for the protocols.

The subsystem runs small litmus workloads (:mod:`repro.mc.litmus`) under
*controlled* scheduling: with ``Simulator.controller`` set, every core
parks at each visible memory-operation boundary and a
:class:`~repro.mc.controller.ScheduleController` decides which core
issues next.  The exploration driver (:mod:`repro.mc.explorer`) performs
a stateless DFS over schedules with dynamic partial-order reduction
(persistent/sleep sets keyed on cache-line conflicts) and CHESS-style
iterative preemption bounding; safety oracles (:mod:`repro.mc.oracle`)
check runtime coherence invariants, per-execution conformance against an
interpreter-computed sequentially-consistent reference, final memory,
and each litmus test's postcondition.  On violation the failing schedule
is minimized (:mod:`repro.mc.minimize`) and exported as a replayable
artifact (:mod:`repro.mc.artifact`).
"""

from repro.mc.controller import ScheduleController
from repro.mc.explorer import ExploreResult, explore, explore_iterative
from repro.mc.litmus import CORPUS, LitmusTest
from repro.mc.runner import Execution, McOptions, Violation, run_schedule

__all__ = [
    "CORPUS",
    "Execution",
    "ExploreResult",
    "LitmusTest",
    "McOptions",
    "ScheduleController",
    "Violation",
    "explore",
    "explore_iterative",
    "run_schedule",
]
