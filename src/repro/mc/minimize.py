"""Greedy counterexample minimization.

A violating schedule found by the explorer usually carries incidental
choices (default-policy tail steps, unrelated cores' progress).  The
minimizer shrinks it by *tolerant* replay — forced choices that are not
enabled are skipped rather than failing — accepting a candidate schedule
only if it still triggers a violation of the same kind:

1. **Prefix truncation**: find the shortest prefix that reproduces (the
   default policy fills in the rest of the execution).
2. **Delta deletion**: repeatedly drop single choices while the
   violation persists, to a fixpoint.

Both phases only ever *remove* choices, so the result is a subsequence
of the original schedule and replays deterministically.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.mc.litmus import LitmusTest
from repro.mc.runner import Choice, Execution, McOptions, run_schedule


def reproduces(
    test: LitmusTest,
    protocol_name: str,
    schedule: Sequence[Choice],
    kind: str,
    options: McOptions | None = None,
) -> Execution | None:
    """Tolerantly replay ``schedule``; return the execution if it ends in
    a violation of ``kind``, else None."""
    execution = run_schedule(
        test, protocol_name, forced=schedule, options=options, tolerant=True
    )
    if any(v.kind == kind for v in execution.violations):
        return execution
    return None


def minimize_schedule(
    test: LitmusTest,
    protocol_name: str,
    schedule: Sequence[Choice],
    kind: str,
    options: McOptions | None = None,
) -> tuple[list[Choice], Execution]:
    """Shrink ``schedule`` while a ``kind`` violation still reproduces.

    Returns ``(minimized_schedule, execution)`` where ``execution`` is the
    replay of the minimized schedule.  If the input schedule does not
    reproduce at all (it should), it is returned unchanged with its
    replay execution.
    """
    schedule = list(schedule)
    best = reproduces(test, protocol_name, schedule, kind, options)
    if best is None:
        return schedule, run_schedule(
            test, protocol_name, forced=schedule, options=options,
            tolerant=True,
        )

    # Phase 1: shortest reproducing prefix (linear scan — schedules are
    # litmus-sized and reproduction need not be monotone in the length).
    for length in range(len(schedule) + 1):
        execution = reproduces(
            test, protocol_name, schedule[:length], kind, options
        )
        if execution is not None:
            schedule = schedule[:length]
            best = execution
            break

    # Phase 2: single-choice deletion to a fixpoint.
    changed = True
    while changed:
        changed = False
        i = 0
        while i < len(schedule):
            candidate = schedule[:i] + schedule[i + 1:]
            execution = reproduces(
                test, protocol_name, candidate, kind, options
            )
            if execution is not None:
                schedule = candidate
                best = execution
                changed = True
            else:
                i += 1
    return schedule, best
