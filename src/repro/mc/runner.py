"""Controlled execution of one litmus test under one schedule.

:func:`run_schedule` builds a litmus instance, arms the scheduling hook
(``Simulator.controller``), and serializes the execution into *steps*:
at each quiescent point every unfinished core is either parked at its
next visible operation or asleep on a protocol subscription; the runner
picks one **choice** — release a parked core, or force-evict a cache
line as an environment action — executes it, and drains the event queue
back to quiescence.  A schedule is the sequence of choice labels, which
is all that is needed to reproduce an execution deterministically.

Choice labels:

* ``("core", core_id)`` — release core ``core_id``'s pending operation;
* ``("evict", core_id, line)`` — force-evict ``line`` from ``core_id``'s
  L1 (only offered for the litmus test's declared ``evict_targets``,
  within its ``evict_budget``).

A demonic scheduler could spin a waiter forever, so enabled sets apply a
*spin fairness* filter: a core whose pending operation is a spin probe is
deferred after ``spin_retry_limit`` consecutive probes of the same line,
until some write (store/RMW/evict) touches that line again.  If only
deferred spinners remain runnable the execution is declared a livelock;
if no core is runnable at all with unfinished cores, a deadlock.  Both
violations carry a rendered :class:`~repro.harness.diagnostics.DiagnosticDump`.

Safety oracles run on every completed execution: full-level runtime
coherence invariants (armed via ``SystemConfig.invariant_level``),
per-access conformance against an interpreter-computed sequentially
consistent reference, a final-memory sweep over the footprint, and the
litmus test's own postcondition (see :mod:`repro.mc.oracle`).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.config import config_for_cores
from repro.cpu import isa
from repro.cpu.core import Core
from repro.mc.controller import ScheduleController
from repro.mc.litmus import LitmusInstance, LitmusTest
from repro.mem.address import AddressMap
from repro.protocols import make_protocol
from repro.protocols.invariants import InvariantViolation
from repro.sim.engine import Simulator
from repro.trace.events import AccessRecord
from repro.trace.recorder import TracingProtocol

Choice = tuple  # ("core", core_id) | ("evict", core_id, line)


@dataclass(frozen=True)
class StepInfo:
    """What a (potential) step touches, for the dependence relation.

    ``lines`` is the set of cache lines accessed (None = all lines, the
    flush-all self-invalidation).  ``mutating`` marks accesses that can
    change globally visible protocol state: writes, RMWs, evictions, and
    *sync* reads (a DeNovo sync read registers — it steals state).
    """

    actor: Choice
    core: int | None
    lines: frozenset | None
    mutating: bool


def dependent(a: StepInfo, b: StepInfo) -> bool:
    """The DPOR dependence relation: same-core program order, or a
    cache-line conflict with at least one mutating access."""
    if a.core is not None and a.core == b.core:
        return True
    if not (a.mutating or b.mutating):
        return False
    if a.lines is None or b.lines is None:
        return True
    return bool(a.lines & b.lines)


@dataclass
class Violation:
    """One safety-oracle failure."""

    kind: str  # invariant | conformance | final-memory | postcondition |
    #            deadlock | livelock | step-limit
    message: str
    dump: str | None = None  # rendered DiagnosticDump, if any

    def describe(self) -> str:
        return f"[{self.kind}] {self.message}"


@dataclass
class Step:
    """One executed scheduling choice."""

    index: int
    choice: Choice
    op: object  # the ISA op (None for evict steps)
    info: StepInfo
    #: Fair enabled choices at this decision point (pre-sleep-filter).
    enabled: tuple[Choice, ...]
    #: StepInfo for every enabled choice (for DPOR frames).
    enabled_info: dict
    #: Core that executed the previous core step (None at the start).
    last_core_before: int | None
    preemptive: bool
    #: Trace records produced by this step (usually exactly one).
    records: tuple[AccessRecord, ...]


@dataclass
class McOptions:
    """Knobs of a controlled execution / exploration."""

    preemption_bound: int | None = 2
    spin_retry_limit: int = 3
    max_steps: int = 600
    max_drain_events: int = 200_000
    max_schedules: int = 20_000
    check_data_loads: bool = True
    #: Engine run loop: epoch execution (default) or the reference
    #: per-event loop (CLI ``--no-epoch``).  Explorations are identical
    #: either way — the controller sees the same (cycle, seq) order.
    epoch_mode: bool = True


@dataclass
class Execution:
    """The outcome of one controlled execution."""

    test_name: str
    protocol_name: str
    steps: list[Step]
    violations: list[Violation]
    completed: bool  # every core ran to completion
    sleep_cut: bool  # abandoned: all runnable choices were in the sleep set
    preemptions: int
    op_counts: dict[int, int]  # visible ops executed per core
    final_memory: dict[int, int]
    trace: list[AccessRecord]
    instance: LitmusInstance
    protocol: object  # the TracingProtocol wrapper (in-process use only)
    skipped_forced: int = 0  # tolerant replay: forced choices not enabled

    @property
    def schedule(self) -> list[Choice]:
        return [step.choice for step in self.steps]

    @property
    def ok(self) -> bool:
        return not self.violations


class ScheduleDivergence(RuntimeError):
    """A forced choice was not enabled at replay (internal error unless
    the caller asked for tolerant replay)."""


def _op_info(core_id: int, op, amap: AddressMap, region_lines: dict) -> StepInfo:
    """StepInfo for a core's pending ISA operation."""
    actor = ("core", core_id)
    if isinstance(op, isa.SelfInvalidate):
        if op.flush_all:
            lines: frozenset | None = None
        else:
            lines = frozenset().union(
                *(region_lines.get(region.region_id, frozenset())
                  for region in op.regions)
            ) if op.regions else frozenset()
        # Read-like: reorderable with other reads, conflicts with writes
        # to the invalidated lines (they change what later reads observe).
        return StepInfo(actor=actor, core=core_id, lines=lines, mutating=False)
    line = frozenset((amap.line_of(op.addr),))
    if isinstance(op, (isa.Store, isa.Cas, isa.Fai, isa.Swap)):
        return StepInfo(actor=actor, core=core_id, lines=line, mutating=True)
    if isinstance(op, isa.WaitLoad):
        # Every probe is a sync read: registering (state-stealing) under
        # DeNovo, hence mutating.
        return StepInfo(actor=actor, core=core_id, lines=line, mutating=True)
    if isinstance(op, isa.Load):
        return StepInfo(actor=actor, core=core_id, lines=line, mutating=op.sync)
    raise TypeError(f"unexpected gated op {op!r}")


def _evict_info(core_id: int, line: int) -> StepInfo:
    return StepInfo(
        actor=("evict", core_id, line), core=core_id,
        lines=frozenset((line,)), mutating=True,
    )


def _region_lines(instance: LitmusInstance, amap: AddressMap) -> dict:
    """region_id -> frozenset of cache lines holding its words."""
    lines: dict[int, set] = {}
    for alloc in instance.allocator.allocations:
        bucket = lines.setdefault(alloc.region.region_id, set())
        for addr in alloc:
            bucket.add(amap.line_of(addr))
    return {rid: frozenset(bucket) for rid, bucket in lines.items()}


def _is_write_kind(info: StepInfo, op) -> bool:
    """Steps that can change a spun-on *value* (spin-fairness resets)."""
    if info.actor[0] == "evict":
        return True
    return isinstance(op, (isa.Store, isa.Cas, isa.Fai, isa.Swap))


def run_schedule(
    test: LitmusTest,
    protocol_name: str,
    *,
    forced: Sequence[Choice] = (),
    branch_sleep: dict | None = None,
    options: McOptions | None = None,
    tolerant: bool = False,
) -> Execution:
    """Execute ``test`` under ``protocol_name`` with the given schedule.

    ``forced`` pins the first ``len(forced)`` choices (the DFS prefix);
    after that a deterministic default policy continues: keep running the
    last core while it is enabled, else the lowest-id enabled core, never
    an eviction.  ``branch_sleep`` is the DPOR sleep set in force at the
    last forced decision; it is inherited forward (filtered by
    independence with each executed step) and used to prune default
    continuations — if every runnable choice is asleep the execution is
    abandoned with ``sleep_cut`` (its behaviors were already explored).

    With ``tolerant`` a forced choice that is not enabled is skipped
    instead of raising :class:`ScheduleDivergence` (used by schedule
    minimization and counterexample replay).
    """
    options = options or McOptions()
    config = config_for_cores(test.num_cores, invariant_level="full")
    amap = AddressMap(config)
    instance = test.build(config)
    protocol = TracingProtocol(make_protocol(protocol_name, config, instance.allocator))
    for addr, value in instance.initial_values.items():
        protocol.memory.write(addr, value)

    sim = Simulator()
    sim.epoch_mode = options.epoch_mode
    controller = ScheduleController()
    sim.controller = controller
    cores = [Core(core_id, sim, protocol) for core_id in range(config.num_cores)]
    for core, program in zip(cores, instance.programs):
        core.start(program)

    region_lines = _region_lines(instance, amap)
    steps: list[Step] = []
    violations: list[Violation] = []
    completed = False
    sleep_cut = False
    skipped_forced = 0
    preemptions = 0
    last_core: int | None = None
    evicts_used = 0
    probes: dict[tuple[int, int], int] = {}  # (core, line) -> consecutive probes
    just_reset = False
    branch_index = max(0, len(forced) - 1)
    active_sleep: dict[Choice, StepInfo] = dict(branch_sleep or {})

    def drain() -> Violation | None:
        try:
            sim.run(max_events=options.max_drain_events)
        except InvariantViolation as exc:
            return Violation(kind="invariant", message=str(exc))
        except RuntimeError as exc:  # max_events exceeded
            return Violation(kind="step-limit", message=str(exc))
        return None

    def make_dump(reason: str) -> str:
        from repro.harness.diagnostics import build_dump

        return build_dump(sim, cores, protocol, reason).render()

    def spin_deferred(core_id: int, op) -> bool:
        if not isinstance(op, isa.WaitLoad):
            return False
        key = (core_id, amap.line_of(op.addr))
        return probes.get(key, 0) >= options.spin_retry_limit

    def fair_enabled() -> dict:
        """Enabled choices (deterministic order) after spin fairness and
        the eviction budget."""
        choices: dict[Choice, StepInfo] = {}
        for core_id in sorted(controller.parked):
            gated = controller.parked[core_id]
            if spin_deferred(core_id, gated.op):
                continue
            choices[("core", core_id)] = _op_info(
                core_id, gated.op, amap, region_lines
            )
        if evicts_used < instance.evict_budget:
            for target_core, target_line in instance.evict_targets:
                if target_line in protocol.debug_resident_lines(target_core):
                    choices[("evict", target_core, target_line)] = _evict_info(
                        target_core, target_line
                    )
        return choices

    violation = drain()  # run to the first quiescent point
    index = 0
    while violation is None:
        if all(core.done for core in cores):
            completed = True
            break
        if len(steps) >= options.max_steps:
            violation = Violation(
                kind="step-limit",
                message=f"execution exceeded max_steps={options.max_steps}",
                dump=make_dump("step limit"),
            )
            break
        enabled = fair_enabled()
        core_choices = [c for c in enabled if c[0] == "core"]
        forced_choice = forced[index] if index < len(forced) else None

        if forced_choice is not None and forced_choice not in enabled:
            if not tolerant:
                raise ScheduleDivergence(
                    f"forced choice {forced_choice} not enabled at step "
                    f"{index} (enabled: {sorted(enabled)})"
                )
            skipped_forced += 1
            index += 1
            continue

        if forced_choice is not None:
            choice = forced_choice
        elif not core_choices:
            # No runnable core.  A one-shot probe-counter reset covers the
            # case where only deferred spinners remain but a sleeping core
            # could still be woken by a probe's registration steal.
            sleeping = any(
                not core.done and core.core_id not in controller.parked
                for core in cores
            )
            if controller.parked and sleeping and not just_reset:
                probes.clear()
                just_reset = True
                continue
            if controller.parked:
                violation = Violation(
                    kind="livelock",
                    message="only spin probes remain runnable and no write "
                    "can change their lines",
                    dump=make_dump("schedule livelock"),
                )
            else:
                violation = Violation(
                    kind="deadlock",
                    message="no core is runnable but unfinished cores remain "
                    "(lost wake-up)",
                    dump=make_dump("schedule deadlock"),
                )
            break
        else:
            pickable = [c for c in core_choices if c not in active_sleep]
            if not pickable:
                sleep_cut = True
                break
            if ("core", last_core) in pickable:
                choice = ("core", last_core)
            else:
                choice = min(pickable)

        info = enabled[choice]
        preemptive = (
            choice[0] == "core"
            and last_core is not None
            and choice[1] != last_core
            and ("core", last_core) in enabled
        )
        op = None
        records_before = len(protocol.records)
        if choice[0] == "core":
            op = controller.parked[choice[1]].op
            controller.release(choice[1])
        else:
            _, evict_core, evict_line = choice
            protocol.set_time(sim.now)
            protocol.force_evict(evict_core, evict_line)
            evicts_used += 1
        violation = drain()
        step = Step(
            index=len(steps),
            choice=choice,
            op=op,
            info=info,
            enabled=tuple(enabled),
            enabled_info=dict(enabled),
            last_core_before=last_core,
            preemptive=preemptive,
            records=tuple(protocol.records[records_before:]),
        )
        steps.append(step)
        just_reset = False
        if preemptive:
            preemptions += 1
        if choice[0] == "core":
            last_core = choice[1]

        # Spin fairness bookkeeping: count consecutive probes per (core,
        # line); any write-kind step to a line resets its counters.
        if isinstance(op, isa.WaitLoad):
            key = (choice[1], amap.line_of(op.addr))
            probes[key] = probes.get(key, 0) + 1
        if _is_write_kind(info, op) and info.lines is not None:
            for key in [k for k in probes if k[1] in info.lines]:
                del probes[key]

        # Sleep-set inheritance from the branch node onward: executing a
        # dependent step wakes a sleeper.
        if step.index >= branch_index and active_sleep:
            active_sleep = {
                ch: sleeping_info
                for ch, sleeping_info in active_sleep.items()
                if not dependent(sleeping_info, info)
            }
        index += 1

    if violation is not None:
        violations.append(violation)

    final_memory = {addr: protocol.memory.read(addr)
                    for addr in instance.footprint}
    op_counts: dict[int, int] = {}
    for step in steps:
        if step.choice[0] == "core":
            op_counts[step.choice[1]] = op_counts.get(step.choice[1], 0) + 1

    execution = Execution(
        test_name=instance.name,
        protocol_name=protocol_name,
        steps=steps,
        violations=violations,
        completed=completed,
        sleep_cut=sleep_cut,
        preemptions=preemptions,
        op_counts=op_counts,
        final_memory=final_memory,
        trace=list(protocol.records),
        instance=instance,
        protocol=protocol,
        skipped_forced=skipped_forced,
    )
    if completed:
        from repro.mc.oracle import check_execution

        execution.violations.extend(check_execution(execution, options))
    return execution
