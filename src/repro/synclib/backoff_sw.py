"""Software exponential backoff (paper section 5.3.1).

The non-blocking kernels back off after a failed attempt with a delay
drawn from an exponentially growing window capped at [128, 2048) cycles,
the range the paper uses.  The delay is pure local computation and is
charged to the *sw backoff* time component.
"""

from __future__ import annotations

import random

from repro.cpu.isa import Compute
from repro.stats.timeparts import TimeComponent

#: The paper's backoff window bounds, in cycles.
BACKOFF_MIN = 128
BACKOFF_MAX = 2048


def backoff_window(attempt: int, lo: int = BACKOFF_MIN, hi: int = BACKOFF_MAX) -> int:
    """Upper bound of the backoff window after ``attempt`` failures."""
    if attempt < 0:
        raise ValueError("attempt must be non-negative")
    return min(hi, lo << attempt)


def exponential_backoff(
    rng: random.Random, attempt: int, lo: int = BACKOFF_MIN, hi: int = BACKOFF_MAX
):
    """Yield the Compute op for one exponential-backoff delay.

    Usage inside a thread program::

        yield from exponential_backoff(ctx.rng, attempt)
    """
    window = backoff_window(attempt, lo, hi)
    delay = rng.randrange(lo, window + 1) if window > lo else lo
    yield Compute(delay, TimeComponent.SW_BACKOFF)
