"""MCS list-based queuing lock (Mellor-Crummey & Scott).

The list-based cousin of the Anderson array lock the paper evaluates
("array/list based queuing locks [4]", section 5.3.1): acquirers enqueue
a per-thread queue node with an atomic swap on the tail pointer and spin
on their own node's ``locked`` flag; the releaser hands the lock to its
successor by clearing that flag.  Like the array lock this gives one
spinner per word — the single-producer/single-consumer pattern where all
three protocols behave alike — but with O(threads) space per lock instead
of a fixed array, and strict FIFO order.

Each thread owns one queue node per lock (the classic usage: a thread has
at most one outstanding acquire per lock, so nodes are safely reused).
"""

from __future__ import annotations


from repro.cpu.isa import Cas, Load, Store, Swap, WaitLoad
from repro.cpu.thread import ThreadCtx
from repro.mem.regions import RegionAllocator

NULL = 0
LOCKED = 1
UNLOCKED = 0


class McsLock:
    """An MCS queue lock with per-thread, line-padded queue nodes."""

    NODE_WORDS = 2  # [locked, next]

    def __init__(self, allocator: RegionAllocator, nthreads: int, name: str = "mcs"):
        if nthreads < 1:
            raise ValueError("nthreads must be >= 1")
        self.tail = allocator.alloc_sync(f"{name}.tail").base
        self.nodes = [
            allocator.alloc(f"{name}.node{t}", self.NODE_WORDS, line_align=True).base
            for t in range(nthreads)
        ]

    def _node(self, ctx: ThreadCtx) -> int:
        return self.nodes[ctx.core_id]

    def acquire(self, ctx: ThreadCtx):
        """Generator: returns this thread's queue node (pass to release)."""
        node = self._node(ctx)
        yield Store(node + 1, NULL, sync=True)  # node.next = null
        pred = yield Swap(self.tail, node, acquire=True)  # enqueue + acquire
        if pred != NULL:
            # Mark ourselves waiting *before* linking, so the releaser
            # cannot observe the link and hand off before we spin.
            yield Store(node, LOCKED, sync=True)
            yield Store(pred + 1, node, sync=True)  # pred.next = node
            yield WaitLoad(node, lambda v: v == UNLOCKED, sync=True, acquire=True)
        return node

    def release(self, token: int):
        """Generator: hand the lock to the successor (``token`` = our node)."""
        node = token
        successor = yield Load(node + 1, sync=True)  # node.next
        if successor == NULL:
            # Nobody visibly queued: try to swing the tail back to null.
            old = yield Cas(self.tail, node, NULL, release=True)
            if old == node:
                return
            # A thread is mid-enqueue; wait for it to link itself.
            successor = yield WaitLoad(node + 1, lambda v: v != NULL, sync=True)
        yield Store(successor, UNLOCKED, sync=True, release=True)
