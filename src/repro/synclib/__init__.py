"""Synchronization algorithms built on the simulated memory operations.

Everything here is written against the thread-program ISA
(:mod:`repro.cpu.isa`): methods are generators used with ``yield from``,
and every shared-memory interaction goes through the coherence protocol,
so lock handoffs, CAS contention, registration ping-ponging and backoff
all emerge from the simulated hardware.
"""

from repro.synclib.tatas import TatasLock
from repro.synclib.arraylock import ArrayLock
from repro.synclib.mcslock import McsLock
from repro.synclib.barriers import CentralBarrier, TreeBarrier
from repro.synclib.backoff_sw import exponential_backoff
from repro.synclib.condvar import BoundedBuffer, ConditionVariable
from repro.synclib.counters import FaiCounter, LockedCounter
from repro.synclib.msqueue import MichaelScottQueue
from repro.synclib.pljqueue import PLJQueue
from repro.synclib.treiber import TreiberStack
from repro.synclib.herlihy import HerlihyHeap, HerlihyStack
from repro.synclib.locked_structures import (
    DoubleLockQueue,
    LockedHeap,
    LockedStack,
    SingleLockQueue,
)

__all__ = [
    "ArrayLock",
    "BoundedBuffer",
    "CentralBarrier",
    "ConditionVariable",
    "McsLock",
    "DoubleLockQueue",
    "FaiCounter",
    "HerlihyHeap",
    "HerlihyStack",
    "LockedCounter",
    "LockedHeap",
    "LockedStack",
    "MichaelScottQueue",
    "PLJQueue",
    "SingleLockQueue",
    "TatasLock",
    "TreiberStack",
    "exponential_backoff",
]
