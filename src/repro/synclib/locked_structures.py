"""Lock-based concurrent data structures (paper section 5.3.1).

Adapted from the Michael & Scott 1998 kernels: a single-lock circular
queue, the two-lock (head lock / tail lock) linked queue, a locked stack
and a locked array heap.  Each structure works with either lock flavour
(TATAS or array lock) through the shared ``token = yield from
lock.acquire(ctx)`` / ``yield from lock.release(token)`` convention.

Every method self-invalidates the structure's data region right after the
acquire, as the paper's region-based static self-invalidation scheme
requires for DeNovo (a no-op under MESI).  The heap's data-dependent
sift paths are what make its conservative whole-region invalidation
expensive for DeNovo (section 7.1.2).
"""

from __future__ import annotations

from repro.cpu.isa import Load, SelfInvalidate, Store
from repro.cpu.thread import ThreadCtx
from repro.mem.regions import RegionAllocator

#: Sentinel returned by dequeue/pop/extract on an empty structure.
EMPTY = None


class SingleLockQueue:
    """A circular-buffer FIFO protected by one lock."""

    def __init__(
        self, allocator: RegionAllocator, lock, capacity: int, name: str = "slq"
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.lock = lock
        self.capacity = capacity
        # head/tail/buf all live in one region protected by the lock.
        self.region = allocator.region(f"{name}.data")
        self.head = allocator.alloc(f"{name}.data").base
        self.tail = allocator.alloc(f"{name}.data").base
        self.buf = allocator.alloc(f"{name}.data", capacity).base

    def enqueue(self, ctx: ThreadCtx, value: int):
        token = yield from self.lock.acquire(ctx)
        yield SelfInvalidate((self.region,))
        tail = yield Load(self.tail)
        yield Store(self.buf + tail % self.capacity, value)
        yield Store(self.tail, tail + 1)
        yield from self.lock.release(token)

    def dequeue(self, ctx: ThreadCtx):
        token = yield from self.lock.acquire(ctx)
        yield SelfInvalidate((self.region,))
        head = yield Load(self.head)
        tail = yield Load(self.tail)
        if head == tail:
            yield from self.lock.release(token)
            return EMPTY
        value = yield Load(self.buf + head % self.capacity)
        yield Store(self.head, head + 1)
        yield from self.lock.release(token)
        return value


class DoubleLockQueue:
    """The Michael & Scott two-lock queue: a linked list with a dummy node.

    Enqueuers serialize on the tail lock, dequeuers on the head lock, so
    the two ends proceed concurrently.  Nodes are [value, next] pairs,
    bump-allocated from per-thread pools (no reuse, which also sidesteps
    ABA concerns for the non-blocking cousins sharing this layout).
    """

    NODE_WORDS = 2  # [value, next]

    def __init__(
        self,
        allocator: RegionAllocator,
        head_lock,
        tail_lock,
        nodes_per_thread: int,
        nthreads: int,
        name: str = "dlq",
    ):
        self.head_lock = head_lock
        self.tail_lock = tail_lock
        self.region = allocator.region(f"{name}.data")
        self.head = allocator.alloc(f"{name}.data").base
        self.tail = allocator.alloc(f"{name}.data").base
        self.dummy = allocator.alloc(f"{name}.data", self.NODE_WORDS).base
        self._pools = [
            allocator.alloc(f"{name}.data", self.NODE_WORDS * (nodes_per_thread + 1)).base
            for _ in range(nthreads)
        ]
        self._next_node = [0] * nthreads

    def initial_values(self) -> dict[int, int]:
        return {self.head: self.dummy, self.tail: self.dummy}

    def _alloc_node(self, thread: int) -> int:
        index = self._next_node[thread]
        self._next_node[thread] = index + 1
        return self._pools[thread] + index * self.NODE_WORDS

    def enqueue(self, ctx: ThreadCtx, value: int):
        node = self._alloc_node(ctx.core_id)
        yield Store(node, value)  # node.value
        yield Store(node + 1, 0)  # node.next = null
        token = yield from self.tail_lock.acquire(ctx)
        yield SelfInvalidate((self.region,))
        tail_node = yield Load(self.tail)
        # tail->next = node.  The link word races with the dequeuer's read
        # (enqueuers hold the tail lock, dequeuers the head lock, and the
        # two meet on this word when the queue drains), so it must be a
        # synchronization access; release publishes the node contents.
        yield Store(tail_node + 1, node, sync=True, release=True)
        yield Store(self.tail, node)
        yield from self.tail_lock.release(token)

    def dequeue(self, ctx: ThreadCtx):
        token = yield from self.head_lock.acquire(ctx)
        yield SelfInvalidate((self.region,))
        head_node = yield Load(self.head)
        # The link read is the dequeuer's half of the cross-lock race on
        # the next pointer; acquiring here orders the node contents
        # published by the enqueuer's release store.
        nxt = yield Load(head_node + 1, sync=True, acquire=True)
        if nxt == 0:
            yield from self.head_lock.release(token)
            return EMPTY
        value = yield Load(nxt)  # new dummy's value is the dequeued one
        yield Store(self.head, nxt)
        yield from self.head_lock.release(token)
        return value


class LockedStack:
    """A bounded array stack protected by one lock."""

    def __init__(
        self, allocator: RegionAllocator, lock, capacity: int, name: str = "lstack"
    ):
        self.lock = lock
        self.capacity = capacity
        self.region = allocator.region(f"{name}.data")
        self.top = allocator.alloc(f"{name}.data").base
        self.buf = allocator.alloc(f"{name}.data", capacity).base

    def push(self, ctx: ThreadCtx, value: int):
        token = yield from self.lock.acquire(ctx)
        yield SelfInvalidate((self.region,))
        top = yield Load(self.top)
        if top >= self.capacity:
            yield from self.lock.release(token)
            raise OverflowError("LockedStack overflow")
        yield Store(self.buf + top, value)
        yield Store(self.top, top + 1)
        yield from self.lock.release(token)

    def pop(self, ctx: ThreadCtx):
        token = yield from self.lock.acquire(ctx)
        yield SelfInvalidate((self.region,))
        top = yield Load(self.top)
        if top == 0:
            yield from self.lock.release(token)
            return EMPTY
        value = yield Load(self.buf + top - 1)
        yield Store(self.top, top - 1)
        yield from self.lock.release(token)
        return value


class LockedHeap:
    """A bounded binary min-heap protected by one lock.

    Insert/extract sift along data-dependent paths, so DeNovo's
    conservative whole-region self-invalidation at each acquire forces
    re-fetching nodes that were in fact unchanged — the effect the paper
    blames for heap's DeNovo slowdown under array locks (section 7.1.2).
    """

    def __init__(
        self, allocator: RegionAllocator, lock, capacity: int, name: str = "lheap"
    ):
        self.lock = lock
        self.capacity = capacity
        self.region = allocator.region(f"{name}.data")
        self.size = allocator.alloc(f"{name}.data").base
        self.buf = allocator.alloc(f"{name}.data", capacity).base

    def insert(self, ctx: ThreadCtx, value: int):
        token = yield from self.lock.acquire(ctx)
        yield SelfInvalidate((self.region,))
        size = yield Load(self.size)
        if size >= self.capacity:
            yield from self.lock.release(token)
            raise OverflowError("LockedHeap overflow")
        # Sift up.
        hole = size
        while hole > 0:
            parent = (hole - 1) // 2
            pval = yield Load(self.buf + parent)
            if pval <= value:
                break
            yield Store(self.buf + hole, pval)
            hole = parent
        yield Store(self.buf + hole, value)
        yield Store(self.size, size + 1)
        yield from self.lock.release(token)

    def extract_min(self, ctx: ThreadCtx):
        token = yield from self.lock.acquire(ctx)
        yield SelfInvalidate((self.region,))
        size = yield Load(self.size)
        if size == 0:
            yield from self.lock.release(token)
            return EMPTY
        result = yield Load(self.buf)
        last = yield Load(self.buf + size - 1)
        size -= 1
        yield Store(self.size, size)
        # Sift down from the root with the last element.
        hole = 0
        while True:
            child = 2 * hole + 1
            if child >= size:
                break
            cval = yield Load(self.buf + child)
            if child + 1 < size:
                rval = yield Load(self.buf + child + 1)
                if rval < cval:
                    child += 1
                    cval = rval
            if cval >= last:
                break
            yield Store(self.buf + hole, cval)
            hole = child
        if size > 0:
            yield Store(self.buf + hole, last)
        yield from self.lock.release(token)
        return result
