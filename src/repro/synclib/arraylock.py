"""Anderson array-based queuing lock (paper section 6.1.2).

Each acquirer fetch-and-increments a tail counter to claim a slot, then
spins on its own flag word; the releaser sets the next slot's flag.  With
one waiter per flag there is no read-sharing, which is why the paper finds
DeNovoSync's backoff irrelevant here and the protocols mostly comparable —
except that the successful acquire is immediately followed by a write that
resets the flag for reuse: a free hit under DeNovo (the acquire read
registered the word) but a separate ownership request under MESI.

Flag words are padded to distinct cache lines (the distributed layout is
the entire point of the algorithm).
"""

from __future__ import annotations

from repro.cpu.isa import Fai, Store, WaitLoad
from repro.cpu.thread import ThreadCtx
from repro.mem.regions import RegionAllocator

FLAG_WAIT = 0
FLAG_GO = 1


class ArrayLock:
    """An Anderson queueing lock with ``nslots`` line-padded flag words."""

    def __init__(self, allocator: RegionAllocator, nslots: int, name: str = "arraylock"):
        if nslots < 1:
            raise ValueError("nslots must be >= 1")
        self.nslots = nslots
        self.tail = allocator.alloc_sync(f"{name}.tail").base
        self.flags = [
            allocator.alloc(f"{name}.flag{i}", 1, line_align=True).base
            for i in range(nslots)
        ]

    def initial_values(self) -> dict[int, int]:
        """Initial memory image: slot 0 starts open."""
        return {self.flags[0]: FLAG_GO}

    def acquire(self, ctx: ThreadCtx | None = None):
        """Generator: returns the acquired slot index (pass to release)."""
        ticket = yield Fai(self.tail)
        slot = ticket % self.nslots
        yield WaitLoad(
            self.flags[slot], lambda v: v == FLAG_GO, sync=True, acquire=True
        )
        # Reset our flag so the slot can be reused on the next wrap-around.
        # Under DeNovo the acquire read registered the word, so this hits;
        # MESI needs a separate ownership request (section 6.1.2).
        yield Store(self.flags[slot], FLAG_WAIT, sync=True)
        return slot

    def release(self, slot: int):
        """Generator: hand the lock to the next slot."""
        nxt = self.flags[(slot + 1) % self.nslots]
        yield Store(nxt, FLAG_GO, sync=True, release=True)
