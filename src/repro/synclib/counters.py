"""Shared counters: lock-protected and fetch-and-increment (non-blocking).

The locked counter is the smallest possible critical section (one data
read-modify-write on one shared variable); the FAI counter is the
smallest possible non-blocking kernel (its fetch-and-increment *is* the
linearization point, with no pre-linearization reads at all).
"""

from __future__ import annotations

from repro.cpu.isa import Fai, Load, SelfInvalidate, Store
from repro.cpu.thread import ThreadCtx
from repro.mem.regions import RegionAllocator


class LockedCounter:
    """A counter incremented under a lock."""

    def __init__(self, allocator: RegionAllocator, lock, name: str = "lcounter"):
        self.lock = lock
        self.region = allocator.region(f"{name}.data")
        self.addr = allocator.alloc(f"{name}.data").base

    def increment(self, ctx: ThreadCtx):
        """Generator: returns the pre-increment value."""
        token = yield from self.lock.acquire(ctx)
        yield SelfInvalidate((self.region,))
        value = yield Load(self.addr)
        yield Store(self.addr, value + 1)
        yield from self.lock.release(token)
        return value


class FaiCounter:
    """A counter incremented with a single fetch-and-increment."""

    def __init__(self, allocator: RegionAllocator, name: str = "fai"):
        self.addr = allocator.alloc_sync(name).base

    def increment(self, ctx: ThreadCtx):
        """Generator: returns the pre-increment value."""
        old = yield Fai(self.addr)
        return old
