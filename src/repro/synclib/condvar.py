"""Condition variables and a bounded buffer (extension).

The paper inserts self-invalidations into "the POSIX thread library
synchronization routines that were used" by its applications; this module
supplies the corresponding constructs for our workloads: a
generation-count condition variable usable with any of the lock classes,
and the classic mutex+condvar bounded buffer built on it.

The condition variable keeps a generation number per condition: waiters
snapshot it under the lock, release, and spin until it moves (so a
notify between the snapshot and the wait cannot be lost), then reacquire.
``notify_all`` bumps the generation with a release-marked
fetch-and-increment, which both wakes every waiter and publishes the
notifier's writes under the signature protocol.
"""

from __future__ import annotations

from repro.cpu.isa import Fai, Load, WaitLoad
from repro.cpu.thread import ThreadCtx
from repro.mem.regions import RegionAllocator


class ConditionVariable:
    """A generation-count condition variable."""

    def __init__(self, allocator: RegionAllocator, name: str = "cond"):
        self.seq = allocator.alloc_sync(f"{name}.seq").base

    def wait(self, ctx: ThreadCtx, lock, token):
        """Generator: atomically release ``lock`` and wait for a notify,
        then reacquire.  Returns the new lock token.

        As with POSIX condition variables, waking says nothing about the
        predicate — callers re-check it in a loop.
        """
        generation = yield Load(self.seq, sync=True)
        yield from lock.release(token)
        yield WaitLoad(
            self.seq, lambda v, g=generation: v != g, sync=True, acquire=True
        )
        token = yield from lock.acquire(ctx)
        return token

    def notify_all(self):
        """Generator: wake every current waiter (callers hold the lock)."""
        _ = yield Fai(self.seq, release=True)


class BoundedBuffer:
    """The classic mutex + two-condvar bounded FIFO buffer."""

    def __init__(
        self, allocator: RegionAllocator, lock, capacity: int, name: str = "bb"
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.lock = lock
        self.capacity = capacity
        self.region = allocator.region(f"{name}.data")
        self.head = allocator.alloc(f"{name}.data").base
        self.tail = allocator.alloc(f"{name}.data").base
        self.slots = allocator.alloc(f"{name}.data", capacity).base
        self.not_full = ConditionVariable(allocator, f"{name}.notfull")
        self.not_empty = ConditionVariable(allocator, f"{name}.notempty")

    def _size(self):
        head = yield Load(self.head)
        tail = yield Load(self.tail)
        return tail - head

    def put(self, ctx: ThreadCtx, value: int):
        """Generator: blocks while the buffer is full."""
        from repro.cpu.isa import SelfInvalidate, Store

        token = yield from self.lock.acquire(ctx)
        yield SelfInvalidate((self.region,))
        while True:
            size = yield from self._size()
            if size < self.capacity:
                break
            token = yield from self.not_full.wait(ctx, self.lock, token)
            yield SelfInvalidate((self.region,))
        tail = yield Load(self.tail)
        yield Store(self.slots + tail % self.capacity, value)
        yield Store(self.tail, tail + 1)
        yield from self.not_empty.notify_all()
        yield from self.lock.release(token)

    def get(self, ctx: ThreadCtx):
        """Generator: blocks while the buffer is empty; returns the value."""
        from repro.cpu.isa import SelfInvalidate, Store

        token = yield from self.lock.acquire(ctx)
        yield SelfInvalidate((self.region,))
        while True:
            size = yield from self._size()
            if size > 0:
                break
            token = yield from self.not_empty.wait(ctx, self.lock, token)
            yield SelfInvalidate((self.region,))
        head = yield Load(self.head)
        value = yield Load(self.slots + head % self.capacity)
        yield Store(self.head, head + 1)
        yield from self.not_full.notify_all()
        yield from self.lock.release(token)
        return value
