"""The Treiber non-blocking stack.

Push reads the top pointer, points the new node at it, and linearizes at
a CAS on ``top``; pop reads top, fetches the node's next pointer, and
linearizes at a CAS swinging ``top`` to it.  The top pointer is the only
CAS target; node fields are data, read after a self-invalidation of the
node region (the pop's successful read of ``top`` is its acquire).

Nodes are bump-allocated per thread and never reused (see the ABA note in
:mod:`repro.synclib.msqueue`).
"""

from __future__ import annotations

from repro.cpu.isa import Cas, Load, SelfInvalidate, Store
from repro.cpu.thread import ThreadCtx
from repro.mem.regions import RegionAllocator
from repro.synclib.backoff_sw import exponential_backoff

NULL = 0


class TreiberStack:
    """Non-blocking LIFO stack; ``push``/``pop`` are generators."""

    NODE_WORDS = 2  # [value, next]

    def __init__(
        self,
        allocator: RegionAllocator,
        nodes_per_thread: int,
        nthreads: int,
        name: str = "treiber",
        software_backoff: bool = True,
    ):
        self.software_backoff = software_backoff
        self.top = allocator.alloc_sync(f"{name}.top").base
        self.nodes = allocator.region(f"{name}.nodes")
        self._pools = []
        for _thread in range(nthreads):
            pool = [
                allocator.alloc(f"{name}.nodes", self.NODE_WORDS, line_align=True).base
                for _ in range(nodes_per_thread + 1)
            ]
            self._pools.append(pool)
        self._next_node = [0] * nthreads

    def _alloc_node(self, thread: int) -> int:
        index = self._next_node[thread]
        self._next_node[thread] = index + 1
        return self._pools[thread][index]

    def push(self, ctx: ThreadCtx, value: int):
        node = self._alloc_node(ctx.core_id)
        yield Store(node, value)  # node.value: data
        attempt = 0
        while True:
            top = yield Load(self.top, sync=True)
            yield Store(node + 1, top)  # node.next: data, published by the CAS
            old = yield Cas(self.top, top, node, release=True)
            if old == top:
                return
            if self.software_backoff:
                yield from exponential_backoff(ctx.rng, attempt)
                attempt += 1

    def pop(self, ctx: ThreadCtx):
        """Generator: returns the value, or None when empty."""
        attempt = 0
        while True:
            # The successful read of top is the pop's acquire: it
            # synchronizes with the release-CAS that published the node.
            top = yield Load(self.top, sync=True, acquire=True)
            if top == NULL:
                return None
            yield SelfInvalidate((self.nodes,))
            nxt = yield Load(top + 1)  # node.next: data
            old = yield Cas(self.top, top, nxt, release=True)
            if old == top:
                value = yield Load(top)  # node.value: data
                return value
            if self.software_backoff:
                yield from exponential_backoff(ctx.rng, attempt)
                attempt += 1
