"""Barrier algorithms (paper sections 5.3.1 and 6.3).

Three barriers, all derived from the pseudo-code in Scott's *Shared
Memory Synchronization* [33]:

* :class:`CentralBarrier` — centralized sense-reversing barrier: arrivals
  fetch-and-increment a shared counter; the last arriver resets it and
  flips the global sense that all waiters spin on.  Many readers of one
  word: the pattern where DeNovo's serialized read registrations hurt.
* :class:`TreeBarrier` — static tree barrier with configurable arrival
  fan-in and departure fan-out (binary: 2/2; the paper's n-ary variant:
  fan-in 4, fan-out 2).  Every flag word has exactly one writer and one
  reader, the scalable single-producer/single-consumer pattern where all
  protocols behave alike.

Flags carry episode numbers rather than reversing senses, which keeps
every flag single-writer and makes barriers reusable without reset
writes; each ``wait`` call must pass a strictly increasing ``episode``.
"""

from __future__ import annotations

from repro.cpu.isa import Fai, Store, WaitLoad
from repro.cpu.thread import ThreadCtx
from repro.mem.regions import RegionAllocator


class CentralBarrier:
    """Centralized sense-reversing barrier over one counter and one sense."""

    def __init__(self, allocator: RegionAllocator, nthreads: int, name: str = "cbar"):
        if nthreads < 1:
            raise ValueError("nthreads must be >= 1")
        self.nthreads = nthreads
        self.count = allocator.alloc_sync(f"{name}.count").base
        self.sense = allocator.alloc_sync(f"{name}.sense").base

    def wait(self, ctx: ThreadCtx, episode: int):
        """Generator: block until all ``nthreads`` threads arrive.

        ``episode`` must increase by one per barrier instance; the sense
        word publishes the episode number of the last completed barrier.
        """
        # Arrival publishes this thread's writes (release) and picks up
        # everyone who arrived earlier (acquire) — both through the counter.
        arrived = yield Fai(self.count, release=True, acquire=True)
        if arrived == self.nthreads - 1:
            # Last arriver: reset the counter and release everyone.
            yield Store(self.count, 0, sync=True)
            yield Store(self.sense, episode, sync=True, release=True)
        else:
            yield WaitLoad(
                self.sense, lambda v, e=episode: v >= e, sync=True, acquire=True
            )


class TreeBarrier:
    """Static tree barrier; fan-in for arrival, fan-out for departure.

    Threads form two static trees over their ids (node 0 is the root).
    On arrival each node waits for its arrival-tree children and then
    raises its own flag for its parent; the root then starts the departure
    wave down the departure tree.  Flags hold episode numbers.
    """

    def __init__(
        self,
        allocator: RegionAllocator,
        nthreads: int,
        fan_in: int = 2,
        fan_out: int = 2,
        name: str = "tbar",
    ):
        if nthreads < 1:
            raise ValueError("nthreads must be >= 1")
        if fan_in < 2 or fan_out < 2:
            raise ValueError("fan_in and fan_out must be >= 2")
        self.nthreads = nthreads
        self.fan_in = fan_in
        self.fan_out = fan_out
        self.arrive = [
            allocator.alloc(f"{name}.arrive{i}", 1, line_align=True).base
            for i in range(nthreads)
        ]
        self.depart = [
            allocator.alloc(f"{name}.depart{i}", 1, line_align=True).base
            for i in range(nthreads)
        ]

    def _children(self, node: int, fan: int) -> list[int]:
        first = fan * node + 1
        return [c for c in range(first, first + fan) if c < self.nthreads]

    def wait(self, ctx: ThreadCtx, episode: int):
        """Generator: block until all threads reach episode ``episode``."""
        me = ctx.core_id
        # Arrival: gather the children, then signal the parent.
        for child in self._children(me, self.fan_in):
            yield WaitLoad(
                self.arrive[child], lambda v, e=episode: v >= e, sync=True,
                acquire=True,
            )
        if me != 0:
            # Publish our (and our subtree's) writes to the parent.
            yield Store(self.arrive[me], episode, sync=True, release=True)
            yield WaitLoad(
                self.depart[me], lambda v, e=episode: v >= e, sync=True,
                acquire=True,
            )
        # Departure: wake the departure-tree children.
        for child in self._children(me, self.fan_out):
            yield Store(self.depart[child], episode, sync=True, release=True)
