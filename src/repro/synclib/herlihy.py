"""Herlihy-style non-blocking stack and heap (copy-and-CAS methodology).

Herlihy's general methodology for small objects [14]: read the shared
pointer to the current version, copy the object into a fresh private
block, apply the operation to the copy, and linearize with a CAS swinging
the pointer to the new version.  The version pointer is the CAS target;
the version contents are data, self-invalidated before the copy (the
pointer read is the acquire).

The paper notes (section 7.1.3) that the Herlihy kernels from Michael &
Scott's suite carry many *equality checks* — re-reads of the shared
pointer that only filter doomed attempts early.  They help on
writer-initiated-invalidation protocols (the re-read is a cached hit) but
hurt reader-initiated protocols like DeNovo (every re-read is a
registration miss).  ``reduced_checks=True`` builds the modified versions
the paper evaluates, with those re-reads removed.

Version blocks are bump-allocated per thread and never reused.
"""

from __future__ import annotations

from repro.cpu.isa import Cas, Load, SelfInvalidate, Store
from repro.cpu.thread import ThreadCtx
from repro.mem.regions import RegionAllocator
from repro.synclib.backoff_sw import exponential_backoff

NULL = 0


class _VersionedObject:
    """Shared machinery: a version pointer plus per-thread block pools."""

    def __init__(
        self,
        allocator: RegionAllocator,
        block_words: int,
        blocks_per_thread: int,
        nthreads: int,
        name: str,
        reduced_checks: bool = False,
        software_backoff: bool = True,
    ):
        self.block_words = block_words
        self.reduced_checks = reduced_checks
        self.software_backoff = software_backoff
        self.ptr = allocator.alloc_sync(f"{name}.ptr").base
        self.versions = allocator.region(f"{name}.versions")
        self.initial_block = allocator.alloc(
            f"{name}.versions", block_words, line_align=True
        ).base
        self._pools = []
        for _thread in range(nthreads):
            pool = [
                allocator.alloc(f"{name}.versions", block_words, line_align=True).base
                for _ in range(blocks_per_thread + 1)
            ]
            self._pools.append(pool)
        self._next_block = [0] * nthreads

    def initial_values(self) -> dict[int, int]:
        return {self.ptr: self.initial_block}

    def _peek_block(self, thread: int) -> int:
        """The thread's next free block (consumed only on a successful CAS:
        a failed attempt's block was never published and is safely reused)."""
        return self._pools[thread][self._next_block[thread]]

    def _consume_block(self, thread: int) -> None:
        self._next_block[thread] += 1

    def _read_current(self, ctx: ThreadCtx):
        """Read (and optionally re-validate) the current version pointer."""
        # The pointer read is the acquire: it synchronizes with the
        # release-CAS that published the current version block.
        current = yield Load(self.ptr, sync=True, acquire=True)
        if not self.reduced_checks:
            # Equality checks: re-read the pointer to filter doomed attempts
            # early (cheap under MESI, a registration miss under DeNovo).
            check = yield Load(self.ptr, sync=True)
            if check != current:
                return None
            check = yield Load(self.ptr, sync=True)
            if check != current:
                return None
        return current

    def _update(self, ctx: ThreadCtx, transform):
        """Run one copy-and-CAS attempt loop; returns transform's result.

        ``transform(old_block, new_block)`` is a generator that copies and
        modifies; it returns (result, success) where success=False aborts
        the operation (e.g. popping an empty stack).
        """
        attempt = 0
        while True:
            current = yield from self._read_current(ctx)
            if current is not None:
                yield SelfInvalidate((self.versions,))
                new_block = self._peek_block(ctx.core_id)
                result, proceed = yield from transform(current, new_block)
                if not proceed:
                    return result
                if not self.reduced_checks:
                    check = yield Load(self.ptr, sync=True)
                    if check != current:
                        current = None  # doomed; skip the CAS
                if current is not None:
                    old = yield Cas(self.ptr, current, new_block, release=True)
                    if old == current:
                        self._consume_block(ctx.core_id)
                        return result
            if self.software_backoff:
                yield from exponential_backoff(ctx.rng, attempt)
                attempt += 1


class HerlihyStack(_VersionedObject):
    """A bounded stack as a versioned block: [size, item0, item1, ...]."""

    def __init__(
        self,
        allocator: RegionAllocator,
        capacity: int,
        blocks_per_thread: int,
        nthreads: int,
        name: str = "hstack",
        reduced_checks: bool = False,
        software_backoff: bool = True,
    ):
        super().__init__(
            allocator,
            block_words=capacity + 1,
            blocks_per_thread=blocks_per_thread,
            nthreads=nthreads,
            name=name,
            reduced_checks=reduced_checks,
            software_backoff=software_backoff,
        )
        self.capacity = capacity

    def push(self, ctx: ThreadCtx, value: int):
        def transform(old, new):
            size = yield Load(old)
            if size >= self.capacity:
                raise OverflowError("HerlihyStack overflow")
            for i in range(size):
                item = yield Load(old + 1 + i)
                yield Store(new + 1 + i, item)
            yield Store(new + 1 + size, value)
            yield Store(new, size + 1)
            return None, True

        return (yield from self._update(ctx, transform))

    def pop(self, ctx: ThreadCtx):
        """Generator: returns the value, or None when empty."""

        def transform(old, new):
            size = yield Load(old)
            if size == 0:
                return None, False
            for i in range(size - 1):
                item = yield Load(old + 1 + i)
                yield Store(new + 1 + i, item)
            top = yield Load(old + size)
            yield Store(new, size - 1)
            return top, True

        return (yield from self._update(ctx, transform))


class HerlihyHeap(_VersionedObject):
    """A bounded binary min-heap as a versioned block: [size, items...]."""

    def __init__(
        self,
        allocator: RegionAllocator,
        capacity: int,
        blocks_per_thread: int,
        nthreads: int,
        name: str = "hheap",
        reduced_checks: bool = False,
        software_backoff: bool = True,
    ):
        super().__init__(
            allocator,
            block_words=capacity + 1,
            blocks_per_thread=blocks_per_thread,
            nthreads=nthreads,
            name=name,
            reduced_checks=reduced_checks,
            software_backoff=software_backoff,
        )
        self.capacity = capacity

    def insert(self, ctx: ThreadCtx, value: int):
        def transform(old, new):
            size = yield Load(old)
            if size >= self.capacity:
                raise OverflowError("HerlihyHeap overflow")
            heap = []
            for i in range(size):
                item = yield Load(old + 1 + i)
                heap.append(item)
            heap.append(value)
            # Sift up in the copy (local computation on copied values).
            hole = size
            while hole > 0 and heap[(hole - 1) // 2] > heap[hole]:
                parent = (hole - 1) // 2
                heap[hole], heap[parent] = heap[parent], heap[hole]
                hole = parent
            for i, item in enumerate(heap):
                yield Store(new + 1 + i, item)
            yield Store(new, size + 1)
            return None, True

        return (yield from self._update(ctx, transform))

    def extract_min(self, ctx: ThreadCtx):
        """Generator: returns the minimum, or None when empty."""

        def transform(old, new):
            size = yield Load(old)
            if size == 0:
                return None, False
            heap = []
            for i in range(size):
                item = yield Load(old + 1 + i)
                heap.append(item)
            result = heap[0]
            last = heap.pop()
            if heap:
                heap[0] = last
                hole = 0
                while True:
                    child = 2 * hole + 1
                    if child >= len(heap):
                        break
                    if child + 1 < len(heap) and heap[child + 1] < heap[child]:
                        child += 1
                    if heap[child] >= heap[hole]:
                        break
                    heap[hole], heap[child] = heap[child], heap[hole]
                    hole = child
            for i, item in enumerate(heap):
                yield Store(new + 1 + i, item)
            yield Store(new, size - 1)
            return result, True

        return (yield from self._update(ctx, transform))
