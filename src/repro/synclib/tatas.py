"""Test-and-Test-and-Set lock.

The common single-variable spin lock (paper section 6.1.1).  The *Test*
phase spins on synchronization reads until the lock looks free; only then
does the thread attempt the *Test-and-Set* (an atomic swap), whose success
is the acquire's linearization point.  The release is a synchronization
store of zero, marked with release semantics.

An optional software exponential backoff after a failed Test-and-Set
supports the paper's section 7.1.1 sensitivity study.
"""

from __future__ import annotations

from repro.cpu.isa import Store, Swap, WaitLoad
from repro.cpu.thread import ThreadCtx
from repro.mem.regions import RegionAllocator
from repro.synclib.backoff_sw import exponential_backoff

LOCK_FREE = 0
LOCK_HELD = 1


class TatasLock:
    """A Test-and-Test-and-Set spin lock on one shared word."""

    def __init__(
        self,
        allocator: RegionAllocator,
        name: str = "tatas",
        software_backoff: bool = False,
    ):
        self.addr = allocator.alloc_sync(name).base
        self.software_backoff = software_backoff

    def acquire(self, ctx: ThreadCtx | None = None):
        """Generator: spin until the lock is acquired."""
        attempt = 0
        while True:
            # Test: spin (reads only) until the lock appears free.
            yield WaitLoad(self.addr, lambda v: v == LOCK_FREE, sync=True)
            # Test-and-Set: the linearization (and acquire) point on
            # success; firing acquire on a failed TAS too is conservative.
            old = yield Swap(self.addr, LOCK_HELD, acquire=True)
            if old == LOCK_FREE:
                return
            if self.software_backoff and ctx is not None:
                yield from exponential_backoff(ctx.rng, attempt)
                attempt += 1

    def release(self, token=None):
        """Generator: release the lock (a synchronization release store).

        ``token`` is ignored; it exists so TATAS and array locks share the
        ``token = yield from acquire(...)`` / ``yield from release(token)``
        calling convention.
        """
        yield Store(self.addr, LOCK_FREE, sync=True, release=True)
