"""The Michael-Scott non-blocking queue (paper Figure 1).

A linked list with head and tail pointers and a dummy node.  Enqueue
finds the real tail (helping a lagging tail pointer along), links the new
node with a CAS on ``tail->next`` (the linearization point), then swings
the tail.  Dequeue reads head/tail/next with consistency checks and
linearizes at the CAS on ``head``.

All pointer words (head, tail, every node's ``next``) are synchronization
accesses — they are CAS targets and participate in races.  Node *values*
are data, read after a self-invalidation of the value region, exactly the
split the paper's region-based data-consistency scheme needs.

Nodes are bump-allocated per thread and never reused, which sidesteps the
ABA problem the original algorithm solves with counted pointers (our
simulated words hold full pointers, so reuse without counters would be
unsafe; no-reuse preserves the synchronization access pattern, which is
what the evaluation measures).
"""

from __future__ import annotations

from repro.cpu.isa import Cas, Load, SelfInvalidate, Store
from repro.cpu.thread import ThreadCtx
from repro.mem.regions import RegionAllocator
from repro.synclib.backoff_sw import exponential_backoff

NULL = 0


class MichaelScottQueue:
    """Non-blocking FIFO queue; ``enqueue``/``dequeue`` are generators."""

    NODE_WORDS = 2  # [value, next]

    def __init__(
        self,
        allocator: RegionAllocator,
        nodes_per_thread: int,
        nthreads: int,
        name: str = "msq",
        software_backoff: bool = True,
    ):
        self.software_backoff = software_backoff
        self.head = allocator.alloc_sync(f"{name}.head").base
        self.tail = allocator.alloc_sync(f"{name}.tail").base
        self.values = allocator.region(f"{name}.values")
        # Nodes are line-padded: value and next in one line, one node per
        # line, as real implementations pad to avoid false sharing.
        self.dummy = allocator.alloc(f"{name}.values", self.NODE_WORDS, line_align=True).base
        self._pools = []
        for _thread in range(nthreads):
            pool = [
                allocator.alloc(f"{name}.values", self.NODE_WORDS, line_align=True).base
                for _ in range(nodes_per_thread + 1)
            ]
            self._pools.append(pool)
        self._next_node = [0] * nthreads

    def initial_values(self) -> dict[int, int]:
        return {self.head: self.dummy, self.tail: self.dummy}

    def _alloc_node(self, thread: int) -> int:
        index = self._next_node[thread]
        self._next_node[thread] = index + 1
        return self._pools[thread][index]

    def enqueue(self, ctx: ThreadCtx, value: int):
        node = self._alloc_node(ctx.core_id)
        yield Store(node, value)  # node.value: data
        yield Store(node + 1, NULL, sync=True)  # node.next: sync (CAS target)
        attempt = 0
        while True:
            tail = yield Load(self.tail, sync=True)  # (1) pt := tail
            nxt = yield Load(tail + 1, sync=True)  # (2) pn := pt->next
            tail2 = yield Load(self.tail, sync=True)  # (3) if pt == tail
            if tail == tail2:
                if nxt == NULL:
                    # (5) linearization; release publishes node.value to
                    # the dequeuer that acquires through this link.
                    old = yield Cas(tail + 1, NULL, node, release=True)
                    if old == NULL:
                        break
                else:
                    _ = yield Cas(self.tail, tail, nxt)  # (6) help the tail along
            if self.software_backoff:
                yield from exponential_backoff(ctx.rng, attempt)
                attempt += 1
        _ = yield Cas(self.tail, tail, node, release=True)  # (7) swing the tail

    def dequeue(self, ctx: ThreadCtx):
        """Generator: returns the value, or None when empty."""
        attempt = 0
        while True:
            head = yield Load(self.head, sync=True)
            tail = yield Load(self.tail, sync=True)
            # The link read is the dequeue's acquire: it synchronizes with
            # the enqueuer's linearizing release-CAS on this word.
            nxt = yield Load(head + 1, sync=True, acquire=True)
            head2 = yield Load(self.head, sync=True)
            if head == head2:
                if head == tail:
                    if nxt == NULL:
                        return None  # empty
                    _ = yield Cas(self.tail, tail, nxt)  # help a lagging tail
                else:
                    yield SelfInvalidate((self.values,))
                    value = yield Load(nxt)  # pn->val: data
                    old = yield Cas(self.head, head, nxt, release=True)
                    if old == head:
                        return value
            if self.software_backoff:
                yield from exponential_backoff(ctx.rng, attempt)
                attempt += 1
