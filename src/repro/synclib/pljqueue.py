"""A PLJ-style (Prakash-Lee-Johnson) non-blocking queue.

The original PLJ queue takes a consistent snapshot of (head, tail) with
repeated reads, then linearizes at a CAS.  We implement a bounded-array
variant with the same *access pattern*: enqueue/dequeue snapshot the
index words and the target slot (several synchronization reads), validate
the snapshot with a re-read, and linearize at a slot CAS followed by a
helping CAS on the index.  Compared to the Michael-Scott queue this trades
pointer chasing for more index reads per operation — it remains a
read-heavy multi-variable CAS loop, the pattern section 6.2 analyzes.

Slots are single-use (the array is sized for the whole run), which plays
the role of PLJ's unbounded node space and avoids ABA on slot reuse.
"""

from __future__ import annotations

from repro.cpu.isa import Cas, Load
from repro.cpu.thread import ThreadCtx
from repro.mem.regions import RegionAllocator
from repro.synclib.backoff_sw import exponential_backoff

EMPTY_SLOT = 0
TAKEN_SLOT = -1


class PLJQueue:
    """Non-blocking FIFO over a single-use slot array.

    Values must be positive integers (0 and -1 are the empty/taken
    sentinels).
    """

    def __init__(
        self,
        allocator: RegionAllocator,
        total_ops: int,
        name: str = "plj",
        software_backoff: bool = True,
    ):
        self.software_backoff = software_backoff
        self.capacity = total_ops + 1
        self.head = allocator.alloc_sync(f"{name}.head").base
        self.tail = allocator.alloc_sync(f"{name}.tail").base
        self.slots = allocator.alloc(f"{name}.slots", self.capacity).base

    def enqueue(self, ctx: ThreadCtx, value: int):
        if value <= 0:
            raise ValueError("PLJQueue values must be positive")
        attempt = 0
        while True:
            tail = yield Load(self.tail, sync=True)
            slot = yield Load(self.slots + tail, sync=True)
            tail2 = yield Load(self.tail, sync=True)  # snapshot validation
            if tail == tail2:
                if slot == EMPTY_SLOT:
                    old = yield Cas(self.slots + tail, EMPTY_SLOT, value)
                    if old == EMPTY_SLOT:
                        _ = yield Cas(self.tail, tail, tail + 1, release=True)
                        return
                else:
                    # Someone published at this slot; help the tail along.
                    _ = yield Cas(self.tail, tail, tail + 1)
            if self.software_backoff:
                yield from exponential_backoff(ctx.rng, attempt)
                attempt += 1

    def dequeue(self, ctx: ThreadCtx):
        """Generator: returns the value, or None when empty."""
        attempt = 0
        while True:
            head = yield Load(self.head, sync=True)
            tail = yield Load(self.tail, sync=True)
            slot = yield Load(self.slots + head, sync=True)
            head2 = yield Load(self.head, sync=True)  # snapshot validation
            if head == head2:
                if head == tail and slot == EMPTY_SLOT:
                    return None  # empty
                if slot not in (EMPTY_SLOT, TAKEN_SLOT):
                    old = yield Cas(self.slots + head, slot, TAKEN_SLOT)
                    if old == slot:
                        _ = yield Cas(self.head, head, head + 1, release=True)
                        return slot
                else:
                    # The slot was consumed but head lags; help it along.
                    if slot == TAKEN_SLOT:
                        _ = yield Cas(self.head, head, head + 1)
            if self.software_backoff:
                yield from exponential_backoff(ctx.rng, attempt)
                attempt += 1
