"""Exhaustive interleaving exploration and invariant checking.

Because the simulator applies every memory operation atomically at its
service time, an interleaving of N per-core programs is exactly a merge
of their operation sequences, and small scopes can be enumerated
completely.  For each interleaving the checker:

* applies the operations through a fresh protocol instance, spacing them
  so no two transfers overlap;
* verifies every synchronization read/RMW returns the latest committed
  value (write propagation + atomicity + serialization against a shadow
  memory — the section 4 conditions, which non-overlapped ops reduce to
  "reads see the newest write");
* verifies the structural invariants after every operation:
  - DeNovo: a word's registry owner (and only it) holds the word
    Registered, with the up-to-date value (single writer / single
    registered reader);
  - MESI: a line with an exclusive owner is cached by that core alone,
    and every Shared holder is known to the directory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from collections.abc import Iterable

from repro.config import SystemConfig, config_for_cores
from repro.mem.l1 import DeNovoState, MesiState
from repro.protocols import make_protocol
from repro.protocols.denovo_base import DeNovoBaseProtocol
from repro.protocols.mesi import MesiProtocol
from repro.protocols.neat import NeatProtocol

#: Spacing between operations: beyond any transfer latency, so the
#: atomic-at-issue model has no in-flight overlap to reason about.
OP_SPACING = 2000


@dataclass(frozen=True)
class Op:
    """One operation of a verification program."""

    kind: str  # sync_load | sync_store | data_load | data_store | rmw_inc
    addr: int
    value: int = 0


def sync_load(addr: int) -> Op:
    return Op("sync_load", addr)


def sync_store(addr: int, value: int) -> Op:
    return Op("sync_store", addr, value)


def data_store(addr: int, value: int) -> Op:
    return Op("data_store", addr, value)


def rmw_inc(addr: int) -> Op:
    return Op("rmw_inc", addr)


@dataclass
class CheckFailure:
    """One violated check, with enough context to reproduce it."""

    interleaving: tuple[int, ...]
    step: int
    op: Op
    core: int
    message: str


@dataclass
class VerificationReport:
    """Outcome of one exhaustive exploration."""

    protocol: str
    interleavings: int = 0
    operations_checked: int = 0
    failures: list[CheckFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _interleavings(lengths: list[int]) -> Iterable[tuple[int, ...]]:
    """All merges of per-core sequences, as tuples of core indices."""
    tokens = []
    for core, length in enumerate(lengths):
        tokens.extend([core] * length)
    seen = set()
    for perm in permutations(tokens):
        if perm not in seen:
            seen.add(perm)
            yield perm


def explore_protocol(
    protocol_name: str,
    programs: list[list[Op]],
    config: SystemConfig | None = None,
    max_interleavings: int = 5000,
) -> VerificationReport:
    """Exhaustively check ``programs`` under ``protocol_name``.

    Raises ValueError if the scope exceeds ``max_interleavings`` (keep
    programs small — exhaustiveness is the point).
    """
    config = config or config_for_cores(4)
    if len(programs) > config.num_cores:
        raise ValueError("more programs than cores")
    report = VerificationReport(protocol=protocol_name)

    for interleaving in _interleavings([len(p) for p in programs]):
        report.interleavings += 1
        if report.interleavings > max_interleavings:
            raise ValueError(
                f"scope too large (> {max_interleavings} interleavings)"
            )
        protocol = make_protocol(protocol_name, config)
        shadow: dict[int, int] = {}
        positions = [0] * len(programs)
        now = 0
        for step, core in enumerate(interleaving):
            op = programs[core][positions[core]]
            positions[core] += 1
            now += OP_SPACING
            protocol.set_time(now)
            failure = _apply_and_check(
                protocol, shadow, core, op, interleaving, step
            )
            report.operations_checked += 1
            if failure is not None:
                report.failures.append(failure)
                break
            failure = _check_invariants(protocol, shadow, core, op, interleaving, step)
            if failure is not None:
                report.failures.append(failure)
                break
    return report


def _apply_and_check(protocol, shadow, core, op, interleaving, step):
    """Apply one op; check the value it observes against the shadow."""

    def fail(message):
        return CheckFailure(interleaving, step, op, core, message)

    if op.kind == "sync_load":
        access = protocol.load(core, op.addr, sync=True, ticketed=True)
        expected = shadow.get(op.addr, 0)
        if access.value != expected:
            return fail(
                f"sync load saw {access.value}, latest committed is {expected}"
            )
    elif op.kind == "data_load":
        protocol.load(core, op.addr, ticketed=True)
        # Data loads may legally be stale (data-race-free contract).
    elif op.kind == "sync_store":
        protocol.store(core, op.addr, op.value, sync=True, ticketed=True)
        shadow[op.addr] = op.value
    elif op.kind == "data_store":
        protocol.store(core, op.addr, op.value, ticketed=True)
        shadow[op.addr] = op.value
    elif op.kind == "rmw_inc":
        access = protocol.rmw(core, op.addr, lambda old: old + 1, ticketed=True)
        expected = shadow.get(op.addr, 0)
        if access.value != expected:
            return fail(f"rmw read {access.value}, latest committed is {expected}")
        shadow[op.addr] = expected + 1
    else:
        raise ValueError(f"unknown op kind {op.kind!r}")

    memory_value = protocol.memory.read(op.addr)
    if memory_value != shadow.get(op.addr, 0):
        return fail(
            f"backing store holds {memory_value}, shadow says "
            f"{shadow.get(op.addr, 0)}"
        )
    return None


def check_protocol_state(protocol) -> list[str]:
    """Structural-invariant audit of a protocol instance's current state.

    Usable on any protocol at any quiescent point — tests run it on the
    final state of full kernel/application executions.  Returns a list of
    violation messages (empty = consistent).

    * DeNovo: every registered word is held Registered by exactly its
      registry owner, with the up-to-date value.
    * MESI: an exclusive-owner line is cached only by its owner (in E/M);
      every holder of a line is known to the directory.
    * Neat: every dirty (Registered) word is in its core's dirty set and
      matches the backing store; every dirty-set entry is held dirty.
    """
    failures = []

    def fail(message):
        failures.append(message)

    inner = protocol
    while hasattr(inner, "inner"):  # unwrap TracingProtocol / FaultInjector
        inner = inner.inner
    if isinstance(inner, DeNovoBaseProtocol):
        for addr, owner in inner.registry.items():
            for core_id, l1 in enumerate(inner.l1s):
                state = l1.state_of(addr, touch=False)
                if core_id == owner:
                    if state is not DeNovoState.REGISTERED:
                        fail(
                            f"registry owner {owner} of word {addr} holds "
                            f"state {state}"
                        )
                    elif l1.value_of(addr) != inner.memory.read(addr):
                        fail(f"registered copy of word {addr} is stale")
                elif state is DeNovoState.REGISTERED:
                    fail(
                        f"word {addr} registered at both {owner} and {core_id}"
                    )
    elif isinstance(inner, NeatProtocol):
        for core_id, l1 in enumerate(inner.l1s):
            dirty = inner._dirty[core_id]
            for addr, state in l1.words_and_states():
                if state is not DeNovoState.REGISTERED:
                    continue
                if addr not in dirty:
                    fail(
                        f"word {addr}: dirty at core {core_id} but missing "
                        f"from its dirty set"
                    )
                elif l1.value_of(addr) != inner.memory.read(addr):
                    fail(f"dirty copy of word {addr} at core {core_id} is stale")
            for addr in dirty:
                if l1.state_of(addr, touch=False) is not DeNovoState.REGISTERED:
                    fail(
                        f"word {addr}: in core {core_id}'s dirty set but "
                        f"not held dirty"
                    )
    elif isinstance(inner, MesiProtocol):
        for line, entry in inner._directory.items():
            holders = {
                core_id
                for core_id, l1 in enumerate(inner.l1s)
                if l1.state_of(line, touch=False) is not None
            }
            if entry.exclusive_owner is not None:
                owner_state = inner.l1s[entry.exclusive_owner].state_of(
                    line, touch=False
                )
                if owner_state not in (MesiState.EXCLUSIVE, MesiState.MODIFIED):
                    fail(
                        f"line {line}: owner {entry.exclusive_owner} in "
                        f"{owner_state}"
                    )
                if holders - {entry.exclusive_owner}:
                    fail(f"line {line}: owner plus other holders {holders}")
            elif holders - entry.sharers:
                fail(
                    f"line {line}: holders {holders - entry.sharers} unknown "
                    f"to the directory"
                )
    return failures


def _check_invariants(protocol, shadow, core, op, interleaving, step):
    def fail(message):
        return CheckFailure(interleaving, step, op, core, message)

    if isinstance(protocol, DeNovoBaseProtocol):
        for addr, owner in protocol.registry.items():
            for core_id, l1 in enumerate(protocol.l1s):
                state = l1.state_of(addr, touch=False)
                if core_id == owner:
                    if state is not DeNovoState.REGISTERED:
                        return fail(
                            f"registry says core {owner} owns word {addr} "
                            f"but its L1 state is {state}"
                        )
                    if l1.value_of(addr) != protocol.memory.read(addr):
                        return fail(
                            f"registered copy of word {addr} at core "
                            f"{owner} is stale"
                        )
                elif state is DeNovoState.REGISTERED:
                    return fail(
                        f"two registered copies of word {addr}: cores "
                        f"{owner} and {core_id}"
                    )
    elif isinstance(protocol, NeatProtocol):
        for core_id, l1 in enumerate(protocol.l1s):
            dirty = protocol._dirty[core_id]
            for addr, state in l1.words_and_states():
                if state is not DeNovoState.REGISTERED:
                    continue
                if addr not in dirty:
                    return fail(
                        f"word {addr}: dirty at core {core_id} but missing "
                        f"from its dirty set"
                    )
                if l1.value_of(addr) != protocol.memory.read(addr):
                    return fail(
                        f"dirty copy of word {addr} at core {core_id} is "
                        f"stale"
                    )
            for addr in dirty:
                if l1.state_of(addr, touch=False) is not DeNovoState.REGISTERED:
                    return fail(
                        f"word {addr}: in core {core_id}'s dirty set but "
                        f"not held dirty in its L1"
                    )
    elif isinstance(protocol, MesiProtocol):
        for line, entry in protocol._directory.items():
            holders = {
                core_id
                for core_id, l1 in enumerate(protocol.l1s)
                if l1.state_of(line, touch=False) is not None
            }
            if entry.exclusive_owner is not None:
                owner_state = protocol.l1s[entry.exclusive_owner].state_of(
                    line, touch=False
                )
                if owner_state not in (MesiState.EXCLUSIVE, MesiState.MODIFIED):
                    return fail(
                        f"line {line}: directory owner "
                        f"{entry.exclusive_owner} holds state {owner_state}"
                    )
                if holders - {entry.exclusive_owner}:
                    return fail(
                        f"line {line} has an exclusive owner and other "
                        f"holders {holders}"
                    )
            else:
                unknown = holders - entry.sharers
                if unknown:
                    return fail(
                        f"line {line}: cores {unknown} hold copies the "
                        f"directory does not know about"
                    )
    return None
