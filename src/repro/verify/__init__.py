"""Small-scope exhaustive protocol verification.

The paper's section 4 derives DeNovoSync from four sufficient conditions
for sequentially consistent synchronization (write propagation, write
atomicity, write serialization, program order).  This package checks them
the brute-force way: enumerate *every* interleaving of small per-core
operation sequences, drive the protocol through each, and verify that
all synchronization accesses observe the latest committed write and that
the structural invariants (single writer, single registered reader,
exclusive-owner uniqueness) hold after every step.
"""

from repro.verify.checker import (
    CheckFailure,
    Op,
    VerificationReport,
    check_protocol_state,
    data_store,
    explore_protocol,
    rmw_inc,
    sync_load,
    sync_store,
)

__all__ = [
    "CheckFailure",
    "Op",
    "VerificationReport",
    "check_protocol_state",
    "data_store",
    "explore_protocol",
    "rmw_inc",
    "sync_load",
    "sync_store",
]
