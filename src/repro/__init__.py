"""DeNovoSync (ASPLOS 2015) reproduction.

An execution-driven multicore coherence simulator comparing MESI against
the DeNovoSync protocols (synchronization without writer-initiated
invalidations), with the paper's 24 synchronization kernels, 13
application models, and a harness regenerating every evaluation figure.

Quick start::

    from repro import config_16, make_kernel, run_workload, KernelSpec

    workload = make_kernel("tatas", "counter", spec=KernelSpec(scale=0.2))
    result = run_workload(workload, "DeNovoSync", config_16(), seed=1)
    print(result.cycles, result.traffic_breakdown())

See README.md for the architecture overview, DESIGN.md for the system
inventory, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.config import (
    BackoffConfig,
    LatencyRange,
    ProtocolTuning,
    SystemConfig,
    config_16,
    config_64,
    config_for_cores,
)
from repro.harness.runner import run_workload
from repro.noc.faults import FaultInjector, FaultPlan
from repro.protocols import PROTOCOLS, make_protocol
from repro.protocols.invariants import InvariantViolation
from repro.sim.watchdog import HangError, SimulationStuck, Watchdog
from repro.stats.collector import RunResult
from repro.workloads.base import KernelSpec

__version__ = "1.0.0"

__all__ = [
    "BackoffConfig",
    "FaultInjector",
    "FaultPlan",
    "HangError",
    "InvariantViolation",
    "KernelSpec",
    "LatencyRange",
    "PROTOCOLS",
    "ProtocolTuning",
    "RunResult",
    "SimulationStuck",
    "SystemConfig",
    "Watchdog",
    "config_16",
    "config_64",
    "config_for_cores",
    "make_app",
    "make_kernel",
    "make_protocol",
    "run_workload",
]


def make_kernel(*args, **kwargs):
    """Build one of the 24 synchronization kernels (lazy import)."""
    from repro.workloads.registry import make_kernel as _make_kernel

    return _make_kernel(*args, **kwargs)


def make_app(*args, **kwargs):
    """Build one of the 13 application models (lazy import)."""
    from repro.workloads.apps import make_app as _make_app

    return _make_app(*args, **kwargs)
