"""Export run results and figures to CSV / JSON for external analysis."""

from __future__ import annotations

import csv
import json
from typing import TextIO

from repro.harness.experiments import FigureResult
from repro.stats.collector import RunResult
from repro.stats.timeparts import TimeComponent

TIME_FIELDS = [c.value for c in TimeComponent]
TRAFFIC_FIELDS = ["LD", "ST", "SYNCH", "WB", "Inv"]


def result_to_dict(result: RunResult) -> dict:
    """Flatten one run into a JSON-friendly dict."""
    row = {
        "workload": result.workload,
        "protocol": result.protocol,
        "num_cores": result.num_cores,
        "cycles": result.cycles,
        "total_traffic": result.total_traffic,
    }
    for name, value in result.avg_time_breakdown.items():
        row[f"time.{name}"] = value
    for name, value in result.traffic_breakdown().items():
        row[f"traffic.{name}"] = value
    for name, value in sorted(result.counters.as_dict().items()):
        row[f"counter.{name}"] = value
    return row


def figure_to_rows(result: FigureResult) -> list[dict]:
    """Flatten a figure into per-(workload, protocol) rows with relative
    metrics against the MESI baseline."""
    rows = []
    for fig_row in result.rows:
        base = fig_row.results.get("MESI")
        for protocol, run in fig_row.results.items():
            row = result_to_dict(run)
            row["figure"] = result.figure
            row["scale"] = result.scale
            if base is not None:
                row["rel_time"] = fig_row.rel_time(protocol)
                row["rel_traffic"] = fig_row.rel_traffic(protocol)
            rows.append(row)
    return rows


def write_figure_csv(result: FigureResult, out: TextIO) -> int:
    """Write a figure as CSV; returns the number of data rows."""
    rows = figure_to_rows(result)
    if not rows:
        return 0
    fields = sorted({key for row in rows for key in row})
    # Lead with the identity columns.
    lead = ["figure", "workload", "protocol", "num_cores", "rel_time", "rel_traffic"]
    fields = [f for f in lead if f in fields] + [f for f in fields if f not in lead]
    writer = csv.DictWriter(out, fieldnames=fields, restval="")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return len(rows)


def write_figure_json(result: FigureResult, out: TextIO) -> int:
    """Write a figure as a JSON array; returns the number of rows."""
    rows = figure_to_rows(result)
    json.dump(rows, out, indent=2)
    out.write("\n")
    return len(rows)
