"""Text reports shaped like the paper's figures.

The paper's kernel figures are stacked bars normalized to MESI: parts
(a)/(c) decompose execution time into non-synch / compute / memory stall /
sw backoff / hw backoff / barrier components; parts (b)/(d) decompose
network traffic by message class.  These functions print the same data as
aligned text tables, one row per (kernel, protocol) bar.
"""

from __future__ import annotations

from typing import TextIO

import sys

from repro.harness.experiments import FigureResult
from repro.protocols import PROTOCOL_LABELS
from repro.stats.timeparts import TimeComponent

TIME_COMPONENTS = [c.value for c in TimeComponent]
TRAFFIC_CLASSES = ["LD", "ST", "SYNCH", "WB", "Inv"]


def _fmt(value: float) -> str:
    return f"{value:5.2f}"


def print_figure(result: FigureResult, out: TextIO = sys.stdout) -> None:
    """Print one figure's execution-time and traffic tables."""
    print(f"== {result.figure} (scale={result.scale}) ==", file=out)
    print_time_table(result, out)
    print(file=out)
    print_traffic_table(result, out)
    print(file=out)


def print_time_table(result: FigureResult, out: TextIO = sys.stdout) -> None:
    """Execution time normalized to MESI, with component decomposition.

    Components are expressed as fractions of the MESI total so the rows
    stack exactly like the paper's bars.
    """
    header = (
        f"{'workload':16s} {'cores':>5s} {'proto':>5s} {'time':>6s}  "
        + " ".join(f"{c:>12s}" for c in TIME_COMPONENTS)
    )
    print(header, file=out)
    for row in result.rows:
        base = row.results.get("MESI")
        base_total = max(1.0, sum(base.avg_time_breakdown.values())) if base else 1.0
        for protocol, res in row.results.items():
            label = PROTOCOL_LABELS.get(protocol, protocol)
            rel_time = row.rel_time(protocol) if base else float("nan")
            parts = res.avg_time_breakdown
            cells = " ".join(f"{parts[c] / base_total:12.3f}" for c in TIME_COMPONENTS)
            print(
                f"{row.workload:16s} {row.num_cores:5d} {label:>5s} "
                f"{_fmt(rel_time)}  {cells}",
                file=out,
            )


def print_traffic_table(result: FigureResult, out: TextIO = sys.stdout) -> None:
    """Network traffic (flit crossings) normalized to MESI, by class."""
    header = (
        f"{'workload':16s} {'cores':>5s} {'proto':>5s} {'traffic':>7s}  "
        + " ".join(f"{c:>8s}" for c in TRAFFIC_CLASSES)
    )
    print(header, file=out)
    for row in result.rows:
        base = row.results.get("MESI")
        base_total = max(1, base.total_traffic) if base else 1
        for protocol, res in row.results.items():
            label = PROTOCOL_LABELS.get(protocol, protocol)
            rel = row.rel_traffic(protocol) if base else float("nan")
            breakdown = res.traffic_breakdown()
            cells = " ".join(
                f"{breakdown.get(c, 0) / base_total:8.3f}" for c in TRAFFIC_CLASSES
            )
            print(
                f"{row.workload:16s} {row.num_cores:5d} {label:>5s} "
                f"{rel:7.2f}  {cells}",
                file=out,
            )


def figure_summary(result: FigureResult) -> dict[str, dict[str, float]]:
    """Geometric-mean-free summary: average rel time/traffic per protocol."""
    protocols: dict[str, dict[str, list[float]]] = {}
    for row in result.rows:
        if "MESI" not in row.results:
            continue
        for protocol in row.results:
            bucket = protocols.setdefault(protocol, {"time": [], "traffic": []})
            bucket["time"].append(row.rel_time(protocol))
            bucket["traffic"].append(row.rel_traffic(protocol))
    return {
        protocol: {
            "avg_rel_time": sum(v["time"]) / len(v["time"]),
            "avg_rel_traffic": sum(v["traffic"]) / len(v["traffic"]),
        }
        for protocol, v in protocols.items()
        if v["time"]
    }
