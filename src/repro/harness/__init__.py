"""Experiment harness: runners, figure definitions, reporting."""

from repro.harness.runner import run_workload

__all__ = ["run_workload"]
