"""Experiment harness: runners, figure definitions, reporting."""

from repro.harness.parallel import (
    CellError,
    CellOutcome,
    ResultCache,
    RunSpec,
    cache_key_for,
    run_specs,
    run_specs_outcomes,
    run_tasks,
)
from repro.harness.runner import run_workload

__all__ = [
    "CellError",
    "CellOutcome",
    "ResultCache",
    "RunSpec",
    "cache_key_for",
    "run_specs",
    "run_specs_outcomes",
    "run_tasks",
    "run_workload",
]
