"""Experiment harness: runners, figure definitions, reporting."""

from repro.harness.parallel import ResultCache, RunSpec, run_specs
from repro.harness.runner import run_workload

__all__ = ["ResultCache", "RunSpec", "run_specs", "run_workload"]
