"""Parallel, deterministic sweep execution with on-disk result caching.

Every cell of a figure sweep — one ``(workload, protocol, config, seed)``
simulation — is hermetic: :func:`repro.harness.runner.run_workload` builds
its own :class:`~repro.sim.engine.Simulator`, protocol and memory state, so
independent cells can run in separate worker processes with no shared
state.  This module fans a sweep's cells out to a
:class:`concurrent.futures.ProcessPoolExecutor` and collects results **in
submission order**, which makes the parallel sweep's output byte-identical
to the serial path (``jobs=1`` runs the very same code in-process).

Cells are described by :class:`RunSpec`, a picklable value object: the
workload is carried as a plain-tuple *descriptor* (rebuilt by
:func:`materialize_workload` inside the worker) rather than a live
``Workload`` object, because workload instances may close over generators
or monkey-patched builders that do not pickle.

:class:`ResultCache` adds an on-disk cache keyed by a SHA-256 of the
workload descriptor, protocol name, every :class:`SystemConfig` field, the
seed, and a hash of the ``repro`` package's source files (the *code
version*).  Re-running a figure therefore only simulates cells whose
inputs or simulator code changed; any edit under ``src/repro`` invalidates
the whole cache automatically.  Entries are stored as one pickle file per
key under ``<root>/<key[:2]>/<key>.pkl`` and written atomically.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Optional

from repro.config import SystemConfig
from repro.harness.runner import DEFAULT_MAX_EVENTS, run_workload
from repro.stats.collector import RunResult
from repro.workloads.base import KernelSpec, Workload

#: Default cache location (relative to the working directory) used by the
#: CLI; ``REPRO_CACHE_DIR`` overrides it.
DEFAULT_CACHE_DIR = os.path.join("results", ".runcache")


# -- workload descriptors -----------------------------------------------------
#
# A descriptor is a nested tuple of primitives (fully picklable and
# JSON-serializable after tuple->list coercion) that names a workload and
# every parameter needed to rebuild it bit-identically in a worker.


def kernel_cell(
    family: str,
    name: str,
    spec: Optional[KernelSpec] = None,
    padded: bool = True,
    **kernel_kwargs,
) -> tuple:
    """Descriptor for one synchronization kernel (Figures 3-6 families)."""
    spec = spec or KernelSpec()
    return (
        "kernel",
        family,
        name,
        (spec.iterations, spec.scale, spec.unbalanced),
        tuple(sorted(kernel_kwargs.items())),
        bool(padded),
    )


def app_cell(name: str, scale: float = 1.0) -> tuple:
    """Descriptor for one Figure 7 application model."""
    return ("app", name, float(scale))


def app_selfinv_cell(name: str, scale: float, flush_all: bool) -> tuple:
    """Descriptor for the section 3 self-invalidation ablation variants."""
    return ("app_selfinv", name, float(scale), bool(flush_all))


def unpadded(workload: Workload) -> Workload:
    """Wrap a kernel workload so its allocator does not pad sync variables."""
    original_build = workload.build

    def build(config, *, seed=0):
        from repro.mem import regions as regions_mod

        original_init = regions_mod.RegionAllocator.__init__

        def patched_init(self, amap, pad_sync_vars=True):
            original_init(self, amap, pad_sync_vars=False)

        regions_mod.RegionAllocator.__init__ = patched_init
        try:
            return original_build(config, seed=seed)
        finally:
            regions_mod.RegionAllocator.__init__ = original_init

    workload.build = build
    return workload


def materialize_workload(descriptor: tuple) -> Workload:
    """Rebuild the workload a descriptor names (runs inside the worker)."""
    kind = descriptor[0]
    if kind == "kernel":
        _, family, name, spec_fields, kwargs, padded = descriptor
        from repro.workloads.registry import make_kernel

        iterations, scale, unbalanced = spec_fields
        workload = make_kernel(
            family,
            name,
            spec=KernelSpec(iterations=iterations, scale=scale, unbalanced=unbalanced),
            **dict(kwargs),
        )
        return workload if padded else unpadded(workload)
    if kind == "app":
        from repro.workloads.apps import make_app

        return make_app(descriptor[1], scale=descriptor[2])
    if kind == "app_selfinv":
        from dataclasses import replace

        from repro.workloads.apps import APP_PROFILES, AppWorkload

        _, name, scale, flush_all = descriptor
        profile = replace(APP_PROFILES[name], flush_all_selfinv=flush_all)
        return AppWorkload(profile, scale=scale)
    raise ValueError(f"unknown workload descriptor kind {kind!r}")


# -- run specifications -------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One picklable sweep cell: (workload descriptor, protocol, config, seed)."""

    workload: tuple
    protocol: str
    config: SystemConfig
    seed: int = 0
    max_events: Optional[int] = DEFAULT_MAX_EVENTS

    def cache_token(self) -> dict:
        """Everything that determines this cell's result, JSON-serializable."""
        return {
            "format": 1,
            "workload": self.workload,
            "protocol": self.protocol,
            "config": asdict(self.config),
            "seed": self.seed,
            "max_events": self.max_events,
        }


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one cell to completion (the worker-process entry point)."""
    workload = materialize_workload(spec.workload)
    result = run_workload(
        workload, spec.protocol, spec.config, seed=spec.seed, max_events=spec.max_events
    )
    return result.portable_copy()


# -- code-version fingerprint -------------------------------------------------

_code_version: Optional[str] = None


def code_version() -> str:
    """SHA-256 over every ``repro`` source file; cached per process.

    Part of every cache key: editing anything under ``src/repro``
    invalidates all previously cached results.
    """
    global _code_version
    if _code_version is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_version = digest.hexdigest()
    return _code_version


# -- the on-disk result cache -------------------------------------------------


class ResultCache:
    """Content-addressed store of :class:`RunResult` pickles.

    ``hits`` / ``misses`` / ``stores`` count this instance's traffic (used
    by tests and the CLI's cache reporting).  A corrupt or unreadable entry
    is treated as a miss, and a failed write is skipped silently: the cache
    is best-effort and must never fail a sweep.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key_for(self, spec: RunSpec) -> str:
        token = spec.cache_token()
        token["code_version"] = code_version()
        blob = json.dumps(token, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def _path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def load(self, spec: RunSpec) -> Optional[RunResult]:
        path = self._path_for(self.key_for(spec))
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            self.misses += 1
            return None
        if not isinstance(result, RunResult):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, spec: RunSpec, result: RunResult) -> None:
        """Best-effort: an unwritable cache must never fail a sweep whose
        simulations already completed."""
        path = self._path_for(self.key_for(spec))
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publish: a concurrent reader sees the old entry or the
            # new one, never a torn pickle.
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result.portable_copy(), fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except OSError:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
            return
        self.stores += 1


# -- the sweep executor -------------------------------------------------------


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: None/0/negative mean "all host cores"."""
    if jobs is None or jobs < 1:
        return os.cpu_count() or 1
    return jobs


def run_specs(
    specs: Iterable[RunSpec],
    *,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
) -> list[RunResult]:
    """Run every spec; return results in spec order.

    ``jobs=1`` executes in-process (the serial reference path); ``jobs>1``
    fans uncached cells out to a process pool.  Results are collected in
    submission order regardless of completion order, and each cell is
    hermetic, so the returned list is identical for any ``jobs`` value.
    Freshly simulated results are written back to ``cache`` when given.
    """
    specs = list(specs)
    results: list[Optional[RunResult]] = [None] * len(specs)
    pending: list[int] = []
    for index, spec in enumerate(specs):
        cached = cache.load(spec) if cache is not None else None
        if cached is not None:
            results[index] = cached
        else:
            pending.append(index)

    jobs = resolve_jobs(jobs)
    if jobs > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = [(i, pool.submit(execute_spec, specs[i])) for i in pending]
            for index, future in futures:
                results[index] = future.result()
    else:
        for index in pending:
            results[index] = execute_spec(specs[index])

    if cache is not None:
        for index in pending:
            cache.store(specs[index], results[index])
    return results  # type: ignore[return-value]


def run_tasks(fn, calls: Iterable, *, jobs: int = 1) -> list:
    """Generic fan-out: ``[fn(call) for call in calls]`` with the same
    execution contract as :func:`run_specs` — ``jobs=1`` runs in-process,
    ``jobs>1`` uses a process pool (``fn`` and every call must pickle),
    and results always come back in submission order.  Used by sweeps
    whose cells are not :class:`RunSpec`-shaped (e.g. the model checker's
    litmus × protocol cells)."""
    calls = list(calls)
    jobs = resolve_jobs(jobs)
    if jobs > 1 and len(calls) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(calls))) as pool:
            futures = [pool.submit(fn, call) for call in calls]
            return [future.result() for future in futures]
    return [fn(call) for call in calls]


def default_cache(cache_dir: Optional[str] = None) -> ResultCache:
    """The CLI's cache: ``--cache-dir``, else ``$REPRO_CACHE_DIR``, else
    ``results/.runcache`` under the working directory."""
    root = cache_dir or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    return ResultCache(root)
