"""Parallel, deterministic sweep execution with on-disk result caching.

Every cell of a figure sweep — one ``(workload, protocol, config, seed)``
simulation — is hermetic: :func:`repro.harness.runner.run_workload` builds
its own :class:`~repro.sim.engine.Simulator`, protocol and memory state, so
independent cells can run in separate worker processes with no shared
state.  This module fans a sweep's cells out to a
:class:`concurrent.futures.ProcessPoolExecutor` and collects results **in
submission order**, which makes the parallel sweep's output byte-identical
to the serial path (``jobs=1`` runs the very same code in-process).

Cells are described by :class:`RunSpec`, a picklable value object: the
workload is carried as a plain-tuple *descriptor* (rebuilt by
:func:`materialize_workload` inside the worker) rather than a live
``Workload`` object, because workload instances may close over generators
or monkey-patched builders that do not pickle.

:class:`ResultCache` adds an on-disk cache keyed by a SHA-256 of the
workload descriptor, protocol name, every :class:`SystemConfig` field, the
seed, and a hash of the ``repro`` package's source files (the *code
version*).  Re-running a figure therefore only simulates cells whose
inputs or simulator code changed; any edit under ``src/repro`` invalidates
the whole cache automatically.  Entries are stored as one pickle file per
key under ``<root>/<key[:2]>/<key>.pkl`` and written atomically.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from collections.abc import Iterable

from repro.config import SystemConfig
from repro.harness.runner import DEFAULT_MAX_EVENTS, run_workload
from repro.stats.collector import RunResult
from repro.workloads.base import KernelSpec, Workload

#: Default cache location (relative to the working directory) used by the
#: CLI; ``REPRO_CACHE_DIR`` overrides it.
DEFAULT_CACHE_DIR = os.path.join("results", ".runcache")


# -- workload descriptors -----------------------------------------------------
#
# A descriptor is a nested tuple of primitives (fully picklable and
# JSON-serializable after tuple->list coercion) that names a workload and
# every parameter needed to rebuild it bit-identically in a worker.


def kernel_cell(
    family: str,
    name: str,
    spec: KernelSpec | None = None,
    padded: bool = True,
    **kernel_kwargs,
) -> tuple:
    """Descriptor for one synchronization kernel (Figures 3-6 families)."""
    spec = spec or KernelSpec()
    return (
        "kernel",
        family,
        name,
        (spec.iterations, spec.scale, spec.unbalanced),
        tuple(sorted(kernel_kwargs.items())),
        bool(padded),
    )


def app_cell(name: str, scale: float = 1.0) -> tuple:
    """Descriptor for one Figure 7 application model."""
    return ("app", name, float(scale))


def app_selfinv_cell(name: str, scale: float, flush_all: bool) -> tuple:
    """Descriptor for the section 3 self-invalidation ablation variants."""
    return ("app_selfinv", name, float(scale), bool(flush_all))


def unpadded(workload: Workload) -> Workload:
    """Wrap a kernel workload so its allocator does not pad sync variables."""
    original_build = workload.build

    def build(config, *, seed=0):
        from repro.mem import regions as regions_mod

        original_init = regions_mod.RegionAllocator.__init__

        def patched_init(self, amap, pad_sync_vars=True):
            original_init(self, amap, pad_sync_vars=False)

        regions_mod.RegionAllocator.__init__ = patched_init
        try:
            return original_build(config, seed=seed)
        finally:
            regions_mod.RegionAllocator.__init__ = original_init

    workload.build = build
    return workload


def materialize_workload(descriptor: tuple) -> Workload:
    """Rebuild the workload a descriptor names (runs inside the worker)."""
    kind = descriptor[0]
    if kind == "kernel":
        _, family, name, spec_fields, kwargs, padded = descriptor
        from repro.workloads.registry import make_kernel

        iterations, scale, unbalanced = spec_fields
        workload = make_kernel(
            family,
            name,
            spec=KernelSpec(iterations=iterations, scale=scale, unbalanced=unbalanced),
            **dict(kwargs),
        )
        return workload if padded else unpadded(workload)
    if kind == "app":
        from repro.workloads.apps import make_app

        return make_app(descriptor[1], scale=descriptor[2])
    if kind == "app_selfinv":
        from dataclasses import replace

        from repro.workloads.apps import APP_PROFILES, AppWorkload

        _, name, scale, flush_all = descriptor
        profile = replace(APP_PROFILES[name], flush_all_selfinv=flush_all)
        return AppWorkload(profile, scale=scale)
    raise ValueError(f"unknown workload descriptor kind {kind!r}")


# -- run specifications -------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """One picklable sweep cell: (workload descriptor, protocol, config, seed)."""

    workload: tuple
    protocol: str
    config: SystemConfig
    seed: int = 0
    max_events: int | None = DEFAULT_MAX_EVENTS

    def cache_token(self) -> dict:
        """Everything that determines this cell's result, JSON-serializable."""
        return {
            "format": 1,
            "workload": self.workload,
            "protocol": self.protocol,
            "config": asdict(self.config),
            "seed": self.seed,
            "max_events": self.max_events,
        }


def execute_spec(spec: RunSpec) -> RunResult:
    """Run one cell to completion (the worker-process entry point)."""
    workload = materialize_workload(spec.workload)
    result = run_workload(
        workload, spec.protocol, spec.config, seed=spec.seed, max_events=spec.max_events
    )
    return result.portable_copy()


# -- code-version fingerprint -------------------------------------------------

#: (source fingerprint, digest) of the last :func:`code_version` call.
_code_version_memo: tuple[tuple, str] | None = None


def _source_root() -> Path:
    """Directory whose ``*.py`` tree defines the code version (the
    installed ``repro`` package); a seam for tests."""
    import repro

    return Path(repro.__file__).resolve().parent


def _source_fingerprint(root: Path) -> tuple:
    """Cheap change detector: (relative path, mtime_ns, size) per source
    file.  Re-stating the tree costs microseconds, so a long-lived process
    (the job server) can check it on every cache-key computation; the full
    content rehash only happens when this tuple changes."""
    entries = []
    for path in sorted(root.rglob("*.py")):
        try:
            stat = path.stat()
        except OSError:
            continue  # deleted mid-scan; the next fingerprint differs anyway
        entries.append((str(path.relative_to(root)), stat.st_mtime_ns, stat.st_size))
    return tuple(entries)


def _hash_source_tree(root: Path) -> str:
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
    return digest.hexdigest()


def code_version() -> str:
    """SHA-256 over every ``repro`` source file.

    Part of every cache key: editing anything under ``src/repro``
    invalidates all previously cached results.  The digest is memoized
    against an mtime/size fingerprint of the source tree rather than per
    process, so a persistent server picks up source edits immediately
    instead of serving stale cache keys for its whole lifetime.
    """
    global _code_version_memo
    root = _source_root()
    fingerprint = _source_fingerprint(root)
    if _code_version_memo is None or _code_version_memo[0] != fingerprint:
        _code_version_memo = (fingerprint, _hash_source_tree(root))
    return _code_version_memo[1]


def cache_key_for(spec: RunSpec) -> str:
    """The content-addressed cache key of one cell: SHA-256 over the
    spec's :meth:`~RunSpec.cache_token` plus the current code version.
    Module-level so the job server can dedupe in-flight cells without a
    cache instance."""
    token = spec.cache_token()
    token["code_version"] = code_version()
    blob = json.dumps(token, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


# -- the on-disk result cache -------------------------------------------------


class ResultCache:
    """Content-addressed store of :class:`RunResult` pickles.

    ``hits`` / ``misses`` / ``stores`` count this instance's traffic (used
    by tests and the CLI's cache reporting).  A corrupt or unreadable entry
    is treated as a miss, and a failed write is skipped silently: the cache
    is best-effort and must never fail a sweep.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def key_for(self, spec: RunSpec) -> str:
        return cache_key_for(spec)

    def _path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def load(self, spec: RunSpec) -> RunResult | None:
        path = self._path_for(self.key_for(spec))
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            self.misses += 1
            return None
        if not isinstance(result, RunResult):
            self.misses += 1
            return None
        self.hits += 1
        return result

    #: Everything a failed write may raise: filesystem errors, plus what
    #: ``pickle.dump`` raises for unpicklable payloads (``PicklingError``,
    #: but also bare ``TypeError``/``AttributeError``/``ValueError`` from
    #: ``__reduce__`` of builtin types, and ``RecursionError`` on cyclic
    #: monsters).  All of them mean "skip the store", never "fail the sweep".
    _STORE_ERRORS = (
        OSError,
        pickle.PickleError,
        TypeError,
        AttributeError,
        ValueError,
        RecursionError,
    )

    def store(self, spec: RunSpec, result: RunResult) -> None:
        """Best-effort: an unwritable cache or an unpicklable result must
        never fail a sweep whose simulations already completed."""
        path = self._path_for(self.key_for(spec))
        tmp_name = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # Atomic publish: a concurrent reader sees the old entry or the
            # new one, never a torn pickle.
            fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(
                        result.portable_copy(), fh, protocol=pickle.HIGHEST_PROTOCOL
                    )
                os.replace(tmp_name, path)
                tmp_name = None
            finally:
                # Whatever went wrong (including errors _STORE_ERRORS does
                # not cover), never leak the mkstemp temp file.
                if tmp_name is not None:
                    try:
                        os.unlink(tmp_name)
                    except OSError:
                        pass
        except self._STORE_ERRORS:
            return
        self.stores += 1


# -- the sweep executor -------------------------------------------------------


def resolve_jobs(jobs: int | None, *, cap: int | None = None) -> int:
    """Normalize a ``--jobs`` value: None/0/negative mean "all host cores".

    ``cap`` bounds the answer from above (a service's configured worker
    budget); it applies even when ``os.cpu_count()`` cannot be determined
    and the core-count fallback of 1 kicks in.  The result is always >= 1.
    """
    if jobs is None or jobs < 1:
        jobs = os.cpu_count() or 1
    if cap is not None:
        jobs = min(jobs, cap)
    return max(1, jobs)


@dataclass(frozen=True)
class CellError:
    """Structured record of one failed sweep cell.

    Picklable and JSON-friendly (``exception`` excepted): the job server
    ships these in ``GET /jobs/<id>`` payloads, and :func:`run_specs` uses
    ``exception`` to re-raise the original error for serial callers.
    """

    kind: str
    message: str
    traceback: str
    exception: BaseException | None = None

    @classmethod
    def from_exception(cls, exc: BaseException) -> "CellError":
        import traceback as traceback_mod

        return cls(
            kind=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                traceback_mod.format_exception(type(exc), exc, exc.__traceback__)
            ),
            exception=exc,
        )

    def as_dict(self) -> dict:
        return {"kind": self.kind, "message": self.message, "traceback": self.traceback}


@dataclass
class CellOutcome:
    """Result-or-error slot for one cell of a sweep.

    Exactly one of ``result`` / ``error`` is set.  ``source`` records how
    the result was obtained: ``"cache"`` (served from the on-disk cache)
    or ``"run"`` (freshly simulated).
    """

    spec: RunSpec
    result: RunResult | None = None
    error: CellError | None = None
    source: str = "run"

    @property
    def ok(self) -> bool:
        return self.error is None


def run_specs_outcomes(
    specs: Iterable[RunSpec],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> list[CellOutcome]:
    """Run every spec with per-cell failure isolation.

    Like :func:`run_specs` but never raises for a failing cell: each slot
    of the returned list is a :class:`CellOutcome` carrying either the
    cell's :class:`RunResult` or a structured :class:`CellError`.  Every
    completed cell is written back to ``cache`` even when siblings fail —
    a poisoned cell costs only its own slot, not the sweep.
    """
    specs = list(specs)
    outcomes: list[CellOutcome | None] = [None] * len(specs)
    pending: list[int] = []
    for index, spec in enumerate(specs):
        cached = cache.load(spec) if cache is not None else None
        if cached is not None:
            outcomes[index] = CellOutcome(spec, result=cached, source="cache")
        else:
            pending.append(index)

    jobs = resolve_jobs(jobs)
    if jobs > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = [(i, pool.submit(execute_spec, specs[i])) for i in pending]
            for index, future in futures:
                try:
                    result = future.result()
                except Exception as exc:
                    outcomes[index] = CellOutcome(
                        specs[index], error=CellError.from_exception(exc)
                    )
                else:
                    outcomes[index] = CellOutcome(specs[index], result=result)
    else:
        for index in pending:
            try:
                result = execute_spec(specs[index])
            except Exception as exc:
                outcomes[index] = CellOutcome(
                    specs[index], error=CellError.from_exception(exc)
                )
            else:
                outcomes[index] = CellOutcome(specs[index], result=result)

    if cache is not None:
        for index in pending:
            outcome = outcomes[index]
            if outcome is not None and outcome.result is not None:
                cache.store(specs[index], outcome.result)
    return outcomes  # type: ignore[return-value]


def run_specs(
    specs: Iterable[RunSpec],
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> list[RunResult]:
    """Run every spec; return results in spec order.

    ``jobs=1`` executes in-process (the serial reference path); ``jobs>1``
    fans uncached cells out to a process pool.  Results are collected in
    submission order regardless of completion order, and each cell is
    hermetic, so the returned list is identical for any ``jobs`` value.
    Freshly simulated results are written back to ``cache`` when given.

    A raising cell still fails the sweep (the first cell error is
    re-raised, in spec order), but only after every other cell has run to
    completion and every completed result has been stored to ``cache`` —
    re-running the sweep after fixing the poisoned cell re-simulates
    nothing else.  Use :func:`run_specs_outcomes` to capture per-cell
    errors structurally instead of raising.
    """
    outcomes = run_specs_outcomes(specs, jobs=jobs, cache=cache)
    for outcome in outcomes:
        if outcome.error is not None:
            exc = outcome.error.exception
            if exc is None:  # pragma: no cover - exception always captured
                raise RuntimeError(
                    f"cell {outcome.spec} failed: {outcome.error.message}"
                )
            completed = sum(1 for o in outcomes if o.ok)
            if hasattr(exc, "add_note"):
                exc.add_note(
                    f"sweep cell {outcome.spec.workload!r} under "
                    f"{outcome.spec.protocol} failed; {completed}/{len(outcomes)} "
                    f"sibling cells completed and were retained in the cache"
                )
            raise exc
    return [outcome.result for outcome in outcomes]  # type: ignore[return-value]


def run_tasks(
    fn, calls: Iterable, *, jobs: int = 1, return_exceptions: bool = False
) -> list:
    """Generic fan-out: ``[fn(call) for call in calls]`` with the same
    execution contract as :func:`run_specs` — ``jobs=1`` runs in-process,
    ``jobs>1`` uses a process pool (``fn`` and every call must pickle),
    and results always come back in submission order.  Used by sweeps
    whose cells are not :class:`RunSpec`-shaped (e.g. the model checker's
    litmus × protocol cells).

    Every call runs to completion even when a sibling raises.  With
    ``return_exceptions`` the failed slots hold the exception objects
    themselves (mirroring ``asyncio.gather``); otherwise the first error
    is re-raised once all calls have finished.
    """
    calls = list(calls)
    jobs = resolve_jobs(jobs)
    slots: list = [None] * len(calls)
    if jobs > 1 and len(calls) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(calls))) as pool:
            futures = [pool.submit(fn, call) for call in calls]
            for index, future in enumerate(futures):
                try:
                    slots[index] = future.result()
                except Exception as exc:
                    slots[index] = exc
    else:
        for index, call in enumerate(calls):
            try:
                slots[index] = fn(call)
            except Exception as exc:
                slots[index] = exc
    if not return_exceptions:
        for slot in slots:
            if isinstance(slot, Exception):
                raise slot
    return slots


def default_cache(cache_dir: str | None = None) -> ResultCache:
    """The CLI's cache: ``--cache-dir``, else ``$REPRO_CACHE_DIR``, else
    ``results/.runcache`` under the working directory."""
    root = cache_dir or os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR
    return ResultCache(root)
