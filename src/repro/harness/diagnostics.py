"""Render watchdog hang dumps: everything needed to diagnose a stuck run.

:func:`build_dump` snapshots the simulation the moment the watchdog
trips; :meth:`DiagnosticDump.render` formats it for humans.  A dump
answers the questions a hang investigation always starts with:

* which cores are blocked, on what operation, for how long, and in what
  wait state (``spin-sleep (subscribed)`` is the tell-tale of a lost
  wake-up — the PR-1 bug class);
* what the protocol thinks about each contested address: the
  directory/registry entry, every core's cached state, and who is
  subscribed to a change;
* what transient state is still in flight: busy directory windows,
  registration chains, sleeping subscriptions, fault-injector activity;
* how deep the event queue is (zero = quiescence deadlock, nonzero =
  livelock).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BlockedCoreInfo:
    """One unfinished core's wait state at dump time."""

    core_id: int
    pending_op: str
    wait_reason: str
    blocked_since: int
    blocked_for: int


@dataclass
class DiagnosticDump:
    """Structured snapshot of a hung simulation."""

    reason: str
    protocol: str
    cycle: int
    progress_cycle: int
    pending_events: int
    blocked: list[BlockedCoreInfo] = field(default_factory=list)
    contested: list[str] = field(default_factory=list)
    transients: list[str] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            "=== watchdog diagnostic dump ===",
            f"reason: {self.reason}",
            f"protocol: {self.protocol}  cycle: {self.cycle}  "
            f"last progress: cycle {self.progress_cycle}  "
            f"pending events: {self.pending_events}",
            f"blocked cores ({len(self.blocked)}):",
        ]
        if not self.blocked:
            lines.append("  (none)")
        for info in self.blocked:
            lines.append(
                f"  core {info.core_id}: {info.pending_op} — "
                f"{info.wait_reason}, blocked since cycle "
                f"{info.blocked_since} ({info.blocked_for} cycles)"
            )
        lines.append("contested addresses:")
        if not self.contested:
            lines.append("  (none)")
        for entry in self.contested:
            lines.append(f"  {entry}")
        lines.append("in-flight transient state:")
        if not self.transients:
            lines.append("  (none)")
        for entry in self.transients:
            lines.append(f"  {entry}")
        lines.append("=== end of dump ===")
        return "\n".join(lines)


def _protocol_chain(protocol) -> list:
    """The wrapper chain outermost-first (TracingProtocol / FaultInjector
    each expose the wrapped protocol as ``.inner``)."""
    chain = [protocol]
    while hasattr(chain[-1], "inner"):
        chain.append(chain[-1].inner)
    return chain


def _op_addrs(op) -> list[int]:
    """Addresses referenced by an ISA op (most have one; Compute has none)."""
    addr = getattr(op, "addr", None)
    return [addr] if addr is not None else []


def build_dump(sim, cores, protocol, reason: str) -> DiagnosticDump:
    """Snapshot ``sim``/``cores``/``protocol`` into a :class:`DiagnosticDump`."""
    chain = _protocol_chain(protocol)
    inner = chain[-1]
    dump = DiagnosticDump(
        reason=reason,
        protocol=getattr(inner, "name", "?"),
        cycle=sim.now,
        progress_cycle=sim.progress_cycle,
        pending_events=sim.pending_events,
    )
    contested_addrs: list[int] = []
    for core in cores:
        if core.done:
            continue
        dump.blocked.append(
            BlockedCoreInfo(
                core_id=core.core_id,
                pending_op=repr(core.pending_op),
                wait_reason=core.wait_reason or "(unknown)",
                blocked_since=core.blocked_since,
                blocked_for=sim.now - core.blocked_since,
            )
        )
        for addr in _op_addrs(core.pending_op):
            if addr not in contested_addrs:
                contested_addrs.append(addr)
    describe = getattr(inner, "debug_addr_state", None)
    if describe is not None:
        dump.contested = [describe(addr) for addr in contested_addrs]
    # Collect transients from every layer that reports its own (the fault
    # injector adds its plan/activity line on top of the protocol's;
    # TracingProtocol has none and is skipped).
    for layer in chain:
        transients = getattr(layer, "debug_transients", None)
        if transients is not None:
            dump.transients.extend(transients())
    return dump
