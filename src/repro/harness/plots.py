"""ASCII renderings of the paper's figures.

The evaluation figures are stacked bars normalized to MESI; this module
renders the same data as horizontal text bars so a terminal run of the
harness looks like the paper.  No plotting dependency needed.
"""

from __future__ import annotations

import sys
from typing import TextIO

from repro.harness.experiments import FigureResult
from repro.protocols import PROTOCOL_LABELS
from repro.stats.timeparts import TimeComponent

#: One glyph per time component, in stacking order (matches the legend).
COMPONENT_GLYPHS = [
    (TimeComponent.NON_SYNCH, "."),
    (TimeComponent.COMPUTE, "c"),
    (TimeComponent.MEMORY_STALL, "M"),
    (TimeComponent.SW_BACKOFF, "s"),
    (TimeComponent.HW_BACKOFF, "h"),
    (TimeComponent.BARRIER_STALL, "b"),
]

TRAFFIC_GLYPHS = [("LD", "L"), ("ST", "S"), ("SYNCH", "Y"), ("WB", "W"), ("Inv", "I")]


def _bar(fractions: list[tuple[str, float]], width: int) -> str:
    """Render a stacked bar: each (glyph, fraction-of-MESI) segment."""
    cells: list[str] = []
    carry = 0.0
    for glyph, fraction in fractions:
        exact = fraction * width + carry
        count = int(round(exact))
        carry = exact - count
        cells.append(glyph * max(0, count))
    return "".join(cells)


def render_time_bars(
    result: FigureResult, out: TextIO = sys.stdout, width: int = 50
) -> None:
    """Stacked execution-time bars, normalized so MESI spans ``width``."""
    legend = " ".join(f"{g}={c.value}" for c, g in COMPONENT_GLYPHS)
    print(f"-- execution time ({legend}) --", file=out)
    for row in result.rows:
        base = row.results.get("MESI")
        if base is None:
            continue
        base_total = max(1.0, sum(base.avg_time_breakdown.values()))
        for protocol, run in row.results.items():
            label = PROTOCOL_LABELS.get(protocol, protocol)
            parts = run.avg_time_breakdown
            fractions = [
                (glyph, parts[component.value] / base_total)
                for component, glyph in COMPONENT_GLYPHS
            ]
            bar = _bar(fractions, width)
            print(
                f"{row.workload:>14s}/{row.num_cores:<3d}{label:>4s} |{bar}",
                file=out,
            )


def render_traffic_bars(
    result: FigureResult, out: TextIO = sys.stdout, width: int = 50
) -> None:
    """Stacked traffic bars by message class, MESI = full width."""
    legend = " ".join(f"{g}={name}" for name, g in TRAFFIC_GLYPHS)
    print(f"-- network traffic ({legend}) --", file=out)
    for row in result.rows:
        base = row.results.get("MESI")
        if base is None:
            continue
        base_total = max(1, base.total_traffic)
        for protocol, run in row.results.items():
            label = PROTOCOL_LABELS.get(protocol, protocol)
            breakdown = run.traffic_breakdown()
            fractions = [
                (glyph, breakdown.get(name, 0) / base_total)
                for name, glyph in TRAFFIC_GLYPHS
            ]
            bar = _bar(fractions, width)
            print(
                f"{row.workload:>14s}/{row.num_cores:<3d}{label:>4s} |{bar}",
                file=out,
            )


def render_figure(result: FigureResult, out: TextIO = sys.stdout, width: int = 50) -> None:
    print(f"== {result.figure} (scale={result.scale}) ==", file=out)
    render_time_bars(result, out, width)
    print(file=out)
    render_traffic_bars(result, out, width)
