"""Run one (workload, protocol, system) configuration to completion."""

from __future__ import annotations

from repro.config import SystemConfig
from repro.cpu.core import Core
from repro.protocols import make_protocol
from repro.sim.engine import Simulator
from repro.sim.watchdog import (
    DEFAULT_PROGRESS_WINDOW,
    HangError,
    SimulationStuck,
    Watchdog,
)
from repro.stats.collector import RunResult
from repro.workloads.base import Workload

#: Safety net against livelocked kernels; generous for paper-scale runs.
DEFAULT_MAX_EVENTS = 50_000_000

__all__ = [
    "DEFAULT_MAX_EVENTS",
    "HangError",
    "SimulationStuck",
    "run_workload",
]


def run_workload(
    workload: Workload,
    protocol_name: str,
    config: SystemConfig,
    *,
    seed: int = 0,
    max_events: int | None = DEFAULT_MAX_EVENTS,
    keep_protocol: bool = False,
    trace: bool = False,
    fault_plan=None,
    max_cycles: int | None = None,
    progress_window: int | None = DEFAULT_PROGRESS_WINDOW,
) -> RunResult:
    """Build ``workload`` for ``config``, run it under ``protocol_name``.

    Returns the :class:`RunResult` with execution-time decomposition,
    traffic by message class, and protocol event counters.  With
    ``keep_protocol`` the protocol object is attached under
    ``result.meta["protocol"]`` so callers can inspect final memory and
    cache state (used by tests and examples).  With ``trace`` every
    access is recorded and attached under ``result.meta["trace"]`` (a
    list of :class:`~repro.trace.events.AccessRecord`).

    Liveness is supervised by a :class:`~repro.sim.watchdog.Watchdog`:
    ``progress_window`` cycles without any core retiring an operation
    (None disables the check), or the clock passing ``max_cycles``,
    raises :class:`~repro.sim.watchdog.HangError` with a diagnostic
    dump; an event queue that drains with unfinished cores raises
    :class:`~repro.sim.watchdog.SimulationStuck` (a ``HangError``).

    ``fault_plan`` (a :class:`~repro.noc.faults.FaultPlan`) perturbs the
    run with seeded legal faults — delay jitter, bounded reordering,
    eviction storms; the injector is attached under
    ``result.meta["fault_injector"]`` for inspection.
    """
    instance = workload.build(config, seed=seed)
    protocol = make_protocol(protocol_name, config, instance.allocator)
    injector = None
    if fault_plan is not None and fault_plan.active:
        from repro.noc.faults import FaultInjector

        injector = FaultInjector(protocol, fault_plan)
        protocol = injector
    if trace:
        from repro.trace.recorder import TracingProtocol

        protocol = TracingProtocol(protocol)
    for addr, value in instance.initial_values.items():
        protocol.memory.write(addr, value)

    sim = Simulator()
    sim.epoch_mode = config.epoch_mode
    cores = [Core(core_id, sim, protocol) for core_id in range(config.num_cores)]
    watchdog = Watchdog(
        sim, cores, protocol, window=progress_window, max_cycles=max_cycles
    )
    sim.watchdog = watchdog
    if injector is not None:
        injector.attach(sim, lambda: any(not core.done for core in cores))
    for core, program in zip(cores, instance.programs):
        core.start(program)

    sim.run(max_events=max_events)

    watchdog.check_quiescent()
    if config.invariant_level != "off":
        # Whole-run invariant net: even with sampling, no run ends without
        # one full audit of the final protocol state.
        protocol.check_invariants()

    cycles = max(core.finish_time for core in cores)
    meta = dict(instance.meta)
    # Perf-only observability: summaries/stat JSON exclude meta, so the
    # epoch counters never perturb the byte-identity contract.
    meta["epoch"] = {"mode": sim.epoch_mode, **sim.epoch_stats}
    if keep_protocol:
        meta["protocol"] = protocol
    if trace:
        meta["trace"] = protocol.records
    if injector is not None:
        meta["fault_injector"] = injector
    return RunResult(
        workload=instance.name,
        protocol=protocol_name,
        num_cores=config.num_cores,
        cycles=cycles,
        per_core_time=[core.time for core in cores],
        traffic=protocol.traffic,
        counters=protocol.counters,
        meta=meta,
    )
