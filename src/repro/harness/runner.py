"""Run one (workload, protocol, system) configuration to completion."""

from __future__ import annotations

from typing import Optional

from repro.config import SystemConfig
from repro.cpu.core import Core
from repro.protocols import make_protocol
from repro.sim.engine import Simulator
from repro.stats.collector import RunResult
from repro.workloads.base import Workload

#: Safety net against livelocked kernels; generous for paper-scale runs.
DEFAULT_MAX_EVENTS = 50_000_000


class SimulationStuck(RuntimeError):
    """The event queue drained with unfinished cores (a deadlocked workload)."""


def run_workload(
    workload: Workload,
    protocol_name: str,
    config: SystemConfig,
    *,
    seed: int = 0,
    max_events: Optional[int] = DEFAULT_MAX_EVENTS,
    keep_protocol: bool = False,
    trace: bool = False,
) -> RunResult:
    """Build ``workload`` for ``config``, run it under ``protocol_name``.

    Returns the :class:`RunResult` with execution-time decomposition,
    traffic by message class, and protocol event counters.  With
    ``keep_protocol`` the protocol object is attached under
    ``result.meta["protocol"]`` so callers can inspect final memory and
    cache state (used by tests and examples).  With ``trace`` every
    access is recorded and attached under ``result.meta["trace"]`` (a
    list of :class:`~repro.trace.events.AccessRecord`).
    """
    instance = workload.build(config, seed=seed)
    protocol = make_protocol(protocol_name, config, instance.allocator)
    if trace:
        from repro.trace.recorder import TracingProtocol

        protocol = TracingProtocol(protocol)
    for addr, value in instance.initial_values.items():
        protocol.memory.write(addr, value)

    sim = Simulator()
    cores = [Core(core_id, sim, protocol) for core_id in range(config.num_cores)]
    for core, program in zip(cores, instance.programs):
        core.start(program)

    sim.run(max_events=max_events)

    unfinished = [core.core_id for core in cores if not core.done]
    if unfinished:
        raise SimulationStuck(
            f"workload {instance.name!r} under {protocol_name}: cores "
            f"{unfinished} never finished (deadlock or missing wake-up) "
            f"at cycle {sim.now}"
        )

    cycles = max(core.finish_time for core in cores)
    meta = dict(instance.meta)
    if keep_protocol:
        meta["protocol"] = protocol
    if trace:
        meta["trace"] = protocol.records
    return RunResult(
        workload=instance.name,
        protocol=protocol_name,
        num_cores=config.num_cores,
        cycles=cycles,
        per_core_time=[core.time for core in cores],
        traffic=protocol.traffic,
        counters=protocol.counters,
        meta=meta,
    )
