"""Experiment definitions: one entry per table/figure in the paper.

Each experiment regenerates the rows/series of one figure:

* Figures 3-6: the four kernel families, each at 16 and 64 cores, under
  MESI / DeNovoSync0 / DeNovoSync, reporting execution time and network
  traffic normalized to MESI with the same component decomposition as the
  paper's stacked bars.
* Figure 7: the 13 applications under MESI / DeNovoSync (ferret and x264
  at 16 cores, the rest at 64).
* The section 7.1 ablations: lock padding, software backoff on TATAS
  kernels, and the Herlihy equality-check modification.

``scale`` shrinks the paper's iteration counts/inputs so a full figure
sweep stays tractable in pure Python; the shapes are stable across scales
(see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import config_for_cores
from repro.harness.parallel import (
    RunSpec,
    ResultCache,
    app_cell,
    app_selfinv_cell,
    kernel_cell,
    run_specs,
    unpadded,
)
from repro.protocols.registry import app_comparison_set, default_comparison_set
from repro.stats.collector import RunResult
from repro.workloads.apps import APP_NAMES, app_core_count
from repro.workloads.base import KernelSpec
from repro.workloads.registry import kernel_names

# Registry-derived comparison sets (MESI registers first, so the
# figures' rel_time/rel_traffic baseline column stays in front).
KERNEL_PROTOCOLS = default_comparison_set()
APP_PROTOCOLS = app_comparison_set()

FIGURE_FOR_FAMILY = {
    "tatas": "Figure 3 (TATAS locks)",
    "array": "Figure 4 (array locks)",
    "nonblocking": "Figure 5 (non-blocking algorithms)",
    "barrier": "Figure 6 (barriers)",
    "mcs": "Extension (MCS queue locks)",
}


@dataclass
class FigureRow:
    """One (workload, cores) row of a figure: results per protocol."""

    workload: str
    num_cores: int
    results: dict[str, RunResult] = field(default_factory=dict)

    def rel_time(self, protocol: str, baseline: str = "MESI") -> float:
        return self.results[protocol].cycles / max(1, self.results[baseline].cycles)

    def rel_traffic(self, protocol: str, baseline: str = "MESI") -> float:
        return self.results[protocol].total_traffic / max(
            1, self.results[baseline].total_traffic
        )


@dataclass
class FigureResult:
    """All rows of one figure reproduction."""

    figure: str
    rows: list[FigureRow]
    scale: float


def run_kernel_figure(
    family: str,
    core_counts: tuple[int, ...] = (16, 64),
    scale: float = 0.1,
    seed: int = 1,
    protocols: tuple[str, ...] = KERNEL_PROTOCOLS,
    names: list[str] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
    epoch_mode: bool = True,
    **kernel_kwargs,
) -> FigureResult:
    """Reproduce one kernel figure (3, 4, 5 or 6).

    ``jobs`` fans independent (workload, protocol, cores) cells out to
    worker processes; the row/result ordering is identical for any value
    (see :mod:`repro.harness.parallel`).  ``cache`` skips cells already
    simulated with identical inputs and code.  ``epoch_mode=False``
    forces the reference per-event engine loop (CLI ``--no-epoch``);
    results are byte-identical either way.
    """
    rows: list[FigureRow] = []
    specs: list[RunSpec] = []
    slots: list[tuple[FigureRow, str]] = []
    for cores in core_counts:
        config = config_for_cores(cores, epoch_mode=epoch_mode)
        for name in names or kernel_names(family):
            row = FigureRow(workload=name, num_cores=cores)
            rows.append(row)
            for protocol in protocols:
                specs.append(
                    RunSpec(
                        kernel_cell(
                            family, name, spec=KernelSpec(scale=scale), **kernel_kwargs
                        ),
                        protocol,
                        config,
                        seed=seed,
                    )
                )
                slots.append((row, protocol))
    for (row, protocol), result in zip(slots, run_specs(specs, jobs=jobs, cache=cache)):
        row.results[protocol] = result
    return FigureResult(FIGURE_FOR_FAMILY[family], rows, scale)


def run_apps_figure(
    scale: float = 0.5,
    seed: int = 2,
    protocols: tuple[str, ...] = APP_PROTOCOLS,
    names: list[str] | None = None,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> FigureResult:
    """Reproduce Figure 7 (applications)."""
    rows: list[FigureRow] = []
    specs: list[RunSpec] = []
    slots: list[tuple[FigureRow, str]] = []
    for name in names or APP_NAMES:
        cores = app_core_count(name)
        config = config_for_cores(cores)
        row = FigureRow(workload=name, num_cores=cores)
        rows.append(row)
        for protocol in protocols:
            specs.append(RunSpec(app_cell(name, scale=scale), protocol, config, seed=seed))
            slots.append((row, protocol))
    for (row, protocol), result in zip(slots, run_specs(specs, jobs=jobs, cache=cache)):
        row.results[protocol] = result
    return FigureResult("Figure 7 (applications)", rows, scale)


# -- section 7.1 ablations ----------------------------------------------------


def headline_summary(figures: list[FigureResult]) -> dict[str, dict[str, float]]:
    """Aggregate the abstract's headline numbers over kernel figures.

    The paper's abstract: "compared to MESI, DeNovoSync shows comparable
    or up to 22% lower execution time and up to 58% lower network
    traffic" over the 48 kernel cases (24 kernels x 2 core counts), and
    22%/58% are the kernel-average improvements.  Returns, per non-MESI
    protocol: mean/best/worst relative time and traffic across all rows.
    """
    stats: dict[str, dict[str, list[float]]] = {}
    for figure in figures:
        for row in figure.rows:
            if "MESI" not in row.results:
                continue
            for protocol in row.results:
                if protocol == "MESI":
                    continue
                bucket = stats.setdefault(protocol, {"time": [], "traffic": []})
                bucket["time"].append(row.rel_time(protocol))
                bucket["traffic"].append(row.rel_traffic(protocol))
    summary = {}
    for protocol, bucket in stats.items():
        times, traffics = bucket["time"], bucket["traffic"]
        summary[protocol] = {
            "cases": len(times),
            "avg_rel_time": sum(times) / len(times),
            "best_rel_time": min(times),
            "worst_rel_time": max(times),
            "avg_rel_traffic": sum(traffics) / len(traffics),
            "best_rel_traffic": min(traffics),
            "worst_rel_traffic": max(traffics),
        }
    return summary


def run_padding_ablation(
    cores: int = 16,
    scale: float = 0.1,
    seed: int = 1,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> dict[str, FigureResult]:
    """Section 7.1.1: TATAS kernels with and without lock padding.

    Without padding, lock words share cache lines with each other, so
    MESI suffers false sharing; DeNovo's word-granularity state is immune
    but loses the one-transfer-per-line benefit.
    """
    config = config_for_cores(cores)
    specs: list[RunSpec] = []
    slots: list[tuple[str, FigureRow, str]] = []
    figures: dict[str, list[FigureRow]] = {}
    for padded in (True, False):
        label = "padded" if padded else "unpadded"
        figures[label] = []
        for name in kernel_names("tatas"):
            row = FigureRow(workload=name, num_cores=cores)
            figures[label].append(row)
            for protocol in KERNEL_PROTOCOLS:
                specs.append(
                    RunSpec(
                        kernel_cell(
                            "tatas", name, spec=KernelSpec(scale=scale), padded=padded
                        ),
                        protocol,
                        config,
                        seed=seed,
                    )
                )
                slots.append((label, row, protocol))
    for (label, row, protocol), result in zip(
        slots, run_specs(specs, jobs=jobs, cache=cache)
    ):
        row.results[protocol] = result
    return {
        label: FigureResult(f"TATAS locks ({label})", rows, scale)
        for label, rows in figures.items()
    }


def _unpadded(workload):
    """Back-compat alias for :func:`repro.harness.parallel.unpadded`."""
    return unpadded(workload)


def run_sw_backoff_ablation(
    cores: int = 64,
    scale: float = 0.1,
    seed: int = 1,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> dict[str, FigureResult]:
    """Section 7.1.1: TATAS kernels with software exponential backoff.

    The paper found software backoff widens DeNovo's gap over MESI: it
    spaces failed synchronization reads (reducing DeNovo's false-race
    misses) but does nothing about MESI's invalidation latency.
    """
    results = {}
    for backoff in (False, True):
        fig = run_kernel_figure(
            "tatas",
            core_counts=(cores,),
            scale=scale,
            seed=seed,
            jobs=jobs,
            cache=cache,
            software_backoff=backoff,
        )
        label = "sw backoff" if backoff else "no backoff"
        results[label] = FigureResult(f"TATAS locks ({label})", fig.rows, scale)
    return results


def run_selfinv_ablation(
    app: str = "water",
    scale: float = 0.3,
    seed: int = 2,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> dict[str, FigureResult]:
    """Section 3's data-consistency spectrum on one application.

    Compares DeNovoSync with compiler-provided selective region
    self-invalidation (the paper's assumption) against the always-correct
    no-information fallback that flushes every Valid word at each acquire
    and phase boundary.  MESI is the common baseline.
    """
    cores = app_core_count(app)
    config = config_for_cores(cores)
    specs: list[RunSpec] = []
    slots: list[tuple[str, FigureRow, str]] = []
    labelled_rows: dict[str, FigureRow] = {}
    for flush_all in (False, True):
        label = "flush-all" if flush_all else "selective regions"
        row = FigureRow(workload=app, num_cores=cores)
        labelled_rows[label] = row
        for protocol in APP_PROTOCOLS:
            specs.append(
                RunSpec(
                    app_selfinv_cell(app, scale, flush_all), protocol, config, seed=seed
                )
            )
            slots.append((label, row, protocol))
    for (label, row, protocol), result in zip(
        slots, run_specs(specs, jobs=jobs, cache=cache)
    ):
        row.results[protocol] = result
    return {
        label: FigureResult(f"{app} ({label} self-invalidation)", [row], scale)
        for label, row in labelled_rows.items()
    }


def run_eqcheck_ablation(
    cores: int = 64,
    scale: float = 0.1,
    seed: int = 1,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> dict[str, FigureResult]:
    """Section 7.1.3: Herlihy kernels, original vs reduced equality checks.

    The original versions re-read the shared pointer to filter doomed
    attempts early — free under MESI's cached spinning, a registration
    miss under DeNovo.  The paper's modified (reduced-check) versions help
    DeNovo far more than MESI.
    """
    results = {}
    for reduced in (False, True):
        fig = run_kernel_figure(
            "nonblocking",
            core_counts=(cores,),
            scale=scale,
            seed=seed,
            jobs=jobs,
            cache=cache,
            names=["Herlihy stack", "Herlihy heap"],
            reduced_checks=reduced,
        )
        label = "reduced checks" if reduced else "original checks"
        results[label] = FigureResult(f"Herlihy kernels ({label})", fig.rows, scale)
    return results
