"""Chaos differential sweep: perturbed runs must converge to the same state.

For workloads whose final memory state is interleaving-independent
(lock-protected commutative updates, per-core disjoint words), *any*
legal perturbation of the schedule — delay jitter, bounded reordering,
eviction storms — must leave the final backing store byte-identical to
the unperturbed run, terminate, and keep every coherence invariant.  A
divergence is a protocol bug by construction, with a seed that
reproduces it.

:func:`run_chaos_sweep` runs the cross product of chaos-safe workloads ×
protocols × fault seeds (one unperturbed baseline per workload/protocol
pair, reused across seeds) with full runtime invariant checking armed,
and reports per-cell verdicts.  The CLI's ``chaos`` target and the CI
chaos-smoke job drive it; ``tests/test_faults.py`` asserts on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Sequence

from repro.config import SystemConfig, config_for_cores
from repro.harness.runner import run_workload
from repro.noc.faults import FaultPlan
from repro.protocols.registry import chaos_comparison_set
from repro.verify.checker import check_protocol_state

#: The chaos acceptance set: every default-comparison protocol that
#: advertises fault-injection hooks and runtime invariant checking.
CHAOS_PROTOCOLS = chaos_comparison_set()

#: How many differing words to name before truncating a mismatch report.
MAX_REPORTED_DIFFS = 8


def chaos_workloads(scale: float = 0.05) -> list[tuple[str, Callable]]:
    """(label, workload factory) pairs with interleaving-independent final
    memory: lock-protected commutative increments (counter, large CS) and
    per-core disjoint words (false sharing).  Structure kernels (queues,
    heap) are excluded — their final layout legitimately depends on the
    schedule."""
    from repro.workloads.base import KernelSpec
    from repro.workloads.micro import FalseSharingMicro
    from repro.workloads.registry import make_kernel

    return [
        (
            "tatas/counter",
            lambda: make_kernel("tatas", "counter", spec=KernelSpec(scale=scale)),
        ),
        (
            "tatas/large CS",
            lambda: make_kernel("tatas", "large CS", spec=KernelSpec(scale=scale)),
        ),
        ("micro.falsesharing", lambda: FalseSharingMicro(rounds=8)),
    ]


def default_fault_plan(seed: int) -> FaultPlan:
    """The standard chaos perturbation: a bit of everything."""
    return FaultPlan(
        seed=seed,
        delay_jitter=7,
        reorder_prob=0.05,
        reorder_delay=24,
        evict_period=300,
        evict_lines=2,
    )


@dataclass
class ChaosCell:
    """Verdict of one (workload, protocol, fault seed) differential."""

    workload: str
    protocol: str
    seed: int
    baseline_cycles: int
    perturbed_cycles: int
    injected: str
    mismatches: list[str] = field(default_factory=list)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.violations

    def describe(self) -> str:
        verdict = "ok" if self.ok else "FAIL"
        line = (
            f"[{verdict}] {self.workload} / {self.protocol} / fault seed "
            f"{self.seed}: {self.baseline_cycles} -> "
            f"{self.perturbed_cycles} cycles ({self.injected})"
        )
        for msg in self.mismatches + self.violations:
            line += f"\n    {msg}"
        return line


def diff_memory(baseline: dict[int, int], perturbed: dict[int, int]) -> list[str]:
    """Word-level differences between two backing-store snapshots."""
    diffs = []
    for addr in sorted(baseline.keys() | perturbed.keys()):
        base, pert = baseline.get(addr), perturbed.get(addr)
        if base != pert:
            diffs.append(
                f"word {addr}: baseline {base} != perturbed {pert}"
            )
            if len(diffs) > MAX_REPORTED_DIFFS:
                diffs.append("... (further differences truncated)")
                break
    return diffs


def run_chaos_cell(
    factory: Callable,
    protocol_name: str,
    config: SystemConfig,
    plan: FaultPlan,
    label: str,
    baseline_snapshot: dict[int, int] | None = None,
    baseline_cycles: int = 0,
) -> ChaosCell:
    """One differential: perturbed run vs (possibly precomputed) baseline."""
    if baseline_snapshot is None:
        baseline = run_workload(factory(), protocol_name, config, keep_protocol=True)
        baseline_snapshot = baseline.meta["protocol"].memory.snapshot()
        baseline_cycles = baseline.cycles
    perturbed = run_workload(
        factory(), protocol_name, config, keep_protocol=True, fault_plan=plan
    )
    injector = perturbed.meta["fault_injector"]
    protocol = perturbed.meta["protocol"]
    return ChaosCell(
        workload=label,
        protocol=protocol_name,
        seed=plan.seed,
        baseline_cycles=baseline_cycles,
        perturbed_cycles=perturbed.cycles,
        injected=(
            f"{injector.injected_delay} delay cycles, "
            f"{injector.deferrals} deferrals, "
            f"{injector.forced_evictions} forced evictions"
        ),
        mismatches=diff_memory(
            baseline_snapshot, protocol.memory.snapshot()
        ),
        violations=check_protocol_state(protocol),
    )


def run_chaos_sweep(
    protocols: Sequence[str] = CHAOS_PROTOCOLS,
    seeds: Sequence[int] = (1, 2, 3),
    num_cores: int = 16,
    scale: float = 0.05,
    invariant_level: str = "full",
    plan_for_seed: Callable[[int], FaultPlan] = default_fault_plan,
    epoch_mode: bool = True,
) -> list[ChaosCell]:
    """The full differential matrix, with runtime invariants armed.

    ``epoch_mode=False`` runs every cell on the reference per-event
    engine loop (CLI ``--no-epoch``) — a differential control: the
    sweep's verdicts must be identical in both modes.
    """
    config = config_for_cores(
        num_cores, invariant_level=invariant_level, epoch_mode=epoch_mode
    )
    cells = []
    for label, factory in chaos_workloads(scale):
        for protocol_name in protocols:
            baseline = run_workload(
                factory(), protocol_name, config, keep_protocol=True
            )
            snapshot = baseline.meta["protocol"].memory.snapshot()
            for seed in seeds:
                cells.append(
                    run_chaos_cell(
                        factory,
                        protocol_name,
                        config,
                        plan_for_seed(seed),
                        label,
                        baseline_snapshot=snapshot,
                        baseline_cycles=baseline.cycles,
                    )
                )
    return cells
