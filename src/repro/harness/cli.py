"""Command-line entry point: regenerate any of the paper's figures.

Usage (installed as ``denovosync-bench``)::

    denovosync-bench fig3 --cores 16 64 --scale 0.1
    denovosync-bench fig7 --scale 0.5
    denovosync-bench ablation-padding
    denovosync-bench all --scale 0.05 --out results/

``--scale 1.0`` runs the paper's full iteration counts (slow in pure
Python); the default keeps a laptop run in minutes while preserving the
figure shapes.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.harness.experiments import (
    run_apps_figure,
    run_eqcheck_ablation,
    run_kernel_figure,
    run_padding_ablation,
    run_selfinv_ablation,
    run_sw_backoff_ablation,
)
from repro.harness.export import write_figure_csv, write_figure_json
from repro.harness.parallel import default_cache
from repro.harness.plots import render_figure
from repro.harness.report import print_figure
from repro.protocols.registry import (
    chaos_comparison_set,
    default_comparison_set,
    protocol_names,
    sanitize_comparison_set,
)

FIGURE_FAMILIES = {
    "fig3": "tatas",
    "fig4": "array",
    "fig5": "nonblocking",
    "fig6": "barrier",
}


def _open_out(out_dir: str | None, name: str):
    if out_dir is None:
        return sys.stdout
    os.makedirs(out_dir, exist_ok=True)
    return open(os.path.join(out_dir, f"{name}.txt"), "w")


def _emit(result, out, args) -> None:
    if args.format == "csv":
        write_figure_csv(result, out)
    elif args.format == "json":
        write_figure_json(result, out)
    elif args.format == "plot":
        render_figure(result, out)
        print(file=out)
    else:
        print_figure(result, out)


def _sweep_options(args) -> dict:
    """Parallelism/caching options shared by every figure sweep."""
    cache = None if args.no_cache else default_cache(args.cache_dir)
    return {"jobs": args.jobs, "cache": cache}


def _run_one(target: str, args) -> None:
    out = _open_out(args.out, target)
    sweep = _sweep_options(args)
    try:
        if target in FIGURE_FAMILIES:
            result = run_kernel_figure(
                FIGURE_FAMILIES[target],
                core_counts=tuple(args.cores),
                scale=args.scale,
                seed=args.seed,
                epoch_mode=not args.no_epoch,
                **sweep,
            )
            _emit(result, out, args)
        elif target == "fig7":
            result = run_apps_figure(scale=args.app_scale, seed=args.seed, **sweep)
            _emit(result, out, args)
        elif target == "ablation-padding":
            for label, result in run_padding_ablation(scale=args.scale, **sweep).items():
                print(f"-- {label} --", file=out)
                _emit(result, out, args)
        elif target == "ablation-swbackoff":
            for label, result in run_sw_backoff_ablation(
                scale=args.scale, **sweep
            ).items():
                print(f"-- {label} --", file=out)
                _emit(result, out, args)
        elif target == "ablation-eqchecks":
            for label, result in run_eqcheck_ablation(scale=args.scale, **sweep).items():
                print(f"-- {label} --", file=out)
                _emit(result, out, args)
        elif target == "ablation-selfinv":
            for label, result in run_selfinv_ablation(
                scale=args.app_scale, **sweep
            ).items():
                print(f"-- {label} --", file=out)
                _emit(result, out, args)
        else:
            raise SystemExit(f"unknown target {target!r}")
    finally:
        if out is not sys.stdout:
            out.close()


ALL_TARGETS = [
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "ablation-padding",
    "ablation-swbackoff",
    "ablation-eqchecks",
    "ablation-selfinv",
]


def _fault_plan_from_args(args):
    """Build a :class:`~repro.noc.faults.FaultPlan` from CLI flags, or
    None when no fault flag was given."""
    from repro.noc.faults import FaultPlan

    plan = FaultPlan(
        seed=args.fault_seed,
        delay_jitter=args.fault_jitter,
        reorder_prob=args.fault_reorder,
        evict_period=args.fault_evict_period,
        evict_lines=args.fault_evict_lines,
    )
    return plan if plan.active else None


def _run_chaos(args) -> int:
    """The ``chaos`` target: seeded fault-injection differential sweep."""
    from repro.harness.chaos import run_chaos_sweep
    from repro.protocols.registry import chaos_comparison_set

    protocols = (
        tuple(args.protocols) if args.protocols else chaos_comparison_set()
    )
    cells = run_chaos_sweep(
        protocols=protocols,
        seeds=tuple(args.seeds),
        num_cores=args.cores[0],
        scale=args.scale,
        invariant_level=args.invariant_level or "full",
        epoch_mode=not args.no_epoch,
    )
    failures = 0
    for cell in cells:
        print(cell.describe())
        failures += not cell.ok
    print(
        f"chaos sweep: {len(cells) - failures}/{len(cells)} cells converged "
        f"(seeds {list(args.seeds)}, {args.cores[0]} cores)"
    )
    return 1 if failures else 0


def _run_mc(args) -> int:
    """The ``mc`` target: exhaustive interleaving exploration (DPOR +
    preemption bounding) of the litmus corpus, or counterexample replay."""
    from repro.harness.parallel import run_tasks
    from repro.mc.cells import McCell, run_cell
    from repro.mc.litmus import CORPUS

    if args.replay is not None:
        from repro.mc.artifact import replay_counterexample

        payload, report = replay_counterexample(args.replay)
        violation = payload["violation"]
        print(
            f"replaying {payload['test']} under {payload['protocol']} "
            f"({len(payload['schedule'])} choices): "
            f"[{violation['kind']}] {violation['message']}"
        )
        print(f"  {report.describe()}")
        return 0 if (report.reproduced and report.trace_identical) else 1

    names = args.litmus or sorted(CORPUS)
    unknown = [name for name in names if name not in CORPUS]
    if unknown:
        raise SystemExit(
            f"unknown litmus test(s) {unknown}; available: {sorted(CORPUS)}"
        )
    from repro.protocols.registry import default_comparison_set

    protocols = (
        tuple(args.protocols) if args.protocols else default_comparison_set()
    )
    cells = [
        McCell(
            test_name=name,
            protocol=protocol,
            bound=args.bound,
            max_schedules=args.max_schedules,
            out_dir=args.mc_out,
            epoch_mode=not args.no_epoch,
        )
        for name in names
        for protocol in protocols
    ]
    outcomes = run_tasks(run_cell, cells, jobs=args.jobs)
    violations = 0
    for outcome in outcomes:
        print(outcome.describe())
        violations += not outcome.ok
    print(
        f"mc: {len(outcomes) - violations}/{len(outcomes)} cells clean "
        f"(preemption bound {args.bound}, "
        f"{len(names)} tests x {len(protocols)} protocols)"
    )
    return 1 if violations else 0


def _run_sanitize(args) -> int:
    """The ``sanitize`` target: the static lint pass over the synclib and
    workloads sources, plus the dynamic happens-before / self-invalidation
    analysis of every kernel under every requested protocol."""
    from repro.harness.parallel import run_tasks
    from repro.sanitize.cells import SanitizeCell, run_cell
    from repro.sanitize.findings import Report
    from repro.protocols.registry import sanitize_comparison_set
    from repro.sanitize.lint import (
        SIMULATOR_RULES,
        default_lint_targets,
        lint_paths,
        simulator_lint_targets,
    )
    from repro.workloads.registry import all_kernel_ids

    protocols = (
        tuple(args.protocols) if args.protocols else sanitize_comparison_set()
    )
    report = Report()

    lint_findings, linted = lint_paths(default_lint_targets())
    sim_findings, sim_linted = lint_paths(
        simulator_lint_targets(), rules=SIMULATOR_RULES
    )
    lint_findings = lint_findings + sim_findings
    linted = linted + sim_linted
    report.extend(lint_findings)
    report.lint_files = linted

    cells = [
        SanitizeCell(
            family=family,
            kernel=kernel,
            protocol=protocol,
            cores=args.cores[0],
            scale=args.scale,
            seed=args.seed,
        )
        for family, kernel in all_kernel_ids()
        for protocol in protocols
    ]
    outcomes = run_tasks(run_cell, cells, jobs=args.jobs)
    dirty = 0
    for outcome in outcomes:
        print(outcome.describe())
        dirty += not outcome.ok
        report.extend(outcome.findings)
        report.cells.append(
            {
                "cell": outcome.cell_id,
                "cores": outcome.cores,
                "records": outcome.records,
                "racy_unannotated_pairs": outcome.racy_unannotated_pairs,
                "stale_read_hazards": outcome.stale_read_hazards,
            }
        )

    for finding in report.findings:
        if finding.severity == "error" and not finding.details.get("cell"):
            print(f"lint error [{finding.kind}] {finding.site}: {finding.message}")
    lint_errors = sum(
        1 for f in lint_findings if f.severity == "error"
    )
    print(
        f"sanitize: {len(outcomes) - dirty}/{len(outcomes)} dynamic cells clean "
        f"({len(all_kernel_ids())} kernels x {len(protocols)} protocols, "
        f"{args.cores[0]} cores, scale {args.scale}); lint: {lint_errors} "
        f"error(s), {sum(1 for f in lint_findings if f.severity == 'warning')} "
        f"warning(s) over {len(linted)} files"
    )
    if args.sanitize_out:
        os.makedirs(os.path.dirname(args.sanitize_out) or ".", exist_ok=True)
        with open(args.sanitize_out, "w") as fh:
            fh.write(report.to_json())
            fh.write("\n")
        print(f"report: {args.sanitize_out}")
    return 0 if report.clean else 1


def _run_formal(args) -> int:
    """The ``formal`` target: verify each modelled protocol against its
    guarded-action model — static conformance of the implementation,
    small-scope exhaustive exploration of the model's invariants, the
    litmus divergence oracle, and TLA+ module export."""
    from repro.formal.cells import FormalCell, run_cell
    from repro.harness.parallel import run_tasks
    from repro.mc.litmus import CORPUS
    from repro.protocols.registry import formal_model_set
    from repro.sanitize.findings import Report

    unknown = [name for name in (args.litmus or []) if name not in CORPUS]
    if unknown:
        raise SystemExit(
            f"unknown litmus test(s) {unknown}; available: {sorted(CORPUS)}"
        )
    protocols = (
        tuple(args.protocols) if args.protocols else formal_model_set()
    )
    unmodelled = [
        name for name in protocols if name not in formal_model_set()
    ]
    if unmodelled:
        raise SystemExit(
            f"protocol(s) {unmodelled} declare no formal model; "
            f"modelled: {list(formal_model_set())}"
        )
    cells = [
        FormalCell(
            protocol=protocol,
            divergence_bound=args.divergence_bound,
            divergence_schedules=args.divergence_schedules,
            litmus=tuple(args.litmus) if args.litmus else (),
            epoch_mode=not args.no_epoch,
        )
        for protocol in protocols
    ]
    outcomes = run_tasks(run_cell, cells, jobs=args.jobs)

    report = Report()
    dirty = 0
    for outcome in outcomes:
        print(outcome.describe())
        dirty += not outcome.ok
        report.extend(outcome.findings)
        report.cells.append(
            {
                "cell": f"{outcome.protocol} x {outcome.model}",
                "protocol": outcome.protocol,
                "model": outcome.model,
                "coverage": outcome.coverage,
                "exploration": outcome.explore_stats,
                "divergence": outcome.oracle_stats,
                "tla_module": outcome.tla_module,
            }
        )
        if args.tla_out:
            os.makedirs(args.tla_out, exist_ok=True)
            path = os.path.join(args.tla_out, f"{outcome.tla_module}.tla")
            with open(path, "w") as fh:
                fh.write(outcome.tla_text)
            print(f"  tla: {path}")
    for finding in report.findings:
        if finding.severity == "error":
            print(f"formal error [{finding.kind}] {finding.site}: "
                  f"{finding.message}")
    print(
        f"formal: {len(outcomes) - dirty}/{len(outcomes)} protocols verified "
        f"({len(report.errors)} error finding(s), "
        f"{len(report.warnings)} warning(s); divergence bound "
        f"{args.divergence_bound}, {args.divergence_schedules} schedules/test)"
    )
    if args.formal_out:
        os.makedirs(os.path.dirname(args.formal_out) or ".", exist_ok=True)
        with open(args.formal_out, "w") as fh:
            fh.write(report.to_json())
            fh.write("\n")
        print(f"report: {args.formal_out}")
    return 1 if dirty else 0


def _run_serve(args) -> int:
    """The ``serve`` target: run the sweep job server until interrupted."""
    from repro.service import run_server

    cache = None if args.no_cache else default_cache(args.cache_dir)
    run_server(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache=cache,
        max_queued=args.max_queued,
        cell_deadline=args.cell_deadline,
        max_retries=args.max_retries,
        drain_timeout=args.drain_timeout,
    )
    return 0


def _run_chaos_service(args) -> int:
    """The ``chaos-service`` target: attack a live sweep server (worker
    SIGKILLs, poisoned cells, deadline overruns) and verify it self-heals."""
    from repro.service.chaos import ChaosConfig, run_service_chaos

    config = ChaosConfig(
        workers=args.workers or 2,
        kills=args.kills,
        kill_interval=args.kill_interval,
        cores=args.cores[0],
        scale=args.scale if args.scale_given else 0.3,
        seed=args.seed,
        cell_deadline=args.cell_deadline or 5.0,
        max_retries=args.max_retries,
        wait_timeout=args.wait_timeout,
        cache_dir=args.cache_dir,
    )
    report = run_service_chaos(config)
    print(report.describe())
    return 0 if report.ok else 1


def _submit_cells(args) -> list:
    """Build the RunSpec cells of a ``submit`` sweep: every requested
    kernel x protocol x core count, mirroring :func:`run_kernel_figure`."""
    from repro.config import config_for_cores
    from repro.harness.parallel import RunSpec, kernel_cell
    from repro.workloads.base import KernelSpec
    from repro.workloads.registry import kernel_names

    from repro.protocols.registry import default_comparison_set

    names = args.names or kernel_names(args.sweep_family)
    protocols = (
        tuple(args.protocols) if args.protocols else default_comparison_set()
    )
    specs = []
    for cores in args.cores:
        config = config_for_cores(cores)
        for name in names:
            for protocol in protocols:
                specs.append(
                    RunSpec(
                        kernel_cell(
                            args.sweep_family, name, spec=KernelSpec(scale=args.scale)
                        ),
                        protocol,
                        config,
                        seed=args.seed,
                    )
                )
    return specs


def _print_job_detail(status: dict) -> None:
    counts = status["counts"]
    print(
        f"job {status['job']}: {status['status']} "
        f"({counts['done']} done, {counts['failed']} failed, "
        f"{counts['running']} running, {counts['queued']} queued)"
    )
    for cell in status.get("cell_details", []):
        line = (
            f"  [{cell['index']:3d}] {cell['workload']:24s} "
            f"{cell['protocol']:12s} {cell['cores']:4d} cores  "
            f"{cell['status']:7s} ({cell['source']})"
        )
        if cell["status"] == "done" and cell["summary"]:
            line += f"  {cell['summary']['cycles']} cycles"
        elif cell["status"] == "failed" and cell["error"]:
            line += f"  {cell['error']['kind']}: {cell['error']['message']}"
        print(line)


def _run_submit(args) -> int:
    """The ``submit`` target: POST a kernel sweep to a running server."""
    from repro.service import ServiceClient

    client = ServiceClient(args.host, args.port)
    specs = _submit_cells(args)
    accepted = client.submit_specs(specs)
    print(
        f"submitted {accepted['cells']} cells as job {accepted['job']} "
        f"(poll with: status --job {accepted['job']} --port {args.port})"
    )
    if not args.wait:
        return 0
    status = client.wait(accepted["job"], timeout=args.wait_timeout)
    _print_job_detail(status)
    return 0 if status["status"] == "done" else 1


def _run_status(args) -> int:
    """The ``status`` target: server health + job list, or one job's detail."""
    from repro.service import ServiceClient

    client = ServiceClient(args.host, args.port)
    if args.job:
        _print_job_detail(client.job(args.job))
        return 0
    health = client.healthz()
    workers = health["workers"]
    print(
        f"service {health['status']}: uptime {health['uptime_seconds']}s, "
        f"{workers['alive']}/{workers['configured']} workers alive, "
        f"queue depth {health['queue_depth']}, "
        f"cache hit rate {health['cache_hit_rate']:.0%}, "
        f"{health['cells_per_second']:.2f} cells/s"
    )
    jobs = client.jobs()["jobs"]
    if not jobs:
        print("no jobs submitted")
    for job in jobs:
        counts = job["counts"]
        print(
            f"  {job['job']}: {job['status']} — {counts['done']}/{job['cells']} done, "
            f"{counts['failed']} failed, {counts['running']} running, "
            f"{counts['queued']} queued"
        )
    return 0


def _build_workload(args):
    """Resolve ``--workload family/name`` into (workload, core count)."""
    from repro.workloads.base import KernelSpec

    spec = args.workload
    if "/" in spec:
        family, name = spec.split("/", 1)
        if family == "app":
            from repro.workloads.apps import app_core_count, make_app

            workload = make_app(name, scale=args.app_scale)
            cores = args.cores[0] if args.cores_given else app_core_count(name)
        elif family == "micro":
            from repro.workloads.micro import MICROBENCHES

            workload = MICROBENCHES[f"micro.{name}"]()
            cores = args.cores[0]
        else:
            from repro.workloads.registry import make_kernel

            workload = make_kernel(family, name, spec=KernelSpec(scale=args.scale))
            cores = args.cores[0]
    else:
        raise SystemExit(
            f"--workload must be family/name (e.g. tatas/counter, app/LU, "
            f"micro/pingpong), got {spec!r}"
        )
    return workload, cores


def _run_profile(args) -> int:
    """The ``profile`` target: cProfile one run, print hot functions.

    Profiles exactly what ``run`` executes (workload build excluded, so
    the numbers are all simulation) and prints the top functions by
    cumulative time — the first place to look before optimizing, and the
    quickest way to confirm a change moved the needle.
    """
    import cProfile
    import pstats

    from repro.config import config_for_cores
    from repro.harness.runner import run_workload

    workload, cores = _build_workload(args)
    overrides = {"epoch_mode": not args.no_epoch}
    if args.invariant_level is not None:
        overrides["invariant_level"] = args.invariant_level
    config = config_for_cores(cores, **overrides)

    profiler = cProfile.Profile()
    profiler.enable()
    result = run_workload(workload, args.protocol, config, seed=args.seed)
    profiler.disable()

    print(
        f"{result.workload} under {result.protocol} on {cores} cores: "
        f"{result.cycles} cycles"
    )
    _print_epoch_block(result)
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(args.top)
    if args.profile_out:
        stats.dump_stats(args.profile_out)
        print(f"raw profile -> {args.profile_out} (pstats/snakeviz readable)")
    return 0


def _print_epoch_block(result) -> None:
    """Print the epoch-execution counters of one run (profile/run targets).

    Perf-only observability: these live in ``result.meta`` so they never
    reach summaries or stat JSON (the byte-identity surfaces).
    """
    epoch = result.meta.get("epoch")
    if not epoch:
        return
    mode = "on" if epoch["mode"] else "off"
    print(f"  epoch execution ({mode}):")
    print(f"    epochs entered     {epoch['epochs']:12d}")
    print(f"    events batched     {epoch['events_batched']:12d}")
    print(f"    spin polls elided  {epoch['spin_polls_elided']:12d}")
    fallbacks = epoch["fallbacks"] or {}
    rendered = (
        ", ".join(f"{k}={v}" for k, v in fallbacks.items())
        if fallbacks
        else "none"
    )
    print(f"    fallbacks          {rendered:>12s}")


def _run_single(args) -> int:
    """The ``run`` target: one workload, one protocol, full detail."""
    from repro.config import config_for_cores
    from repro.harness.runner import run_workload
    from repro.stats.energy import EnergyModel

    workload, cores = _build_workload(args)

    overrides = {"epoch_mode": not args.no_epoch}
    if args.invariant_level is not None:
        overrides["invariant_level"] = args.invariant_level
    config = config_for_cores(cores, **overrides)
    from repro.sim.watchdog import HangError

    try:
        result = run_workload(
            workload,
            args.protocol,
            config,
            seed=args.seed,
            trace=args.trace is not None,
            fault_plan=_fault_plan_from_args(args),
            max_cycles=args.max_cycles,
        )
    except HangError as exc:
        # The message already carries the watchdog's rendered dump.
        print(f"simulation aborted: {exc}", file=sys.stderr)
        return 2
    print(f"{result.workload} under {result.protocol} on {cores} cores:")
    print(f"  cycles        {result.cycles}")
    print(f"  total traffic {result.total_traffic} flit-crossings")
    print("  time breakdown:")
    for component, cycles in result.avg_time_breakdown.items():
        if cycles:
            print(f"    {component:14s} {cycles:12.1f}")
    print("  traffic breakdown:")
    for klass, flits in result.traffic_breakdown().items():
        if flits:
            print(f"    {klass:14s} {flits:12d}")
    model = EnergyModel()
    print("  dynamic energy (pJ):")
    for part, pj in model.breakdown(result).items():
        print(f"    {part:14s} {pj:12.0f}")
    notable = {
        k: v
        for k, v in sorted(result.counters.as_dict().items())
        if v and not k.startswith("l1_")
    }
    print("  counters:")
    for key, value in notable.items():
        print(f"    {key:32s} {value:10d}")
    _print_epoch_block(result)
    if args.trace is not None:
        from repro.trace.events import write_trace

        count = write_trace(result.meta["trace"], args.trace)
        print(f"  trace: {count} records -> {args.trace}")
    return 0


def _run_protocols(args) -> int:
    """The ``protocols`` target: print the protocol plugin registry.

    With ``--check-doc PATH...`` also verify each file still embeds the
    registry-generated markdown table verbatim — CI runs this so the
    README/architecture protocol tables can never drift from the code.
    ``--format json`` emits the capability descriptors as JSON and
    ``--format csv``/``plot`` fall back to the markdown table (the form
    meant for embedding); the default is the aligned text table.
    """
    import json as _json

    from repro.protocols.registry import (
        iter_protocols,
        registry_markdown_table,
        registry_table,
    )

    if args.format == "json":
        infos = [
            {
                key: getattr(info, key)
                for key in (
                    "name", "label", "paper", "summary", "tracking",
                    "invalidation", "backoff", "requires_annotations",
                    "fault_hooks", "runtime_invariants",
                    "default_comparison", "app_comparison",
                )
            }
            for info in iter_protocols()
        ]
        print(_json.dumps(infos, indent=2))
    elif args.format in ("csv", "plot"):
        print(registry_markdown_table())
    else:
        print(registry_table())

    failures = 0
    expected = registry_markdown_table()
    for path in args.check_doc or []:
        try:
            with open(path) as fh:
                text = fh.read()
        except OSError as exc:
            print(f"{path}: unreadable ({exc})")
            failures += 1
            continue
        if expected in text:
            print(f"{path}: protocol table in sync with the registry")
        else:
            print(
                f"{path}: protocol table is OUT OF SYNC with the registry "
                f"— re-embed the output of "
                f"'denovosync-bench protocols --format csv'"
            )
            failures += 1
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="denovosync-bench",
        description="Regenerate the DeNovoSync (ASPLOS'15) evaluation figures.",
    )
    parser.add_argument(
        "target",
        choices=ALL_TARGETS
        + ["all", "run", "profile", "chaos", "mc", "sanitize", "formal",
           "serve", "submit", "status", "chaos-service", "protocols"],
    )
    parser.add_argument(
        "--workload", default=None,
        help="for 'run': family/name, e.g. tatas/counter, nonblocking/"
        "'M-S queue', app/LU, micro/pingpong",
    )
    parser.add_argument(
        "--protocol", default="DeNovoSync",
        choices=list(protocol_names()), metavar="NAME",
        help="for 'run': " + ", ".join(protocol_names())
        + " (default: DeNovoSync)",
    )
    parser.add_argument(
        "--trace", default=None,
        help="for 'run': write a JSONL access trace to this path",
    )
    parser.add_argument(
        "--top", type=int, default=25,
        help="for 'profile': number of functions to print (default 25)",
    )
    parser.add_argument(
        "--profile-out", default=None,
        help="for 'profile': also dump the raw cProfile stats to this path",
    )
    parser.add_argument(
        "--cores", type=int, nargs="+", default=[16, 64],
        help="core counts for the kernel figures (default: 16 64)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="fraction of the paper's kernel iteration counts (default 0.1)",
    )
    parser.add_argument(
        "--app-scale", type=float, default=0.5,
        help="input scale for the Figure 7 application models (default 0.5)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--max-cycles", type=int, default=None,
        help="for 'run': abort with a watchdog dump once the simulated "
        "clock passes this cycle (guards against runaway runs)",
    )
    parser.add_argument(
        "--no-epoch", action="store_true",
        help="disable epoch execution (batched advancement of uncontended "
        "stretches + spin fast-forward) and run the reference per-event "
        "engine loop; results are byte-identical either way",
    )
    parser.add_argument(
        "--invariant-level", choices=["off", "sampled", "full"], default=None,
        help="arm the runtime coherence invariant checker (default: off "
        "for 'run', full for 'chaos')",
    )
    parser.add_argument(
        "--seeds", type=int, nargs="+", default=[1, 2, 3],
        help="for 'chaos': fault seeds to sweep (default: 1 2 3)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=0,
        help="for 'run': seed of the fault-injection RNG",
    )
    parser.add_argument(
        "--fault-jitter", type=int, default=0,
        help="for 'run': max extra cycles of per-access delay jitter",
    )
    parser.add_argument(
        "--fault-reorder", type=float, default=0.0,
        help="for 'run': probability of deferring (reordering) an access",
    )
    parser.add_argument(
        "--fault-evict-period", type=int, default=0,
        help="for 'run': cycles between forced L1 eviction storms (0: off)",
    )
    parser.add_argument(
        "--fault-evict-lines", type=int, default=1,
        help="for 'run': random evictions attempted per storm",
    )
    parser.add_argument(
        "--bound", type=int, default=2,
        help="for 'mc': preemption bound (CHESS-style; -1 = unbounded)",
    )
    parser.add_argument(
        "--litmus", nargs="+", default=None,
        help="for 'mc'/'formal': litmus tests to explore (default: the "
        "whole corpus)",
    )
    parser.add_argument(
        "--protocols", nargs="+", default=None,
        choices=list(protocol_names()), metavar="NAME",
        help="for 'mc'/'sanitize'/'formal'/'chaos'/'submit': protocols to "
        "sweep, "
        "out of " + ", ".join(protocol_names())
        + " (default: the registry's capability-filtered set per "
        "target: mc/submit "
        + " ".join(default_comparison_set())
        + "; sanitize " + " ".join(sanitize_comparison_set())
        + "; chaos " + " ".join(chaos_comparison_set()) + ")",
    )
    parser.add_argument(
        "--check-doc", nargs="+", default=None, metavar="PATH",
        help="for 'protocols': verify each file embeds the registry's "
        "generated markdown table verbatim (exit 1 on drift)",
    )
    parser.add_argument(
        "--max-schedules", type=int, default=20_000,
        help="for 'mc': truncate exploration of a cell after this many "
        "schedules (reported as [truncated])",
    )
    parser.add_argument(
        "--replay", default=None,
        help="for 'mc': replay a counterexample artifact (.json) and "
        "verify it reproduces deterministically",
    )
    parser.add_argument(
        "--mc-out", default=os.path.join("results", "mc"),
        help="for 'mc': directory for counterexample artifacts "
        "(default: results/mc)",
    )
    parser.add_argument(
        "--formal-out", default=os.path.join("results", "formal.json"),
        help="for 'formal': path of the JSON findings report "
        "(default: results/formal.json; empty string disables)",
    )
    parser.add_argument(
        "--tla-out", default=os.path.join("results", "formal"),
        help="for 'formal': directory for exported TLA+ modules "
        "(default: results/formal; empty string disables)",
    )
    parser.add_argument(
        "--divergence-bound", type=int, default=1,
        help="for 'formal': preemption bound of the litmus divergence "
        "oracle's exploration (default: 1)",
    )
    parser.add_argument(
        "--divergence-schedules", type=int, default=300,
        help="for 'formal': schedules replayed per litmus test by the "
        "divergence oracle (default: 300)",
    )
    parser.add_argument(
        "--sanitize-out", default=os.path.join("results", "sanitize.json"),
        help="for 'sanitize': path of the JSON findings report "
        "(default: results/sanitize.json; empty string disables)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for figure sweeps: 1 = serial (default), "
        "N = fan cells out to N processes, 0 = all host cores; results "
        "are identical for any value",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache (every cell re-simulates)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
        "results/.runcache; entries auto-invalidate when any source "
        "file under src/repro changes)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="for 'serve'/'submit'/'status': service address "
        "(default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=8642,
        help="for 'serve'/'submit'/'status': service port (default: 8642; "
        "serve accepts 0 for an ephemeral port)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="for 'serve': persistent worker processes "
        "(default: 0 = all host cores)",
    )
    parser.add_argument(
        "--max-queued", type=int, default=4096,
        help="for 'serve': admission bound — reject job submissions with "
        "HTTP 503 + Retry-After once this many cells are queued or "
        "running (default: 4096)",
    )
    parser.add_argument(
        "--cell-deadline", type=float, default=None,
        help="for 'serve'/'chaos-service': per-cell wall-clock execution "
        "budget in seconds; an overrunning cell fails with "
        "deadline_exceeded and its worker is recycled (default: none)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=3,
        help="for 'serve'/'chaos-service': execution attempts per cell "
        "before it settles as failed (default: 3)",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="for 'serve': on SIGTERM/SIGINT, wait up to this many "
        "seconds for in-flight cells to settle before exiting "
        "(default: 30)",
    )
    parser.add_argument(
        "--kills", type=int, default=2,
        help="for 'chaos-service': worker processes to SIGKILL mid-cell "
        "(default: 2)",
    )
    parser.add_argument(
        "--kill-interval", type=float, default=0.3,
        help="for 'chaos-service': seconds between observing a running "
        "cell and killing a worker (default: 0.3)",
    )
    parser.add_argument(
        "--sweep-family", choices=["tatas", "array", "nonblocking", "barrier"],
        default="tatas",
        help="for 'submit': kernel family of the submitted sweep "
        "(default: tatas)",
    )
    parser.add_argument(
        "--names", nargs="+", default=None,
        help="for 'submit': kernel bar names to sweep "
        "(default: every kernel in the family)",
    )
    parser.add_argument(
        "--wait", action="store_true",
        help="for 'submit': poll the job until it settles and print "
        "per-cell outcomes (exit 1 if any cell failed)",
    )
    parser.add_argument(
        "--wait-timeout", type=float, default=600.0,
        help="for 'submit --wait': give up after this many seconds "
        "(default: 600)",
    )
    parser.add_argument(
        "--job", default=None,
        help="for 'status': show one job's per-cell detail instead of "
        "the job list",
    )
    parser.add_argument(
        "--out", default=None,
        help="directory for per-figure .txt reports (default: stdout)",
    )
    parser.add_argument(
        "--format", choices=["table", "csv", "json", "plot"], default="table",
        help="output format: aligned tables (default), CSV, JSON, or "
        "ASCII stacked bars",
    )
    args = parser.parse_args(argv)
    args.cores_given = "--cores" in (argv or [])
    args.scale_given = "--scale" in (argv or [])

    if args.target == "run":
        if args.workload is None:
            parser.error("'run' requires --workload family/name")
        return _run_single(args)
    if args.target == "profile":
        if args.workload is None:
            parser.error("'profile' requires --workload family/name")
        return _run_profile(args)
    if args.target == "chaos":
        return _run_chaos(args)
    if args.target == "mc":
        if args.bound is not None and args.bound < 0:
            args.bound = None  # -1: unbounded exploration
        return _run_mc(args)
    if args.target == "sanitize":
        return _run_sanitize(args)
    if args.target == "formal":
        return _run_formal(args)
    if args.target == "serve":
        return _run_serve(args)
    if args.target == "submit":
        return _run_submit(args)
    if args.target == "status":
        return _run_status(args)
    if args.target == "chaos-service":
        return _run_chaos_service(args)
    if args.target == "protocols":
        return _run_protocols(args)

    targets = ALL_TARGETS if args.target == "all" else [args.target]
    for target in targets:
        _run_one(target, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
